"""Setup shim.

This project deliberately ships a ``setup.py``/``setup.cfg`` pair instead
of a ``pyproject.toml``: the reproduction environment is fully offline and
pip's PEP 517 build isolation cannot fetch build dependencies there.  The
legacy path (`pip install -e .`) works with the preinstalled setuptools.

Optional compiled hot core (see docs/COMPILED.md)
-------------------------------------------------

``python setup.py build_ext --inplace`` builds ``repro._cext._core``, a
hand-written CPython extension whose classes subclass the pure-python
hot-core classes (Simulator/Link/Node) and override only the hot
methods.  The extension is strictly optional: it is marked
``optional=True`` so a missing C toolchain degrades an install to the
pure engine instead of failing it, and nothing at runtime imports it
except :mod:`repro.core.engine_select`, which falls back silently under
``REPRO_ENGINE=auto`` (the default).

Environment knobs:

* ``REPRO_NO_CEXT=1`` — skip the extension entirely (pure-only build).
* ``REPRO_BUILD_MYPYC=1`` — additionally compile a small allowlist of
  *leaf* modules with mypyc, when mypyc is installed.  Experimental and
  off by default: mypyc is not available in the pinned reproduction
  container, and whole-module mypyc compilation of the hot core itself
  would conflict with the runtime engine selection (compiled modules
  would shadow the pure ones unconditionally).  See docs/COMPILED.md.
"""

import os

from setuptools import setup

ext_modules = []
if not os.environ.get("REPRO_NO_CEXT"):
    from setuptools import Extension

    ext_modules.append(
        Extension(
            "repro._cext._core",
            sources=["src/repro/_cext/_coremodule.c"],
            optional=True,
            extra_compile_args=["-O2"],
        )
    )

if os.environ.get("REPRO_BUILD_MYPYC"):
    # Leaf modules only: nothing here participates in engine selection,
    # so mypyc's import-time module shadowing is harmless.
    try:
        from mypyc.build import mypycify
    except ImportError:
        pass
    else:
        ext_modules += mypycify(
            [
                "src/repro/sim/rng.py",
                "src/repro/sim/profile.py",
            ]
        )

setup(ext_modules=ext_modules)

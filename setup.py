"""Setup shim.

This project deliberately ships a ``setup.py``/``setup.cfg`` pair instead
of a ``pyproject.toml``: the reproduction environment is fully offline and
pip's PEP 517 build isolation cannot fetch build dependencies there.  The
legacy path (`pip install -e .`) works with the preinstalled setuptools.
"""

from setuptools import setup

setup()

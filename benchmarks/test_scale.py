"""Scale-out scenario benchmark tier (``-m bench_scale``).

Runs sharded fat-tree scenarios through :func:`repro.scenarios.run_scale`
and records flows/sec and peak RSS into
``benchmarks/results/BENCH_scale.json``.  Two tiers:

* ``-m bench_scale -k smoke`` — a ~2k-flow fat-tree sharded across 4
  workers, a few seconds; asserts the bounded-memory contract (peak
  worker RSS under a generous absolute ceiling — per-flow state is
  reaped, so RSS tracks the *live* population, not the total).
* ``-m bench_scale -k 100k`` — the acceptance run: a >=100k-flow
  fat-tree scenario sharded across the pool, streaming per-flow records
  to disk, with the same RSS ceiling.

The ceilings are absolute (not host-normalized): the thing being
guarded is memory *growth with population size*, which is
host-invariant — a regression that accumulates per-flow state blows
past the ceiling on any host.
"""

from __future__ import annotations

import json
import os
import resource
import time
from pathlib import Path

import pytest

from repro.scenarios import ScenarioSpec, ShardPlan, WorkloadSpec, run_scale
from repro.topologies import FatTreeSpec

BENCH_PATH = Path(__file__).parent / "results" / "BENCH_scale.json"

#: Peak RSS ceiling per shard worker, KiB.  Forked workers inherit the
#: parent interpreter's footprint (~40 MiB with the test harness), so
#: the ceiling is generous — what matters is that it does NOT scale
#: with the flow population (100k flows x ~1 KiB of retained per-flow
#: state would add ~100 MiB and trip it).
RSS_CEILING_KB = 300_000


def _jobs() -> int:
    # At least 2 so the run genuinely crosses process boundaries, even
    # on single-core CI runners.
    return max(2, min(os.cpu_count() or 2, 8))


def _scenario(arrival_rate: float, duration: float, name: str) -> ScenarioSpec:
    return ScenarioSpec(
        topology=FatTreeSpec(k=4, hosts_per_edge=2),
        workload=WorkloadSpec(
            arrival="poisson",
            arrival_rate=arrival_rate,
            size="fixed",
            mean_size_segments=2.0,
        ),
        duration=duration,
        seed=11,
        name=name,
    )


def _run_and_record(section: str, scenario: ScenarioSpec, num_shards: int,
                    stream_path: str | None = None) -> dict:
    plan = ShardPlan(scenario=scenario, num_shards=num_shards,
                     stream_path=stream_path)
    start = time.perf_counter()  # lint: allow-wallclock(benchmark harness measures real elapsed wall time by design)
    report = run_scale(plan, jobs=_jobs())
    wall = time.perf_counter() - start  # lint: allow-wallclock(benchmark harness measures real elapsed wall time by design)

    assert report.complete
    # 2-segment flows finish almost immediately; only arrivals right at
    # the horizon can be cut off mid-transfer.
    assert report.completed >= 0.99 * report.flows
    assert report.max_rss_kb < RSS_CEILING_KB, (
        f"peak worker RSS {report.max_rss_kb} KiB exceeds the "
        f"{RSS_CEILING_KB} KiB ceiling — per-flow state is accumulating"
    )
    parent_children_kb = int(
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    )

    entry = {
        "flows": report.flows,
        "wall_s": round(wall, 3),
        "flows_per_sec": round(report.flows / wall, 1),
        "shards": num_shards,
        "jobs": _jobs(),
        "max_rss_kb": report.max_rss_kb,
        "children_max_rss_kb": parent_children_kb,
        "goodput_mbps": round(report.goodput_mbps, 3),
    }
    data = {}
    if BENCH_PATH.exists():
        data = json.loads(BENCH_PATH.read_text())
    data[section] = entry
    BENCH_PATH.parent.mkdir(exist_ok=True)
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"\n[bench_scale:{section}] {entry}")
    return entry


@pytest.mark.bench_scale
def test_scale_smoke(tmp_path):
    """~2k flows, 4 shards: the CI gate for the bounded-memory contract."""
    scenario = _scenario(arrival_rate=100.0, duration=20.0, name="smoke")
    entry = _run_and_record(
        "smoke", scenario, num_shards=4,
        stream_path=str(tmp_path / "smoke-flows.jsonl"),
    )
    assert entry["flows"] > 1_500


@pytest.mark.bench_scale
def test_scale_fat_tree_100k(tmp_path):
    """The acceptance run: >=100k flows sharded across the worker pool,
    streaming per-flow records, peak RSS bounded."""
    scenario = _scenario(arrival_rate=4_400.0, duration=25.0,
                         name="fat-tree-100k")
    stream = tmp_path / "100k-flows.jsonl"
    entry = _run_and_record(
        "fat_tree_100k", scenario, num_shards=2 * _jobs(),
        stream_path=str(stream),
    )
    assert entry["flows"] >= 100_000
    # The stream carries one record per flow plus header/shard records.
    with stream.open() as handle:
        flow_lines = sum(
            1 for line in handle if '"record": "flow"' in line
        )
    assert flow_lines == entry["flows"]

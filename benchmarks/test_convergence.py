"""Extension analysis: convergence to fairness over time.

Section 4 leans on the AIMD convergence results of Chiu & Jain [7] and
the hybrid-model analysis [4]: flows detecting drops at the same rate
converge to equal bandwidth exponentially fast.  This benchmark measures
that dynamic directly — Jain's index of the instantaneous goodputs of a
mixed TCP-PR / TCP-SACK population, and the time it takes to cross and
hold 0.9.
"""

from repro.analysis.timeseries import convergence_time, fairness_over_time
from repro.experiments.report import table
from repro.experiments.runner import build_fairness_scenario

from conftest import paper_scale, save_result


def test_fairness_convergence_dynamics(benchmark):
    duration = 120.0 if paper_scale() else 40.0

    def run():
        scenario = build_fairness_scenario(
            topology="dumbbell", total_flows=8, seed=11, monitor_interval=1.0
        )
        scenario.network.run(until=duration)
        samples = [monitor.samples for monitor in scenario.monitors]
        points = fairness_over_time(samples)
        return points

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    converged_at = convergence_time(points, threshold=0.9, hold=5.0)
    tail = [p for p in points if p.time >= duration * 0.5]
    tail_mean = sum(p.value for p in tail) / len(tail)

    rows = [[f"{p.time:.0f}", p.value] for p in points[:: max(1, len(points) // 12)]]
    text = table(["t (s)", "Jain index (instantaneous)"], rows)
    text += (
        f"\nconverged (>0.9 held 5 s) at: "
        f"{converged_at if converged_at is not None else 'never'} s"
        f"\nmean Jain index, second half: {tail_mean:.3f}"
    )
    save_result(
        "convergence",
        "Fairness convergence, 4 TCP-PR + 4 TCP-SACK on one bottleneck\n" + text,
    )

    # AIMD convergence: the mixed population reaches and holds fairness.
    assert converged_at is not None, "never converged to Jain > 0.9"
    assert converged_at < duration * 0.5
    assert tail_mean > 0.85

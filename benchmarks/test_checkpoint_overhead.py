"""What periodic checkpointing costs the hot loop — and that it's <5%.

Runs the same TCP-PR dumbbell flow plain and with
``run(checkpoint_every=...)`` armed, **interleaved** (plain, armed,
plain, armed, ...) so CPU frequency drift and cache warmth hit both
sides equally, and asserts:

* bit-identicality — the armed run delivers the same segments and
  dispatches the same event count (checkpointing observes, never
  perturbs; the segmented driver only changes *when* ``run`` returns
  control, not what it simulates);
* the 5% overhead budget from the crash-safety PR, gated on the
  *amortized snapshot cost*: best-of per-``save_checkpoint`` wall time
  (a whole-graph pickle, tens of kilobytes here) × snapshots-per-run,
  over the best plain run.  Per-save cost is stable to measure; the
  raw armed/plain wall ratio at sub-second scale is not on a loaded CI
  machine, so — like ``test_obs_overhead.py`` — the end-to-end ratio
  is recorded and asserted only against a generous catastrophe ceiling.

Writes the measured trajectory to ``benchmarks/results/BENCH_ckpt.json``.
"""

import json
import statistics
import time

import pytest

from repro.app.bulk import BulkTransfer
from repro.checkpoint import save_checkpoint
from repro.topologies.dumbbell import DumbbellSpec, build_dumbbell
from repro.util.units import MBPS

from conftest import RESULTS_DIR, paper_scale

ROUNDS = 5
SAVE_ROUNDS = 10
OVERHEAD_BUDGET = 0.05
#: The armed/plain wall ratio only trips on a catastrophic regression
#: (e.g. the segmented driver falling off the fast dispatch path).
WALL_RATIO_CEILING = 1.25


def _build():
    net = build_dumbbell(
        DumbbellSpec(num_pairs=1, bottleneck_bandwidth=10 * MBPS, seed=1)
    )
    flow = BulkTransfer(net, "tcp-pr", "s0", "d0", flow_id=1)
    return net, flow


def _run_flow(duration, every=None, path=None):
    net, flow = _build()
    started = time.perf_counter()  # lint: allow-wallclock(benchmark harness measures real elapsed wall time by design)
    if every is None:
        net.run(until=duration)
    else:
        net.run(until=duration, checkpoint_every=every, checkpoint_path=path)
    elapsed = time.perf_counter() - started  # lint: allow-wallclock(benchmark harness measures real elapsed wall time by design)
    return flow.delivered_segments, net.sim.dispatched_events, elapsed


@pytest.mark.bench_smoke
def test_checkpoint_overhead(tmp_path):
    duration = 25.0 if paper_scale() else 8.0
    every = duration / 4.0  # snapshots at 1/4, 2/4, 3/4 (none at the end)
    snapshots_per_run = 3
    ckpt = tmp_path / "bench.ckpt"

    plain_times, armed_times = [], []
    plain_sig = armed_sig = None
    for _ in range(ROUNDS):  # interleaved A/B: drift hits both sides
        delivered, events, elapsed = _run_flow(duration)
        plain_sig = (delivered, events)
        plain_times.append(elapsed)
        delivered, events, elapsed = _run_flow(duration, every, ckpt)
        armed_sig = (delivered, events)
        armed_times.append(elapsed)

    assert armed_sig == plain_sig, (
        f"checkpointing perturbed the simulation: {armed_sig} != {plain_sig}"
    )
    assert ckpt.exists()

    # The budget gate: per-snapshot cost on the real mid-run graph,
    # amortized over one plain run.
    net, _ = _build()
    net.run(until=duration / 2.0)
    save_times = []
    for _ in range(SAVE_ROUNDS):
        started = time.perf_counter()  # lint: allow-wallclock(benchmark harness measures real elapsed wall time by design)
        save_checkpoint(net.sim, ckpt)
        save_times.append(time.perf_counter() - started)  # lint: allow-wallclock(benchmark harness measures real elapsed wall time by design)
    amortized = snapshots_per_run * min(save_times) / min(plain_times)
    assert amortized < OVERHEAD_BUDGET, (
        f"{snapshots_per_run} snapshots cost {amortized:.1%} of a run "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )

    wall_ratio = min(armed_times) / min(plain_times)
    assert wall_ratio < WALL_RATIO_CEILING, (
        f"armed run {wall_ratio:.2f}x plain (ceiling {WALL_RATIO_CEILING}x)"
    )

    report = {
        "scenario": "tcp-pr dumbbell, 1 pair, 10 Mbps",
        "duration": duration,
        "checkpoint_every": every,
        "snapshots_per_run": snapshots_per_run,
        "rounds": ROUNDS,
        "dispatched_events": plain_sig[1],
        "checkpoint_bytes": ckpt.stat().st_size,
        "points": [
            {"mode": "plain", "best_s": round(min(plain_times), 4),
             "median_s": round(statistics.median(plain_times), 4)},
            {"mode": "checkpointed", "best_s": round(min(armed_times), 4),
             "median_s": round(statistics.median(armed_times), 4)},
        ],
        "snapshot_best_s": round(min(save_times), 5),
        "amortized_overhead_pct": round(amortized * 100, 2),
        "budget_pct": round(OVERHEAD_BUDGET * 100, 2),
        "wall_ratio": round(wall_ratio, 3),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_ckpt.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{json.dumps(report, indent=2)}\n[saved to {path}]")

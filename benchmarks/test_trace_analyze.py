"""Trace-pipeline throughput: analyzer events/sec and replay round-trip.

Two costs gate the pipeline's usefulness on paper-scale traces (a 60 s
Figure 6 cell emits ~700k events): parsing a ``repro.obs/v1`` stream
into flow views and running the full pcap-style analysis over it.  The
benchmark times both on a synthetic reordered flow of known size and
writes the trajectory to ``benchmarks/results/BENCH_trace.json``.

The ``bench_smoke`` test is the CI gate: a small fixed-size analyze pass
with a generous floor, so a quadratic regression in the extent
computation (the part that is deliberately O(n log n)) fails fast.
"""

import json
import random
import time

import pytest

from repro.traces import TraceStream, analyze_stream, distill_profile, replay_profile

from conftest import RESULTS_DIR, paper_scale

#: Delay spread that produces heavy (but not total) reordering.
_BASE = 0.02
_JITTER = 0.01


def _synthetic_records(segments, seed=7):
    """A send+recv stream with jittered arrivals — dense reordering."""
    rng = random.Random(seed)  # lint: allow-module-random(fixed-seed fixture stream; the literal seed keeps the test deterministic)
    records = []
    for seq in range(segments):
        send_time = 0.001 * seq
        records.append({
            "record": "trace", "time": send_time, "kind": "send",
            "where": "src", "packet_uid": seq, "flow_id": 1, "flow_seq": 0,
            "packet_kind": "data", "seq": seq, "ack": -1,
            "retransmit": False, "path": f"p{seq % 4}",
        })
        records.append({
            "record": "trace",
            "time": send_time + _BASE + rng.random() * _JITTER,
            "kind": "recv", "where": "dst", "packet_uid": seq,
            "flow_id": 1, "flow_seq": 0, "packet_kind": "data",
            "seq": seq, "ack": -1, "retransmit": False, "path": None,
        })
    records.sort(key=lambda record: record["time"])
    for index, record in enumerate(records):
        record["flow_seq"] = index
    return records


def _time_analyze(segments):
    records = _synthetic_records(segments)
    started = time.perf_counter()  # lint: allow-wallclock(benchmark harness measures real elapsed wall time by design)
    stream = TraceStream(records)
    report = analyze_stream(stream).flow(1)
    elapsed = time.perf_counter() - started  # lint: allow-wallclock(benchmark harness measures real elapsed wall time by design)
    assert report.unique_arrivals == segments
    assert report.reordered > 0
    return elapsed, report


@pytest.mark.bench_smoke
def test_analyze_smoke_rate():
    """CI gate: the analyzer must sustain a sane events/sec floor."""
    segments = 20_000
    elapsed, report = _time_analyze(segments)
    events_per_sec = 2 * segments / elapsed
    # Interpreter-dependent, so the floor is deliberately loose: a
    # quadratic extent scan would land orders of magnitude below it.
    assert events_per_sec > 50_000, (
        f"analyzer at {events_per_sec:,.0f} events/s (floor 50k); "
        f"{segments} segments took {elapsed:.2f}s"
    )


def test_trace_pipeline_scaling():
    sizes = (
        (10_000, 50_000, 200_000) if paper_scale() else (5_000, 20_000, 50_000)
    )
    points = []
    for segments in sizes:
        elapsed, report = _time_analyze(segments)
        points.append({
            "segments": segments,
            "events": 2 * segments,
            "analyze_s": round(elapsed, 4),
            "events_per_sec": round(2 * segments / elapsed),
            "reorder_ratio": round(report.reorder_ratio, 4),
        })

    # Near-linear scaling: time per event must not blow up with size.
    per_event = [p["analyze_s"] / p["events"] for p in points]
    assert per_event[-1] < 4.0 * per_event[0], (
        f"analyzer scaling degraded: {per_event}"
    )

    # Round-trip cost on the largest size: distill + open-loop replay.
    stream = TraceStream(_synthetic_records(sizes[0]))
    started = time.perf_counter()  # lint: allow-wallclock(benchmark harness measures real elapsed wall time by design)
    profile = distill_profile(stream)
    result = replay_profile(profile, seed=1)
    replay_elapsed = time.perf_counter() - started  # lint: allow-wallclock(benchmark harness measures real elapsed wall time by design)
    assert result.delivered > 0

    report = {
        "scenario": "synthetic jittered flow, 4 paths",
        "paper_scale": paper_scale(),
        "points": points,
        "replay": {
            "segments": sizes[0],
            "distill_and_replay_s": round(replay_elapsed, 4),
            "replay_reorder_ratio": round(result.reorder_ratio, 4),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_trace.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{json.dumps(report, indent=2)}\n[saved to {path}]")

"""Core-throughput workload definitions (see test_core_throughput.py).

Shared by the committed benchmark gate and the one-off baseline capture
that was run against the *seed* implementation (per-packet drop timers,
closure dispatch) before the hot-path overhaul.  Two kinds of workload:

* **Engine microbenchmarks** — raw schedule/dispatch throughput of the
  event loop under the two component idioms: the legacy one (a fresh
  closure plus an f-string label per event, what every per-packet timer
  paid before the overhaul) and the hot one (bound callable + ``args``
  tuple + precomputed label via :meth:`Simulator.post`, what the packet
  path pays now).  Metric: dispatched events per wall second.
* **Figure workloads** — end-to-end slices of the paper's figure
  scenarios (fairness dumbbell, multipath mesh, a lone TCP-PR bulk
  flow), measuring wall seconds and engine events per wall second.

All workloads use fixed seeds; wall time is the only nondeterministic
output.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict

N_MICRO_EVENTS = 150_000


def _timed(fn: Callable[[], int]) -> Dict[str, Any]:
    started = time.perf_counter()  # lint: allow-wallclock(benchmark harness measures real elapsed wall time by design)
    events = fn()
    wall = time.perf_counter() - started  # lint: allow-wallclock(benchmark harness measures real elapsed wall time by design)
    return {
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall,
    }


# ----------------------------------------------------------------------
# Engine microbenchmarks
# ----------------------------------------------------------------------
def engine_micro_legacy() -> Dict[str, Any]:
    """Seed-era idiom: per-event closure + f-string label."""
    from repro.sim import Simulator

    def run() -> int:
        sim = Simulator()
        count = 0

        def tick(i: int) -> None:
            nonlocal count
            count += 1
            if count < N_MICRO_EVENTS:
                sim.schedule_in(
                    0.001, lambda: tick(i + 1), label=f"pr timer f1 s{i}"
                )

        sim.schedule(0.0, lambda: tick(0))
        sim.run()
        return count

    return _timed(run)


def engine_micro_hot() -> Dict[str, Any]:
    """Overhauled idiom: fire-and-forget post() + args + static label."""
    from repro.sim import Simulator

    def run() -> int:
        sim = Simulator()
        post_in = sim.post_in  # cached bound method, like the link hot path
        count = 0

        def tick(i: int) -> None:
            nonlocal count
            count += 1
            if count < N_MICRO_EVENTS:
                # Positional args, like the link hot path.
                post_in(0.001, tick, (i + 1,), "pr timer")

        sim.post(0.0, tick, (0,))
        sim.run()
        return count

    return _timed(run)


# ----------------------------------------------------------------------
# Figure workloads
# ----------------------------------------------------------------------
def fig2_fairness_workload(duration: float = 25.0) -> Dict[str, Any]:
    """Figure 2 slice: 8 mixed TCP-PR/SACK flows on the dumbbell."""
    from repro.experiments.runner import build_fairness_scenario

    scenario = build_fairness_scenario(
        topology="dumbbell", total_flows=8, seed=1
    )

    def run() -> int:
        scenario.network.run(until=duration)
        return scenario.network.sim.dispatched_events

    return _timed(run)


def fig6_multipath_workload(duration: float = 15.0) -> Dict[str, Any]:
    """Figure 6 slice: one TCP-PR flow over the reordering mesh."""
    from repro.app.bulk import BulkTransfer
    from repro.topologies.multipath_mesh import (
        MultipathMeshSpec,
        build_multipath_mesh,
        install_epsilon_routing,
    )

    net = build_multipath_mesh(MultipathMeshSpec(link_delay=0.01, seed=2))
    install_epsilon_routing(net, epsilon=0.01, reorder_acks=True)
    BulkTransfer(net, "tcp-pr", "src", "dst", flow_id=1)

    def run() -> int:
        net.run(until=duration)
        return net.sim.dispatched_events

    return _timed(run)


def pr_bulk_workload(duration: float = 25.0) -> Dict[str, Any]:
    """A lone 10 Mbps TCP-PR bulk flow (timer-path dominated)."""
    from repro.app.bulk import BulkTransfer
    from repro.topologies.dumbbell import DumbbellSpec, build_dumbbell
    from repro.util.units import MBPS

    net = build_dumbbell(
        DumbbellSpec(num_pairs=1, bottleneck_bandwidth=10 * MBPS, seed=3)
    )
    BulkTransfer(net, "tcp-pr", "s0", "d0", flow_id=1)

    def run() -> int:
        net.run(until=duration)
        return net.sim.dispatched_events

    return _timed(run)


FIGURE_WORKLOADS: Dict[str, Callable[[], Dict[str, Any]]] = {
    "fig2_fairness": fig2_fairness_workload,
    "fig6_multipath": fig6_multipath_workload,
    "pr_bulk": pr_bulk_workload,
}


def measure(include_hot: bool = True) -> Dict[str, Any]:
    """Run every workload once and collect the measurements."""
    results: Dict[str, Any] = {
        "engine_micro_legacy": engine_micro_legacy(),
    }
    if include_hot:
        results["engine_micro_hot"] = engine_micro_hot()
    for name, workload in FIGURE_WORKLOADS.items():
        results[name] = workload()
    return results


if __name__ == "__main__":
    import json
    import sys

    from repro.sim import Simulator

    include_hot = hasattr(Simulator, "post")
    json.dump(measure(include_hot=include_hot), sys.stdout, indent=1)
    print()

"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures and writes
the reproduced rows/series to ``benchmarks/results/<name>.txt`` (also
echoed to stdout; run with ``-s`` to see them live).

Scale control: the default ("quick") scale trims flow counts, sweep
points, and durations so the whole suite runs in minutes.  Set the
environment variable ``REPRO_PAPER_SCALE=1`` to run the full paper-scale
configurations (tens of minutes).
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def paper_scale() -> bool:
    return os.environ.get("REPRO_PAPER_SCALE", "0") not in ("0", "", "false")


def save_result(name: str, text: str) -> None:
    """Persist a reproduced figure/table and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")

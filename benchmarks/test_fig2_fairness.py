"""Figure 2: fairness of TCP-PR vs TCP-SACK (dumbbell and parking lot).

Paper series: per-flow normalized throughput and per-protocol mean
normalized throughput for n ∈ {4, 8, 16, 32, 64} total flows; both means
stay ≈ 1 across the whole range on both topologies.
"""

import pytest

from repro.exec.spec import Scale
from repro.experiments.fig2_fairness import (
    Fig2Spec,
    PAPER_DURATION,
    PAPER_FLOW_COUNTS,
    PAPER_MEASURE_WINDOW,
    QUICK_DURATION,
    QUICK_FLOW_COUNTS,
    QUICK_MEASURE_WINDOW,
    format_fig2,
    run_fig2,
)

from conftest import paper_scale, save_result


def _params():
    if paper_scale():
        return PAPER_FLOW_COUNTS, PAPER_DURATION, PAPER_MEASURE_WINDOW
    return QUICK_FLOW_COUNTS, QUICK_DURATION, QUICK_MEASURE_WINDOW


@pytest.mark.parametrize("topology", ["dumbbell", "parking-lot"])
def test_fig2_fairness(benchmark, topology):
    flow_counts, duration, window = _params()

    def run():
        return run_fig2(Fig2Spec.presets(
            Scale.QUICK,
            topology=topology,
            flow_counts=flow_counts,
            duration=duration,
            measure_window=window,
        ))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(f"fig2_{topology}", format_fig2(result))

    # Shape assertions (the paper's finding): both protocols' mean
    # normalized throughput ≈ 1.  The parking lot's bandwidths are fixed
    # by Figure 1, so large flow counts push it into the tiny-window
    # regime where our TCP-PR drifts ahead (EXPERIMENTS.md discusses the
    # detection-latency mechanism and the coarse-timer reconciliation);
    # the assertion widens accordingly rather than hiding the drift.
    for count, fairness in result.results.items():
        if topology == "dumbbell" or count <= 8:
            tolerance = 0.2
        elif count <= 16:
            tolerance = 0.35
        else:
            tolerance = 0.5
        for protocol in ("tcp-pr", "sack"):
            assert fairness.mean_normalized[protocol] == pytest.approx(
                1.0, abs=tolerance
            ), f"{topology} n={count} {protocol} unfair"

"""Microbenchmarks of the simulation substrate itself.

These use pytest-benchmark's statistics properly (multiple rounds) since
they are cheap, and guard against performance regressions in the event
loop and link pipeline that would make the figure benchmarks intractable.
"""

from repro.net.network import Network, install_static_routes
from repro.net.packet import Packet
from repro.sim import Simulator
from repro.app.bulk import BulkTransfer
from repro.topologies.dumbbell import DumbbellSpec, build_dumbbell
from repro.util.units import MBPS


def test_event_loop_throughput(benchmark):
    """Schedule/dispatch cost of the bare event loop (10k events)."""

    def run():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule_in(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count

    assert benchmark(run) == 10_000


def test_link_pipeline_throughput(benchmark):
    """Packets through a 2-hop store-and-forward pipeline (2k packets)."""

    def run():
        net = Network()
        net.add_nodes("a", "b", "c")
        net.add_duplex_link("a", "b", bandwidth=1e9, delay=1e-4, queue=4000)
        net.add_duplex_link("b", "c", bandwidth=1e9, delay=1e-4, queue=4000)
        install_static_routes(net)
        received = []

        class Sink:
            def receive(self, packet):
                received.append(packet.uid)

        net.node("c").agents[1] = Sink()

        def burst():
            for i in range(2000):
                net.node("a").send(Packet("data", "a", "c", flow_id=1, seq=i))

        net.sim.schedule(0.0, burst)
        net.run(until=10.0)
        return len(received)

    assert benchmark(run) == 2000


def test_tcp_pr_flow_simulation_rate(benchmark):
    """A 5-second TCP-PR flow over a dumbbell (end-to-end stack cost)."""

    def run():
        net = build_dumbbell(
            DumbbellSpec(num_pairs=1, bottleneck_bandwidth=10 * MBPS, seed=1)
        )
        flow = BulkTransfer(net, "tcp-pr", "s0", "d0", flow_id=1)
        net.run(until=5.0)
        return flow.delivered_segments

    delivered = benchmark(run)
    assert delivered > 1000


def test_sack_flow_simulation_rate(benchmark):
    """The same end-to-end cost for the SACK baseline."""

    def run():
        net = build_dumbbell(
            DumbbellSpec(num_pairs=1, bottleneck_bandwidth=10 * MBPS, seed=1)
        )
        flow = BulkTransfer(net, "sack", "s0", "d0", flow_id=1)
        net.run(until=5.0)
        return flow.delivered_segments

    delivered = benchmark(run)
    assert delivered > 1000

"""Extension experiment: single-path reordering from delay jitter.

The paper's Section 1 motivates reordering not only by multipath routing
but also by DiffServ-style differentiated forwarding: packets of one flow
take the *same* route yet experience different per-hop delays.  This
benchmark exercises that regime — a single 10 Mbps path whose second hop
adds a per-packet delay drawn from a bimodal (two-service-class)
distribution — and compares the protocols' throughput as the fraction of
"demoted" packets grows.

Not a paper figure (the paper only simulates multipath); included as the
natural companion experiment the introduction promises.
"""

import pytest

from repro.app.bulk import BulkTransfer
from repro.core.pr import PrConfig
from repro.experiments.report import table
from repro.net.delays import BimodalDelay
from repro.net.network import Network, install_static_routes
from repro.tcp.base import TcpConfig
from repro.util.units import MBPS

from conftest import paper_scale, save_result

PROTOCOLS = ("tcp-pr", "tdfr", "ewma", "sack")


def _run(variant: str, slow_probability: float, duration: float) -> float:
    net = Network(seed=5)
    net.add_nodes("snd", "mid", "rcv")
    net.add_duplex_link("snd", "mid", bandwidth=10 * MBPS, delay=0.01, queue=200)
    # The jittered hop: 10 ms nominal, +30 ms for demoted packets.
    jitter = BimodalDelay(
        0.01, 0.03, slow_probability, net.sim.rng.stream("diffserv")
    )
    net.add_duplex_link(
        "mid", "rcv", bandwidth=10 * MBPS, delay=0.01, queue=200,
        delay_model=jitter, reverse_delay_model=None,
    )
    install_static_routes(net)
    flow = BulkTransfer(
        net, variant, "snd", "rcv", flow_id=1,
        tcp_config=TcpConfig(initial_ssthresh=128),
        pr_config=PrConfig(initial_ssthresh=128),
    )
    net.run(until=duration)
    return flow.delivered_bytes() * 8 / duration / MBPS


def test_jitter_reordering_comparison(benchmark):
    duration = 30.0 if paper_scale() else 15.0
    fractions = (0.0, 0.05, 0.2, 0.5)

    def run():
        rows = []
        for fraction in fractions:
            row = [f"{fraction:.0%}"]
            for protocol in PROTOCOLS:
                row.append(_run(protocol, fraction, duration))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = table(["demoted fraction", *PROTOCOLS], rows)
    save_result(
        "jitter_reordering",
        "Single-path DiffServ-style jitter reordering (10 Mbps, +30 ms for "
        "demoted packets)\n" + text,
    )

    by_fraction = {row[0]: dict(zip(PROTOCOLS, row[1:])) for row in rows}
    # With no demotion everyone is equal and near line rate.
    base = by_fraction["0%"]
    assert min(base.values()) > 0.8 * max(base.values())
    # With heavy demotion, TCP-PR beats the DUPACK-based protocols.
    heavy = by_fraction["50%"]
    assert heavy["tcp-pr"] == max(heavy.values())
    assert heavy["tcp-pr"] > 1.5 * heavy["sack"]

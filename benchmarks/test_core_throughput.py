"""Core-throughput benchmark gate (see ``core_workloads.py``).

Records events/sec and wall seconds per workload into
``benchmarks/results/BENCH_core.json`` and guards against hot-path
regressions.  Two tiers:

* ``-m bench_smoke`` — the engine micro pair plus the timer-dominated
  ``pr_bulk`` figure slice, ~5 s total.  Read-only: asserts the
  regression guard but never rewrites the committed JSON.
* the unmarked full test — every workload, then (and only after the
  guard passes) refreshes the ``current`` section of BENCH_core.json.
  The ``baseline`` section is the seed implementation measured by an
  interleaved same-host A/B and is deliberately never rewritten here —
  the seed code no longer exists in the working tree.

Wall clocks differ across hosts, so absolute events/sec comparisons
would flake.  Two defenses:

* The engine micro pair is guarded purely by its in-process legacy→hot
  ratio — both idioms run back-to-back in the same interpreter, so host
  speed and CPython's adaptive-specialization warmth cancel out.
  (Absolute micro numbers do NOT cancel: a warmed-up process clocks the
  hot loop 1.5x faster than a cold one, so guarding them against the
  committed JSON would flake on process history.)
* Figure workloads are guarded against the committed events/sec after
  host normalization, re-calibrated per round: a legacy-idiom micro run
  immediately before each workload run estimates how fast the host is
  *right now* relative to the host that produced the JSON, and the best
  normalized round must reach 75 % of the committed throughput.  A real
  hot-path regression shifts the workload/legacy ratio and trips the
  guard; a slow or throttling host shifts both and does not.

Engine builds (docs/COMPILED.md): every committed-number gate above is
pinned to the **pure** engine via :func:`engine_select.use_engine` —
the committed ``current`` section records pure-build throughput, and
running the suite on a checkout with the C extension built must not
silently re-baseline it 2-4x higher (nor collapse the legacy→hot idiom
ratio, which the C ``schedule`` fast path compresses).  The compiled
build gets its own interleaved same-process A/B: the ``compiled``
section of BENCH_core.json records pure-vs-compiled speedups per
workload, asserted by the committed-number gate and refreshed by the
full tier when the extension is importable.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import core_workloads as cw
from repro.core import engine_select

BENCH_PATH = Path(__file__).parent / "results" / "BENCH_core.json"

#: A workload may lose at most this fraction of its committed events/sec
#: (after host normalization) before the gate fails.
REGRESSION_TOLERANCE = 0.25

#: The dispatch-idiom conversion the overhaul performed on every
#: per-packet path must stay at least this much faster than the idiom it
#: replaced (same engine, same process, back-to-back — host-invariant).
MIN_IDIOM_SPEEDUP = 2.0

#: At least one figure workload must hold this wall-time speedup over
#: the recorded seed baseline.
MIN_FIGURE_WALL_SPEEDUP = 1.5

#: The committed compiled-vs-pure A/B must show at least this events/sec
#: speedup on at least MIN_COMPILED_WORKLOADS of the A/B workloads.
MIN_COMPILED_SPEEDUP = 2.0
MIN_COMPILED_WORKLOADS = 2

#: Live floor for the smoke-tier A/B (micro only; generous margin under
#: the committed ~4x so a throttling host doesn't flake the gate).
MIN_COMPILED_LIVE_SPEEDUP = 1.5

#: Workloads measured by the compiled-vs-pure A/B.  The figure slices
#: are Amdahl-limited by the Python TCP callbacks; the micro isolates
#: the engine itself.
AB_WORKLOADS = {
    "engine_micro_hot": cw.engine_micro_hot,
    "pr_bulk": cw.pr_bulk_workload,
    "fig6_multipath": cw.fig6_multipath_workload,
}


def _best_of(fn, rounds: int):
    best = None
    for _ in range(rounds):
        result = fn()
        if best is None or result["wall_s"] < best["wall_s"]:
            best = result
    return best


def _load_committed():
    with BENCH_PATH.open() as fh:
        return json.load(fh)


def _guarded_figure(name: str, committed: dict, rounds: int) -> dict:
    """Measure figure workload ``name`` with a per-round host guard.

    Each round runs the legacy micro (host calibration) followed by the
    workload, so both see the same throttle state.  Returns the fastest
    workload measurement; fails if no round reaches the tolerance floor.
    """
    committed_legacy = committed["current"]["engine_micro_legacy"][
        "events_per_sec"
    ]
    committed_eps = committed["current"][name]["events_per_sec"]
    best = None
    best_normalized = 0.0
    with engine_select.use_engine("pure"):
        for _ in range(rounds):
            host_scale = (
                cw.engine_micro_legacy()["events_per_sec"] / committed_legacy
            )
            measured = cw.FIGURE_WORKLOADS[name]()
            normalized = measured["events_per_sec"] / (
                committed_eps * host_scale
            )
            if normalized > best_normalized:
                best_normalized = normalized
            if best is None or measured["wall_s"] < best["wall_s"]:
                best = measured
    assert best_normalized >= 1.0 - REGRESSION_TOLERANCE, (
        f"{name}: best host-normalized throughput is "
        f"{best_normalized:.2f}x of the committed "
        f"{committed_eps:.0f} events/sec (floor "
        f"{1.0 - REGRESSION_TOLERANCE:.2f}) — hot-path regression"
    )
    return best


def _measure_micro_pair(committed: dict, rounds: int = 4):
    """Measure both micro idioms in alternating rounds.

    The idiom speedup is taken as the best *same-round* ratio: a legacy
    and a hot run a few hundred milliseconds apart see the same host
    throttle state, whereas pairing a best-of-N legacy with a best-of-N
    hot can straddle a frequency change and report garbage.

    Returns (legacy_best, hot_best, host_scale, idiom_speedup).
    """
    legacy_best = hot_best = None
    idiom_speedup = 0.0
    with engine_select.use_engine("pure"):
        for _ in range(rounds):
            legacy = cw.engine_micro_legacy()
            hot = cw.engine_micro_hot()
            ratio = hot["events_per_sec"] / legacy["events_per_sec"]
            if ratio > idiom_speedup:
                idiom_speedup = ratio
            if legacy_best is None or legacy["wall_s"] < legacy_best["wall_s"]:
                legacy_best = legacy
            if hot_best is None or hot["wall_s"] < hot_best["wall_s"]:
                hot_best = hot
    return legacy_best, hot_best, idiom_speedup


def _measure_ab(name: str, rounds: int) -> dict:
    """Interleaved pure/compiled A/B on one workload.

    Each round runs the pure build then the compiled build back-to-back,
    so both see the same host throttle state; the speedup is the best
    *same-round* events/sec ratio (the same defense as the idiom pair).
    Both builds dispatch bit-identical event sequences, so events/sec
    ratios and wall ratios agree round-by-round.
    """
    fn = AB_WORKLOADS[name]
    pure_best = compiled_best = None
    speedup_eps = 0.0
    for _ in range(rounds):
        with engine_select.use_engine("pure"):
            pure = fn()
        with engine_select.use_engine("compiled"):
            comp = fn()
        ratio = comp["events_per_sec"] / pure["events_per_sec"]
        if ratio > speedup_eps:
            speedup_eps = ratio
        if pure_best is None or pure["wall_s"] < pure_best["wall_s"]:
            pure_best = pure
        if compiled_best is None or comp["wall_s"] < compiled_best["wall_s"]:
            compiled_best = comp
    return {
        "pure_events_per_sec": round(pure_best["events_per_sec"], 1),
        "compiled_events_per_sec": round(
            compiled_best["events_per_sec"], 1
        ),
        "speedup_eps": round(speedup_eps, 4),
        "speedup_best_of": round(
            compiled_best["events_per_sec"] / pure_best["events_per_sec"], 4
        ),
    }


@pytest.mark.bench_smoke
def test_committed_numbers_meet_gates():
    """The committed artifact itself must show the acceptance ratios."""
    committed = _load_committed()
    speedup = committed["speedup"]
    assert speedup["engine_micro_legacy_to_hot_eps"] >= MIN_IDIOM_SPEEDUP
    figure_walls = [
        speedup[f"{name}_wall"] for name in cw.FIGURE_WORKLOADS
    ]
    assert max(figure_walls) >= MIN_FIGURE_WALL_SPEEDUP, (
        f"no figure workload reaches {MIN_FIGURE_WALL_SPEEDUP}x wall "
        f"speedup over the seed baseline: {figure_walls}"
    )
    ab = committed["compiled"]["workloads"]
    fast_enough = [
        name
        for name, result in ab.items()
        if result["speedup_eps"] >= MIN_COMPILED_SPEEDUP
    ]
    assert len(fast_enough) >= MIN_COMPILED_WORKLOADS, (
        f"the committed compiled-vs-pure A/B shows "
        f"{MIN_COMPILED_SPEEDUP}x on only {fast_enough} "
        f"(need {MIN_COMPILED_WORKLOADS} of {sorted(ab)})"
    )


@pytest.mark.bench_smoke
def test_core_throughput_smoke():
    """~5 s: micro pair + the timer-dominated figure slice, guard only."""
    committed = _load_committed()
    legacy, hot, idiom_speedup = _measure_micro_pair(committed)
    assert idiom_speedup >= MIN_IDIOM_SPEEDUP, (
        f"legacy→hot dispatch idiom speedup collapsed to "
        f"{idiom_speedup:.2f}x (< {MIN_IDIOM_SPEEDUP}x)"
    )
    _guarded_figure("pr_bulk", committed, rounds=3)


@pytest.mark.bench_smoke
@pytest.mark.skipif(
    not engine_select.compiled_available(),
    reason="compiled extension not built (python setup.py build_ext --inplace)",
)
def test_compiled_engine_ab_smoke():
    """Sub-second live A/B: the compiled engine must stay clearly faster
    than pure on the micro (committed ~4x; live floor is generous)."""
    result = _measure_ab("engine_micro_hot", rounds=3)
    assert result["speedup_eps"] >= MIN_COMPILED_LIVE_SPEEDUP, (
        f"compiled/pure micro speedup collapsed to "
        f"{result['speedup_eps']:.2f}x (< {MIN_COMPILED_LIVE_SPEEDUP}x)"
    )


def test_core_throughput_full():
    """Every workload; refreshes BENCH_core.json after the guard passes."""
    committed = _load_committed()
    legacy, hot, idiom_speedup = _measure_micro_pair(committed)
    # The guards run before anything is overwritten: a failing run must
    # leave the committed numbers untouched.
    assert idiom_speedup >= MIN_IDIOM_SPEEDUP
    current = {"engine_micro_legacy": legacy, "engine_micro_hot": hot}
    for name in cw.FIGURE_WORKLOADS:
        current[name] = _guarded_figure(name, committed, rounds=2)

    committed["current"] = {
        name: {metric: round(value, 4) for metric, value in result.items()}
        for name, result in current.items()
    }
    # Refresh only the host-invariant ratio.  The *_wall / *_eps speedups
    # against the seed baseline came from an interleaved same-host A/B
    # and would be corrupted by pairing the frozen baseline with a fresh
    # measurement from a differently-loaded host.
    committed["speedup"]["engine_micro_legacy_to_hot_eps"] = round(
        idiom_speedup, 4
    )
    if engine_select.compiled_available():
        committed["compiled"] = {
            "method": (
                "Interleaved pure/compiled A/B per workload, same process, "
                "2 rounds; speedup_eps is the best same-round events/sec "
                "ratio, speedup_best_of pairs the best-of rounds. Both "
                "builds dispatch bit-identical event sequences."
            ),
            "workloads": {
                name: _measure_ab(name, rounds=2) for name in AB_WORKLOADS
            },
        }
    with BENCH_PATH.open("w") as fh:
        json.dump(committed, fh, indent=1)
        fh.write("\n")

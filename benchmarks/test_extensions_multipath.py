"""Extension experiment: Eifel, TCP-DOOR, and the classic senders under
the Figure 6 multipath scenario.

The paper's comparison set is TCP-PR, TD-FR, and the DSACK responses;
Eifel [15], TCP-DOOR [20], and RR-TCP [21] are discussed in Related Work
but not simulated (RR-TCP explicitly: "since the simulation
implementation of this method is not yet available, it was not included
in this comparison").  This benchmark places them — plus plain Reno,
NewReno, and SACK — on the same ε axis, rounding out the related-work
landscape.
"""

import pytest

from repro.exec.spec import Scale
from repro.experiments.fig6_multipath import Fig6Spec, format_fig6, run_fig6
from repro.util.units import MS

from conftest import paper_scale, save_result

EXTENSION_PROTOCOLS = (
    "tcp-pr", "rr-tcp", "eifel", "door", "sack", "newreno", "reno"
)


def test_extensions_on_multipath(benchmark):
    epsilons = (0.0, 4.0, 500.0)
    duration = 30.0 if paper_scale() else 15.0

    def run():
        return run_fig6(Fig6Spec.presets(
            Scale.QUICK,
            link_delay=10 * MS,
            protocols=EXTENSION_PROTOCOLS,
            epsilons=epsilons,
            duration=duration,
        ))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "extensions_multipath",
        "Related-work extensions on the Figure 6 mesh (10 ms links)\n"
        + format_fig6(result),
    )

    table = result.throughput_mbps
    # TCP-PR still wins at full multipath.
    assert table["tcp-pr"][0.0] == max(row[0.0] for row in table.values())
    # Undo-capable variants (Eifel restores state after spurious
    # retransmissions) beat the plain undo-less senders at eps=0.
    assert table["eifel"][0.0] > table["newreno"][0.0]
    # RR-TCP's percentile adaptation beats plain SACK at eps=0.
    assert table["rr-tcp"][0.0] > table["sack"][0.0]
    # Everyone ties on the single path.
    single = [row[500.0] for row in table.values()]
    assert max(single) < 2.0 * min(single)

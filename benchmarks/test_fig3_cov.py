"""Figure 3: coefficient of variation of normalized throughput vs loss.

The loss rate is swept by shrinking the bottleneck bandwidth; the paper's
finding is that TCP-PR's CoV stays comparable to TCP-SACK's across loss
rates of roughly 4-13 %.
"""

import pytest

from repro.exec.spec import Scale
from repro.experiments.fig3_cov import (
    Fig3Spec,
    PAPER_BANDWIDTHS_MBPS,
    PAPER_DURATION,
    PAPER_FLOWS,
    PAPER_MEASURE_WINDOW,
    QUICK_BANDWIDTHS_MBPS,
    QUICK_DURATION,
    QUICK_FLOWS,
    QUICK_MEASURE_WINDOW,
    format_fig3,
    run_fig3,
)

from conftest import paper_scale, save_result


def _params():
    if paper_scale():
        return (
            PAPER_BANDWIDTHS_MBPS,
            PAPER_FLOWS,
            PAPER_DURATION,
            PAPER_MEASURE_WINDOW,
        )
    return QUICK_BANDWIDTHS_MBPS, QUICK_FLOWS, QUICK_DURATION, QUICK_MEASURE_WINDOW


@pytest.mark.parametrize("topology", ["dumbbell", "parking-lot"])
def test_fig3_cov_vs_loss(benchmark, topology):
    bandwidths, flows, duration, window = _params()

    def run():
        return run_fig3(Fig3Spec.presets(
            Scale.QUICK,
            topology=topology,
            bandwidths_mbps=bandwidths,
            total_flows=flows,
            duration=duration,
            measure_window=window,
        ))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(f"fig3_{topology}", format_fig3(result))

    # Shape: loss rises as bandwidth shrinks, and TCP-PR's CoV stays in
    # the same regime as TCP-SACK's (neither protocol collapses into a
    # high-variance starvation pattern).
    losses = [point.loss_rate for point in result.points]
    assert losses == sorted(losses)
    for point in result.points:
        assert point.cov["tcp-pr"] < 1.0
        assert point.cov["sack"] < 1.0

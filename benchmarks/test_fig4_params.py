"""Figure 4: sensitivity of fairness to TCP-PR's alpha and beta.

Paper surface: TCP-SACK's mean normalized throughput vs (alpha, beta)
with 32+32 flows — ≈ 1 everywhere except beta = 1, where TCP-SACK does
better (TCP-PR's mxrtt equals ewrtt and spurious drop declarations make
it back off too much).  Also the Section 4 text claim: under extreme
loss TCP-SACK's advantage stays ≤ ~20 % at beta = 10 and vanishes for
1 < beta < 5.
"""

import pytest

from repro.exec.spec import Scale
from repro.experiments.fig4_params import (
    BetaSweepSpec,
    Fig4Spec,
    PAPER_ALPHAS,
    PAPER_BETAS,
    PAPER_DURATION,
    PAPER_FLOWS,
    PAPER_MEASURE_WINDOW,
    QUICK_ALPHAS,
    QUICK_BETAS,
    QUICK_DURATION,
    QUICK_FLOWS,
    QUICK_MEASURE_WINDOW,
    format_beta_sweep,
    format_fig4,
    run_extreme_loss_beta_sweep,
    run_fig4,
)

from conftest import paper_scale, save_result


def _params():
    if paper_scale():
        return PAPER_ALPHAS, PAPER_BETAS, PAPER_FLOWS, PAPER_DURATION, PAPER_MEASURE_WINDOW
    return QUICK_ALPHAS, QUICK_BETAS, QUICK_FLOWS, QUICK_DURATION, QUICK_MEASURE_WINDOW


def test_fig4_alpha_beta_surface(benchmark):
    alphas, betas, flows, duration, window = _params()

    def run():
        return run_fig4(Fig4Spec.presets(
            Scale.QUICK,
            alphas=alphas,
            betas=betas,
            total_flows=flows,
            duration=duration,
            measure_window=window,
        ))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig4_surface", format_fig4(result))

    # Shape: for 1 < beta <= 5, TCP-SACK's mean normalized throughput
    # ≈ 1; at beta = 1 TCP-SACK does strictly better ("for beta = 1,
    # TCP-SACK exhibits better throughput").  At beta = 10 our TCP-PR
    # takes a larger share than the paper reports (its detection delay
    # of ~10 RTTs postpones window cuts) — EXPERIMENTS.md records this
    # known deviation; we bound it rather than assert parity.
    for (alpha, beta), value in result.sack_surface.items():
        if 1.5 < beta <= 5.0:
            assert value == pytest.approx(1.0, abs=0.35), (alpha, beta, value)
        elif beta > 5.0:
            assert value > 0.45, (alpha, beta, value)
    beta_one = [v for (a, b), v in result.sack_surface.items() if b == 1.0]
    beta_three = [v for (a, b), v in result.sack_surface.items() if b == 3.0]
    if beta_one and beta_three:
        assert max(beta_one) > max(beta_three), "beta=1 must favor TCP-SACK"


def test_extreme_loss_beta_sweep(benchmark):
    betas = (1.5, 3.0, 5.0, 10.0) if paper_scale() else (3.0, 10.0)
    duration = PAPER_DURATION if paper_scale() else QUICK_DURATION
    window = PAPER_MEASURE_WINDOW if paper_scale() else QUICK_MEASURE_WINDOW

    def run():
        return run_extreme_loss_beta_sweep(BetaSweepSpec.presets(
            Scale.QUICK,
            betas=betas, total_flows=8, duration=duration,
            measure_window=window,
        ))

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig4_beta_extreme", format_beta_sweep(points))

    # Shape: high contention (the sweep uses a 1.5 Mbps bottleneck for 8
    # flows), and TCP-SACK's advantage bounded: modest for moderate beta,
    # growing but held within a small factor even at beta = 10.
    for point in points:
        assert point.loss_rate > 0.02, "sweep must run in a high-loss regime"
        if 1.0 < point.beta < 5.0:
            assert point.sack_advantage < 0.6, point
        else:
            assert point.sack_advantage < 1.2, point

"""Ablations of TCP-PR's design choices (DESIGN.md §4).

Each ablation switches off one mechanism of Section 3 and measures the
consequence in the scenario that motivates it:

(a) halving at ``cwnd(n)`` (the window when the lost packet was sent) vs
    halving the current window — detection-delay insensitivity;
(b) the ``memorize`` list vs cutting on every detected drop — one cut
    per loss event;
(c) Newton iterations for ``alpha**(1/cwnd)`` vs the exact root —
    footnote 5's 2-iteration approximation is enough;
(d) SACK-based to-be-ack accounting vs the literal cumulative-only
    reading — DESIGN.md §6's interpretation note.
"""

import pytest

from repro.core.estimator import newton_fractional_root
from repro.core.pr import PrConfig
from repro.experiments.fig6_multipath import run_single_multipath_flow
from repro.experiments.report import table
from repro.net.lossgen import DeterministicLoss
from repro.app.bulk import BulkTransfer
from repro.util.units import MBPS

from conftest import paper_scale, save_result

DURATION = 30.0


def _burst_loss_run(pr_config, duration=None):
    """A lone TCP-PR flow hit by periodic 10-packet loss bursts.

    No queue overflow (deep queues); the only losses are the scripted
    bursts, so the congestion response to a *burst* is isolated.
    """
    duration = duration or (40.0 if paper_scale() else 20.0)
    from repro.net.network import Network, install_static_routes

    burst_ordinals = []
    for start in range(1500, 200_000, 1500):
        burst_ordinals.extend(range(start, start + 10))
    net = Network(seed=1)
    net.add_nodes("snd", "rcv")
    net.add_duplex_link(
        "snd", "rcv", bandwidth=10 * MBPS, delay=0.02, queue=4000,
        loss_model=DeterministicLoss(burst_ordinals),
    )
    install_static_routes(net)
    flow = BulkTransfer(net, "tcp-pr", "snd", "rcv", flow_id=1, pr_config=pr_config)
    net.run(until=duration)
    return flow, duration


def test_ablation_memorize_and_halving_factorial(benchmark):
    """2x2 factorial: the memorize list and the cwnd(n)/2 halving are
    *redundant* guards against multi-cut responses to one loss burst —
    either alone keeps the response to a burst at one effective halving;
    removing both makes every burst compound ~10 halvings."""

    def run():
        rows = []
        for memorize in (True, False):
            for at_send in (True, False):
                flow, duration = _burst_loss_run(
                    PrConfig(enable_memorize=memorize, halve_at_send_cwnd=at_send)
                )
                rows.append(
                    [
                        "on" if memorize else "off",
                        "cwnd(n)/2" if at_send else "current/2",
                        flow.delivered_bytes() * 8 / duration / MBPS,
                        flow.sender.stats.window_cuts,
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = table(["memorize", "halving basis", "Mbps", "window cuts"], rows)
    save_result(
        "ablation_memorize_halving",
        "TCP-PR memorize x halving-basis factorial (periodic loss bursts)\n"
        + text,
    )
    by_key = {(r[0], r[1]): (r[2], r[3]) for r in rows}
    paper = by_key[("on", "cwnd(n)/2")]
    unprotected = by_key[("off", "current/2")]
    # Removing both protections compounds the cuts and costs throughput.
    assert unprotected[1] > 2 * paper[1]
    assert unprotected[0] < paper[0]
    # Either protection alone keeps throughput near the paper variant.
    for key in (("on", "current/2"), ("off", "cwnd(n)/2")):
        assert by_key[key][0] > 0.8 * paper[0], key


def test_ablation_newton_iterations(benchmark):
    """Footnote 5: two Newton iterations approximate alpha**(1/cwnd)."""

    def run():
        rows = []
        for iterations in (1, 2, 4):
            worst = 0.0
            for cwnd in (1.0, 2.0, 5.0, 10.0, 50.0, 200.0):
                exact = 0.995 ** (1.0 / cwnd)
                approx = newton_fractional_root(0.995, cwnd, iterations)
                worst = max(worst, abs(approx - exact) / exact)
            rows.append([iterations, worst])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = table(["newton iterations", "worst relative error"], rows,
                 float_format="{:.2e}")
    save_result("ablation_newton", "Newton-iteration accuracy (alpha=0.995)\n" + text)
    by_iter = {int(r[0]): r[1] for r in rows}
    assert by_iter[2] < 1e-5  # the paper's n=2 is plenty
    assert by_iter[4] <= by_iter[1]


def test_ablation_sack_accounting(benchmark):
    """Cumulative-only to-be-ack accounting (the literal pseudo-code)
    collapses under multipath reordering + real loss; SACK accounting
    (DESIGN.md §6 note 1) preserves the paper's result."""
    duration = 30.0 if paper_scale() else 15.0

    def run():
        sacked = run_single_multipath_flow(
            "tcp-pr", epsilon=0.0, duration=duration,
            pr_config=PrConfig(initial_ssthresh=128),
        )
        cumulative = run_single_multipath_flow(
            "tcp-pr", epsilon=0.0, duration=duration,
            pr_config=PrConfig(initial_ssthresh=128, use_sack_accounting=False),
        )
        return sacked, cumulative

    sacked, cumulative = benchmark.pedantic(run, rounds=1, iterations=1)
    text = table(
        ["to-be-ack accounting", "Mbps at eps=0"],
        [["cumulative + SACK (ours)", sacked], ["cumulative only (literal)", cumulative]],
    )
    save_result("ablation_sack_accounting", "TCP-PR accounting ablation\n" + text)
    assert sacked > cumulative


def test_ablation_delayed_ack_receiver(benchmark):
    """TCP-PR 'neither requires changes to the TCP receiver nor uses any
    special TCP header option': a stock delayed-ACK receiver must leave
    the headline multipath result essentially intact."""
    duration = 30.0 if paper_scale() else 15.0

    def run():
        per_packet = run_single_multipath_flow(
            "tcp-pr", epsilon=0.0, duration=duration,
            pr_config=PrConfig(initial_ssthresh=128),
        )
        delayed = run_single_multipath_flow(
            "tcp-pr", epsilon=0.0, duration=duration,
            pr_config=PrConfig(initial_ssthresh=128),
            receiver_delayed_ack=True,
        )
        return per_packet, delayed

    per_packet, delayed = benchmark.pedantic(run, rounds=1, iterations=1)
    text = table(
        ["receiver", "Mbps at eps=0"],
        [["per-packet ACKs (ns-2 style)", per_packet],
         ["delayed ACKs (RFC 1122)", delayed]],
    )
    save_result(
        "ablation_delayed_ack", "TCP-PR receiver-independence ablation\n" + text
    )
    assert delayed > 0.6 * per_packet


def test_ablation_beta_sensitivity(benchmark):
    """Section 4: performance is not very sensitive to beta in (1, 5]."""
    duration = 30.0 if paper_scale() else 15.0

    def run():
        rows = []
        for beta in (1.0, 1.5, 2.0, 3.0, 5.0):
            mbps = run_single_multipath_flow(
                "tcp-pr", epsilon=0.0, duration=duration,
                pr_config=PrConfig(beta=beta, initial_ssthresh=128),
            )
            rows.append([beta, mbps])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = table(["beta", "Mbps at eps=0"], rows)
    save_result("ablation_beta", "TCP-PR beta sensitivity (10 ms mesh)\n" + text)
    by_beta = {r[0]: r[1] for r in rows}
    # beta=1 is the pathological corner; 2..5 are all healthy and similar.
    healthy = [by_beta[2.0], by_beta[3.0], by_beta[5.0]]
    assert min(healthy) > by_beta[1.0]
    assert max(healthy) < 2.0 * min(healthy)

"""Figure 6: throughput under ε-parameterized multipath routing.

The paper's headline comparison: TCP-PR vs TD-FR vs the DSACK responses
(DSACK-NM, Inc by 1, Inc by N, EWMA) for ε ∈ {0, 1, 4, 10, 500}, one
flow at a time, no background traffic; left panel 10 ms link delays,
right panel 60 ms.

Expected shape:
* TCP-PR sustains high throughput at every ε, reaching the multipath
  aggregate (≈ 30+ Mbps) at ε = 0 / 10 ms;
* the DUPACK-based schemes collapse as ε → 0;
* TD-FR holds up at 10 ms but takes "a very large drop in throughput
  when the propagation delay is increased" at ε ≈ 0;
* at ε = 500 every protocol is equal, and slower at 60 ms than 10 ms.
"""

import pytest

from repro.exec.spec import Scale
from repro.experiments.fig6_multipath import (
    Fig6Spec,
    PAPER_DURATION,
    PAPER_EPSILONS,
    PAPER_PROTOCOLS,
    QUICK_DURATION,
    QUICK_EPSILONS,
    format_fig6,
    run_fig6,
)
from repro.util.units import MS

from conftest import paper_scale, save_result


def _params():
    if paper_scale():
        return PAPER_EPSILONS, PAPER_DURATION
    return QUICK_EPSILONS, QUICK_DURATION


@pytest.mark.parametrize("delay_ms", [10, 60])
def test_fig6_multipath(benchmark, delay_ms):
    epsilons, duration = _params()

    def run():
        return run_fig6(Fig6Spec.presets(
            Scale.QUICK,
            link_delay=delay_ms * MS,
            protocols=PAPER_PROTOCOLS,
            epsilons=epsilons,
            duration=duration,
        ))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(f"fig6_{delay_ms}ms", format_fig6(result))

    table = result.throughput_mbps
    eps_lo, eps_hi = min(epsilons), max(epsilons)

    # TCP-PR wins at full multipath, by a large factor over DSACK-NM.
    assert table["tcp-pr"][eps_lo] == max(row[eps_lo] for row in table.values())
    assert table["tcp-pr"][eps_lo] > 5 * table["dsack-nm"][eps_lo]

    if delay_ms == 10:
        # TCP-PR aggregates multiple 10 Mbps paths at eps=0.
        assert table["tcp-pr"][eps_lo] > 20.0
        # TD-FR remains reasonable at small eps for small delay.
        assert table["tdfr"][eps_lo] > 5 * table["dsack-nm"][eps_lo]

    # At eps=500 (single path) every protocol is roughly equal.
    single_path = [row[eps_hi] for row in table.values()]
    assert max(single_path) < 2.0 * min(single_path)


def test_fig6_60ms_slower_than_10ms_at_single_path(benchmark):
    """Section 5: 'at ε = 500, all the throughputs are smaller on the
    right [60 ms] than on the left [10 ms]'."""
    duration = PAPER_DURATION if paper_scale() else QUICK_DURATION

    def run():
        fast = run_fig6(Fig6Spec.presets(
            Scale.QUICK, link_delay=10 * MS, protocols=("tcp-pr", "tdfr"),
            epsilons=(500.0,), duration=duration,
        ))
        slow = run_fig6(Fig6Spec.presets(
            Scale.QUICK, link_delay=60 * MS, protocols=("tcp-pr", "tdfr"),
            epsilons=(500.0,), duration=duration,
        ))
        return fast, slow

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    for protocol in ("tcp-pr", "tdfr"):
        assert (
            slow.throughput_mbps[protocol][500.0]
            < fast.throughput_mbps[protocol][500.0]
        )

"""Observability overhead: what instrumentation costs — and doesn't.

Runs the same TCP-PR dumbbell flow three ways — detached (no registry
anywhere), with a full ambient :class:`~repro.obs.Instrumentation`
attached, and with ``Simulator(profile=True)`` — asserts the simulation
itself is bit-identical in all three (the zero-cost-when-detached
contract is about *behavior*, not just speed), and writes the timing
trajectory to ``benchmarks/results/BENCH_obs.json``.

The detached run *is* the engine microbenchmark baseline: the push
hooks' only detached cost is one ``is not None`` check per hook site,
which is what keeps the regression vs the pre-observability engine
within noise (the ≤2% budget).  Attached overhead is real and recorded;
it is asserted only against a generous ceiling so the benchmark stays
robust on loaded CI machines.
"""

import json
import statistics
import time

from repro.app.bulk import BulkTransfer
from repro.obs import Instrumentation, ambient
from repro.sim import Simulator
from repro.topologies.dumbbell import DumbbellSpec, build_dumbbell
from repro.util.units import MBPS

from conftest import RESULTS_DIR, paper_scale

ROUNDS = 5


def _run_flow(duration, instrumented=False, profiled=False):
    sim = Simulator(seed=1, profile=profiled) if profiled else None
    net = build_dumbbell(
        DumbbellSpec(num_pairs=1, bottleneck_bandwidth=10 * MBPS, seed=1),
        sim=sim,
    )
    flow = BulkTransfer(net, "tcp-pr", "s0", "d0", flow_id=1)
    inst = Instrumentation() if instrumented else None
    if inst is not None:
        inst.attach(net)
    started = time.perf_counter()  # lint: allow-wallclock(benchmark harness measures real elapsed wall time by design)
    net.run(until=duration)
    elapsed = time.perf_counter() - started  # lint: allow-wallclock(benchmark harness measures real elapsed wall time by design)
    return flow.delivered_segments, net.sim.dispatched_events, elapsed, inst


def _best_of(rounds, duration, **mode):
    times = []
    delivered = events = None
    for _ in range(rounds):
        delivered, events, elapsed, _ = _run_flow(duration, **mode)
        times.append(elapsed)
    return delivered, events, min(times), statistics.median(times)


def test_obs_overhead():
    duration = 20.0 if paper_scale() else 5.0

    detached = _best_of(ROUNDS, duration)
    attached = _best_of(ROUNDS, duration, instrumented=True)
    profiled = _best_of(ROUNDS, duration, profiled=True)

    # The contract that matters: instrumentation and profiling observe
    # the simulation without perturbing it.
    assert attached[0] == detached[0], "instrumentation changed delivery"
    assert attached[1] == detached[1], "instrumentation changed event count"
    assert profiled[0] == detached[0], "profiling changed delivery"
    assert profiled[1] == detached[1], "profiling changed event count"

    # And the metrics really were recorded on the attached run.
    _, _, _, inst = _run_flow(duration, instrumented=True)
    assert len(inst.registry) > 0
    assert inst.registry.get("flow.cwnd", flow=1, variant="tcp-pr") is not None

    attached_overhead = attached[2] / detached[2] - 1.0
    profiled_overhead = profiled[2] / detached[2] - 1.0
    # Generous ceiling: the per-ACK probe work must stay the same order
    # as the simulation itself, not dominate it.
    assert attached_overhead < 0.50, (
        f"attached instrumentation cost {attached_overhead:.1%} (>50%)"
    )

    report = {
        "scenario": "tcp-pr dumbbell, 1 pair, 10 Mbps",
        "duration": duration,
        "rounds": ROUNDS,
        "dispatched_events": detached[1],
        "points": [
            {"mode": "detached", "best_s": round(detached[2], 4),
             "median_s": round(detached[3], 4)},
            {"mode": "attached", "best_s": round(attached[2], 4),
             "median_s": round(attached[3], 4)},
            {"mode": "profiled", "best_s": round(profiled[2], 4),
             "median_s": round(profiled[3], 4)},
        ],
        "attached_overhead_pct": round(attached_overhead * 100, 2),
        "profiled_overhead_pct": round(profiled_overhead * 100, 2),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_obs.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{json.dumps(report, indent=2)}\n[saved to {path}]")

"""Executor scaling: serial vs ``--jobs`` vs cached on a small fig4 grid.

Measures wall-clock for the same :class:`Fig4Spec` sweep executed three
ways — serially, over a process pool, and out of a warm result cache —
asserts all three are bit-identical, and writes the timing trajectory to
``benchmarks/results/BENCH_exec.json`` so successive runs can be
compared.  The parallel speedup depends on the machine's core count (and
is recorded, not asserted); the cache speedup is structural and is
asserted.
"""

import json
import os
import time

from repro.exec import ParallelRunner, ResultCache
from repro.experiments.fig4_params import Fig4Spec

from conftest import RESULTS_DIR, paper_scale


def _spec():
    if paper_scale():
        return Fig4Spec(
            alphas=(0.5, 0.995), betas=(1.0, 3.0, 10.0), total_flows=8,
            duration=40.0, measure_window=30.0, seed=0,
        )
    return Fig4Spec(
        alphas=(0.5, 0.995), betas=(1.0, 3.0), total_flows=4,
        duration=8.0, measure_window=6.0, seed=0,
    )


def _timed(runner, spec):
    started = time.perf_counter()  # lint: allow-wallclock(benchmark harness measures real elapsed wall time by design)
    result = runner.run(spec)
    return result, time.perf_counter() - started  # lint: allow-wallclock(benchmark harness measures real elapsed wall time by design)


def test_exec_scaling(tmp_path):
    spec = _spec()
    jobs = min(4, os.cpu_count() or 1)

    serial_result, serial_seconds = _timed(ParallelRunner(jobs=1), spec)
    parallel_result, parallel_seconds = _timed(ParallelRunner(jobs=jobs), spec)

    cache = ResultCache(tmp_path / "cache")
    cold_runner = ParallelRunner(jobs=1, cache=cache)
    cold_result, cold_seconds = _timed(cold_runner, spec)
    warm_runner = ParallelRunner(jobs=1, cache=cache)
    warm_result, warm_seconds = _timed(warm_runner, spec)

    # The executor's core guarantee: identical numbers however cells ran.
    assert parallel_result.sack_surface == serial_result.sack_surface
    assert parallel_result.pr_surface == serial_result.pr_surface
    assert cold_result.sack_surface == serial_result.sack_surface
    assert warm_result.sack_surface == serial_result.sack_surface
    assert warm_runner.last_stats.cached == len(spec.cells())
    assert warm_runner.last_stats.executed == 0

    # Cache speedup is structural (a few JSON reads vs whole simulations).
    assert warm_seconds < serial_seconds / 5.0, (
        f"warm cache took {warm_seconds:.3f}s vs serial {serial_seconds:.3f}s"
    )

    trajectory = {
        "experiment": "fig4",
        "grid_cells": len(spec.cells()),
        "total_flows": spec.total_flows,
        "duration": spec.duration,
        "cpu_count": os.cpu_count(),
        "points": [
            {"mode": "serial", "jobs": 1, "seconds": round(serial_seconds, 4)},
            {"mode": "parallel", "jobs": jobs, "seconds": round(parallel_seconds, 4)},
            {"mode": "cache-cold", "jobs": 1, "seconds": round(cold_seconds, 4)},
            {"mode": "cache-warm", "jobs": 1, "seconds": round(warm_seconds, 4)},
        ],
        "parallel_speedup": round(serial_seconds / parallel_seconds, 3),
        "cache_speedup": round(serial_seconds / max(warm_seconds, 1e-9), 1),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_exec.json"
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"\n{json.dumps(trajectory, indent=2)}\n[saved to {path}]")

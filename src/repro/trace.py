"""Tombstone for the removed ``repro.trace`` shim package.

``repro.trace`` was a deprecation shim re-exporting the monitors and
packet tracer after they moved to :mod:`repro.obs`.  The shim is now
removed; importing this module raises immediately with the migration
map so stale imports fail with an actionable message instead of a bare
``ModuleNotFoundError``.
"""

raise ModuleNotFoundError(
    "repro.trace was removed: the deprecation shim expired.  Import "
    "from the canonical homes instead — monitors "
    "(FlowThroughputMonitor, CwndMonitor, QueueMonitor, "
    "FaultTimelineMonitor) from repro.obs.monitors, the packet tracer "
    "(PacketTracer, TraceEvent, FaultRecord) from repro.obs.trace, and "
    "the new trace analysis/replay pipeline from repro.traces.  See "
    "docs/TRACES.md and docs/OBSERVABILITY.md."
)

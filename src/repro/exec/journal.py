"""Crash-safe sweep journal: resumable execution across process death.

The :class:`~repro.exec.runner.ParallelRunner` can only recover at
whole-sweep granularity on its own — a SIGKILL mid-sweep loses all
bookkeeping about what was running.  The journal closes that gap with
an append-only JSONL file under the cache root
(``.repro-cache/journal/<sweep-id>/journal.jsonl``):

* ``sweep`` record at open (total cell count, package version),
* ``cell-start`` when a cell is dispatched (with its attempt number),
* ``cell-finish`` when its result landed (status ``ok``/``failed``).

Appends go through :class:`repro.obs.export.JsonlAppender`, so a torn
tail line from a kill is truncated on the next open instead of
poisoning the stream.  On restart:

* cells with a ``cell-finish`` *and* a cached result are skipped by the
  normal cache-first path (the journal reconciles against the
  :class:`~repro.exec.cache.ResultCache`: finish records whose cached
  result has vanished are counted and re-run);
* cells that started but never finished (in flight at the kill) re-run;
  when per-cell checkpointing is armed, their checkpoint file under the
  same journal directory re-arms them mid-run via
  :func:`repro.checkpoint.checkpointable`.

The sweep id is a content hash of the cells' cache identities, so the
same sweep re-invoked resumes its own journal while any change to
functions, params, seeds, or package version starts a fresh one.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.exec.cache import CACHE_SCHEMA_VERSION, DEFAULT_CACHE_DIR
from repro.obs.export import JsonlAppender, read_jsonl

if TYPE_CHECKING:
    from repro.exec.spec import SweepCell

PathLike = Union[str, Path]

#: Schema tag written into the journal's header record.
JOURNAL_SCHEMA = "repro.sweep-journal/v1"


def sweep_id_for(cells: Sequence["SweepCell"], version: Optional[str] = None) -> str:
    """Content hash identifying a sweep: its cells' cache identities."""
    from repro.experiments.serialize import result_to_jsonable

    if version is None:
        from repro import __version__ as version  # type: ignore[no-redef]
    canonical = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "version": version,
            "cells": [
                {
                    "func": cell.func,
                    "params": result_to_jsonable(dict(cell.params)),
                    "seed": cell.seed,
                }
                for cell in cells
            ],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class JournalState:
    """What a journal says happened before this process started."""

    total: Optional[int] = None
    #: key -> highest attempt number started.
    started: Dict[str, int] = field(default_factory=dict)
    #: key -> final status ("ok" | "failed").
    finished: Dict[str, str] = field(default_factory=dict)
    #: Bytes of torn tail truncated while reading (0 = clean file).
    recovered_bytes: int = 0

    @property
    def in_flight(self) -> List[str]:
        """Keys that started but never finished (sorted for determinism)."""
        return sorted(key for key in self.started if key not in self.finished)


class SweepJournal:
    """One sweep's append-only journal plus its checkpoint directory."""

    def __init__(self, root: PathLike, sweep_id: str) -> None:
        self.root = Path(root)
        self.sweep_id = sweep_id
        self.directory = self.root / "journal" / sweep_id
        self.path = self.directory / "journal.jsonl"
        self._appender: Optional[JsonlAppender] = None

    @classmethod
    def for_cells(
        cls,
        cells: Sequence["SweepCell"],
        root: Optional[PathLike] = None,
        version: Optional[str] = None,
    ) -> "SweepJournal":
        return cls(
            root if root is not None else DEFAULT_CACHE_DIR,
            sweep_id_for(cells, version),
        )

    # ------------------------------------------------------------------
    def load(self) -> JournalState:
        """Replay the journal (recovering any torn tail first)."""
        state = JournalState()
        if not self.path.exists():
            return state
        from repro.obs.export import recover_jsonl_tail

        state.recovered_bytes = recover_jsonl_tail(self.path)
        for record in read_jsonl(self.path):
            kind = record.get("record")
            if kind == "sweep":
                state.total = record.get("total")
            elif kind == "cell-start":
                key = str(record.get("key"))
                attempt = int(record.get("attempt", 0))
                if attempt >= state.started.get(key, -1):
                    state.started[key] = attempt
            elif kind == "cell-finish":
                state.finished[str(record.get("key"))] = str(
                    record.get("status", "ok")
                )
        return state

    def open(self, total: int) -> None:
        """Open for appending, writing the sweep header on a fresh file."""
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._appender = JsonlAppender(self.path, header=False)
        if fresh:
            self._append(
                {
                    "record": "sweep",
                    "schema": JOURNAL_SCHEMA,
                    "sweep_id": self.sweep_id,
                    "total": total,
                }
            )

    def close(self) -> None:
        if self._appender is not None:
            self._appender.close()
            self._appender = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def cell_started(self, key: str, attempt: int = 0) -> None:
        self._append({"record": "cell-start", "key": key, "attempt": attempt})

    def cell_finished(self, key: str, status: str = "ok") -> None:
        self._append({"record": "cell-finish", "key": key, "status": status})
        # The cell completed; its mid-run checkpoint (if any) is spent.
        # The worker already unlinks on clean scope exit — this covers
        # workers that died *after* returning the result.
        try:
            self.checkpoint_path(key).unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    def checkpoint_path(self, key: str) -> Path:
        """Per-cell checkpoint file inside this sweep's journal directory.

        Named by a hash of the cell key, so arbitrary key strings never
        have to be filesystem-safe; scoped under the sweep id, so any
        change to the sweep's content invalidates old checkpoints.
        """
        digest = hashlib.sha256(key.encode()).hexdigest()[:24]
        return self.directory / f"{digest}.ckpt"

    def _append(self, record: Dict[str, object]) -> None:
        if self._appender is None:
            raise ValueError("journal is not open (call open() first)")
        self._appender.write(record)

    def __repr__(self) -> str:
        return f"<SweepJournal {self.sweep_id[:12]} at {self.directory}>"

"""Sweep execution subsystem: declarative specs, parallel fan-out, caching.

Every paper figure is a grid of mutually independent simulations.  This
package turns that observation into infrastructure:

* :mod:`repro.exec.spec` — :class:`Scale` presets, :class:`SweepCell`,
  and the :class:`ExperimentSpec` base class each figure subclasses;
* :mod:`repro.exec.runner` — :class:`ParallelRunner` / :func:`run_sweep`,
  fanning cells over a ``multiprocessing`` pool with bit-identical
  serial/parallel results;
* :mod:`repro.exec.cache` — :class:`ResultCache`, a content-addressed
  on-disk store under ``.repro-cache/`` making repeat runs near-instant.

See ``docs/EXECUTOR.md`` for the design.
"""

from repro.exec.cache import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    CacheStats,
    ResultCache,
)
from repro.exec.runner import ParallelRunner, RunStats, run_sweep
from repro.exec.spec import ExperimentSpec, Scale, SweepCell, resolve_func

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "CacheStats",
    "ExperimentSpec",
    "ParallelRunner",
    "ResultCache",
    "RunStats",
    "Scale",
    "SweepCell",
    "resolve_func",
    "run_sweep",
]

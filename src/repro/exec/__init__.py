"""Sweep execution subsystem: declarative specs, parallel fan-out, caching.

Every paper figure is a grid of mutually independent simulations.  This
package turns that observation into infrastructure:

* :mod:`repro.exec.spec` — :class:`Scale` presets, :class:`SweepCell`,
  the :class:`ExperimentSpec` base class each figure subclasses, and
  :class:`PartialSweepResult` for sweeps that lost cells to failures;
* :mod:`repro.exec.runner` — :class:`ParallelRunner` / :func:`run_sweep`,
  fanning cells over a ``multiprocessing`` pool with bit-identical
  serial/parallel results and a graceful failure policy
  (:class:`CellError` capture, per-cell ``timeout``, ``retries`` with
  re-derived seeds, ``keep_going`` partial assembly);
* :mod:`repro.exec.cache` — :class:`ResultCache`, a content-addressed
  on-disk store under ``.repro-cache/`` making repeat runs near-instant;
* :mod:`repro.exec.journal` — :class:`SweepJournal`, the append-only
  crash log that makes a killed sweep resumable (paired with the
  per-cell checkpoints of :mod:`repro.checkpoint`);
* :mod:`repro.exec.telemetry` — :class:`CellTelemetry` /
  :class:`SweepTelemetry`, the per-cell execution stories (cache hits,
  retries, timeouts, wall time, metric summaries) every run attaches to
  :attr:`RunStats.telemetry`.

See ``docs/EXECUTOR.md`` for the design, ``docs/FAULTS.md`` for the
failure policy, and ``docs/OBSERVABILITY.md`` for metric collection.
"""

from repro.exec.cache import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    CacheStats,
    ResultCache,
)
from repro.exec.journal import (
    JOURNAL_SCHEMA,
    JournalState,
    SweepJournal,
    sweep_id_for,
)
from repro.exec.runner import (
    CellError,
    CellTimeout,
    ParallelRunner,
    RunStats,
    SweepError,
    run_sweep,
)
from repro.exec.spec import (
    ExperimentSpec,
    PartialSweepResult,
    Scale,
    SweepCell,
    resolve_func,
)
from repro.exec.telemetry import CellTelemetry, SweepTelemetry

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "CacheStats",
    "CellError",
    "CellTelemetry",
    "CellTimeout",
    "ExperimentSpec",
    "JOURNAL_SCHEMA",
    "JournalState",
    "ParallelRunner",
    "PartialSweepResult",
    "ResultCache",
    "RunStats",
    "Scale",
    "SweepCell",
    "SweepError",
    "SweepJournal",
    "SweepTelemetry",
    "resolve_func",
    "run_sweep",
    "sweep_id_for",
]

"""Declarative sweep specifications.

Every figure of the paper is a *sweep*: a grid of mutually independent
simulations (one per flow count, per (alpha, beta) pair, per
(protocol, epsilon) cell, ...) whose outputs are assembled into one
result object.  This module gives that shape a first-class API:

* :class:`Scale` — the quick-vs-paper configuration axis that used to be
  spelled as per-module ``PAPER_*``/``QUICK_*`` constant pairs and
  copy-pasted ``if args.paper_scale:`` blocks;
* :class:`SweepCell` — one independent simulation, described by data
  only (an importable function path, JSON-able parameters, and a
  per-cell seed) so it can cross a process boundary and be content-hashed
  for caching;
* :class:`ExperimentSpec` — the base class each figure subclasses with
  ``cells()`` (explode the spec into cells) and ``assemble()`` (fold the
  per-cell results back into the figure's result dataclass).

Because a cell's seed is a pure function of the spec — never of
execution order — running the cells serially, in any order, or across a
process pool yields bit-identical results (see
:mod:`repro.exec.runner`).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Callable, ClassVar, Dict, List, Mapping

from repro.sim.rng import derive_child_seed


class Scale(Enum):
    """The two configuration scales every experiment ships presets for."""

    QUICK = "quick"
    PAPER = "paper"

    @classmethod
    def from_flag(cls, paper_scale: bool) -> "Scale":
        """Map the CLI's ``--paper-scale`` boolean onto the enum."""
        return cls.PAPER if paper_scale else cls.QUICK


def resolve_func(path: str) -> Callable[..., Any]:
    """Resolve a ``"package.module:function"`` path to the callable.

    Cells reference their work function by path rather than by object so
    a cell is plain data: picklable for worker processes and hashable
    for the result cache.
    """
    module_name, sep, attr = path.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(
            f"cell function path must look like 'pkg.module:func', got {path!r}"
        )
    module = importlib.import_module(module_name)
    try:
        func = getattr(module, attr)
    except AttributeError as exc:
        raise ValueError(f"module {module_name!r} has no attribute {attr!r}") from exc
    if not callable(func):
        raise ValueError(f"{path!r} resolved to a non-callable {func!r}")
    return func


@dataclass(frozen=True)
class SweepCell:
    """One independent simulation of a sweep.

    ``func`` is an importable ``"module:function"`` path; the function is
    called as ``func(**params, seed=seed)`` and must return either
    JSON-able data or a dataclass registered with
    :func:`repro.experiments.serialize.register_result_type` (so cache
    entries round-trip).  ``key`` identifies the cell within its sweep
    (the flow count, the (alpha, beta) pair, ...).
    """

    key: Any
    func: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0

    def resolve(self) -> Callable[..., Any]:
        return resolve_func(self.func)

    def run(self) -> Any:
        """Execute the cell in-process."""
        return self.resolve()(**dict(self.params), seed=self.seed)


@dataclass(frozen=True)
class PartialSweepResult:
    """Default container for a sweep that lost cells to failures.

    ``values`` holds the completed cells (``{cell.key: result}``),
    ``errors`` the failed ones (``{cell.key: CellError}``).  Specs whose
    result type can represent holes (e.g. ``Fig7Result``) override
    :meth:`ExperimentSpec.assemble_partial` and never produce this.
    """

    spec_name: str
    values: Mapping[Any, Any]
    errors: Mapping[Any, Any]

    @property
    def complete(self) -> bool:
        return not self.errors


@dataclass(frozen=True)
class ExperimentSpec:
    """Base class for declarative experiment descriptions.

    Subclasses are frozen dataclasses carrying every knob of one figure
    (topology, grid axes, durations, master ``seed``) plus two class
    attributes:

    * ``name`` — a short stable identifier (``"fig2"``, ...), used for
      default seed derivation and display;
    * ``SCALE_PRESETS`` — a ``{Scale: {field: value}}`` mapping holding
      the quick/paper configurations that used to live in per-module
      ``QUICK_*``/``PAPER_*`` constant pairs.

    and two methods:

    * :meth:`cells` — explode the spec into independent
      :class:`SweepCell` instances;
    * :meth:`assemble` — fold ``{cell.key: result}`` back into the
      figure's result object.
    """

    name: ClassVar[str] = "experiment"
    SCALE_PRESETS: ClassVar[Mapping[Scale, Mapping[str, Any]]] = {}

    @classmethod
    def presets(cls, scale: "Scale | str" = Scale.QUICK, **overrides: Any):
        """Build a spec at ``scale``, with keyword overrides applied.

        Overrides whose value is ``None`` are ignored, so CLI code can
        forward optional arguments verbatim
        (``presets(scale, flow_counts=args.flows or None)``).
        """
        if isinstance(scale, str):
            scale = Scale(scale)
        params: Dict[str, Any] = dict(cls.SCALE_PRESETS.get(scale, {}))
        params.update(
            (key, value) for key, value in overrides.items() if value is not None
        )
        return cls(**params)

    def with_seed(self, seed: "int | None") -> "ExperimentSpec":
        """A copy of the spec with ``seed`` replaced (no-op for None)."""
        if seed is None:
            return self
        return replace(self, seed=seed)

    def cell_seed(self, label: str) -> int:
        """Default per-cell seed: a stable hash of (master seed, cell label).

        Independent of how many cells exist or in what order they run,
        so serial and parallel execution see identical streams.
        """
        master = getattr(self, "seed", 0)
        return derive_child_seed(master, f"{self.name}/{label}")

    def cells(self) -> List[SweepCell]:
        raise NotImplementedError

    def assemble(self, results: Mapping[Any, Any]) -> Any:
        raise NotImplementedError

    def assemble_partial(
        self, results: Mapping[Any, Any], errors: Mapping[Any, Any]
    ) -> Any:
        """Fold an *incomplete* result set (``keep_going`` after failures).

        ``results`` maps completed cell keys to their values; ``errors``
        maps failed keys to :class:`~repro.exec.runner.CellError`
        records.  The default wraps both in a
        :class:`PartialSweepResult`; specs whose result type tolerates
        holes should override this to degrade gracefully instead.  Only
        called when ``errors`` is non-empty — a clean sweep always goes
        through :meth:`assemble`.
        """
        return PartialSweepResult(
            spec_name=self.name, values=dict(results), errors=dict(errors)
        )

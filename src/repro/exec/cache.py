"""Content-addressed on-disk cache for sweep-cell results.

A cell's simulation output is a pure function of its spec — the work
function, its parameters, and the seed — so for a fixed package version
the result never changes and re-running it is pure waste.
:class:`ResultCache` keys each entry by a SHA-256 hash of the canonical
JSON of ``(schema, package version, func, params, seed)`` and stores the
result under ``.repro-cache/<hh>/<hash>.json`` using the serialization
codecs from :mod:`repro.experiments.serialize`.

Robustness rules:

* any unreadable/undecodable entry (truncated write, foreign schema,
  unregistered result type) is treated as a miss, best-effort deleted,
  and counted in :attr:`CacheStats.errors` — the cell simply re-runs;
* entries are written atomically (temp file + ``os.replace``) so
  concurrent writers — e.g. two CLI invocations sharing a cache
  directory — can never expose a half-written entry;
* bumping :data:`CACHE_SCHEMA_VERSION` or the package version
  invalidates every old entry by construction (the key changes).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.spec import SweepCell

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump to invalidate every existing cache entry after an on-disk format
#: change.
CACHE_SCHEMA_VERSION = 1


def _package_version() -> str:
    # Imported lazily: ``repro`` pulls in the whole package, and this
    # module must stay importable from ``repro.experiments.__init__``
    # without creating an import cycle.
    from repro import __version__

    return __version__


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0


@dataclass
class ResultCache:
    """Filesystem-backed, content-addressed store of cell results.

    ``version`` defaults to the installed ``repro.__version__`` and is
    folded into every key, so upgrading the package invalidates stale
    results instead of serving them.
    """

    root: Path = Path(DEFAULT_CACHE_DIR)
    version: Optional[str] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.version is None:
            self.version = _package_version()

    # -- keys ----------------------------------------------------------
    def key_for(self, cell: "SweepCell") -> str:
        """The content hash identifying ``cell``'s result."""
        from repro.experiments.serialize import result_to_jsonable

        canonical = json.dumps(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "version": self.version,
                "func": cell.func,
                "params": result_to_jsonable(dict(cell.params)),
                "seed": cell.seed,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def path_for(self, cell: "SweepCell") -> Path:
        key = self.key_for(cell)
        return self.root / key[:2] / f"{key}.json"

    # -- access --------------------------------------------------------
    def load(self, cell: "SweepCell") -> Tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss.

        A corrupted or undecodable entry counts as a miss (and an
        error): the file is removed so the re-run can heal the cache.
        """
        from repro.experiments.serialize import decode_result

        path = self.path_for(cell)
        try:
            raw = path.read_text()
        except OSError:
            self.stats.misses += 1
            return False, None
        try:
            blob = json.loads(raw)
            value = decode_result(blob["result"])
        except (ValueError, LookupError, TypeError):
            self.stats.errors += 1
            self.stats.misses += 1
            path.unlink(missing_ok=True)
            return False, None
        self.stats.hits += 1
        return True, value

    def store(self, cell: "SweepCell", value: Any) -> Path:
        """Persist ``value`` for ``cell`` (atomic replace); returns the path."""
        from repro.experiments.serialize import encode_result, result_to_jsonable

        path = self.path_for(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob: Dict[str, Any] = {
            "schema": CACHE_SCHEMA_VERSION,
            "version": self.version,
            "func": cell.func,
            "params": result_to_jsonable(dict(cell.params)),
            "seed": cell.seed,
            "result": encode_result(value),
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(blob, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

"""Importable cell functions exercising the runner's failure paths.

Sweep cells reference their work by ``"module:function"`` path, so test
cells must live in an importable module — worker processes re-resolve
the path on their side of the fork.  These helpers are deliberately tiny
and deterministic; the test suite (``tests/test_exec_failures.py``) and
``docs/EXECUTOR.md`` both build scenarios from them.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional

#: Importable paths, mirroring the figure modules' ``CELL_FUNC`` idiom.
OK_CELL = "repro.exec.testing:ok_cell"
BOOM_CELL = "repro.exec.testing:boom_cell"
FLAKY_CELL = "repro.exec.testing:flaky_cell"
SLEEPY_CELL = "repro.exec.testing:sleepy_cell"
METRIC_CELL = "repro.exec.testing:metric_cell"
CHECKPOINT_CELL = "repro.exec.testing:checkpoint_cell"


def ok_cell(*, value: Any = 1, seed: int) -> Dict[str, Any]:
    """Succeeds immediately, echoing its inputs (cache/round-trip probe)."""
    return {"value": value, "seed": seed}


def boom_cell(*, message: str = "boom", seed: int) -> None:
    """Always raises — the unconditionally crashing cell."""
    raise ValueError(message)


def flaky_cell(*, fail_seed: int, value: Any = 1, seed: int) -> Dict[str, Any]:
    """Fails iff called with ``seed == fail_seed``.

    Passing the cell's own seed as ``fail_seed`` makes the first attempt
    fail deterministically while a retry — which re-derives the attempt
    seed — succeeds, exercising the backoff/retry path without any
    wall-clock coupling.
    """
    if seed == fail_seed:
        raise RuntimeError(f"flaky failure on seed {seed}")
    return {"value": value, "seed": seed}


def sleepy_cell(*, sleep: float, value: Any = 1, seed: int) -> Dict[str, Any]:
    """Sleeps ``sleep`` wall-clock seconds, then succeeds (timeout probe)."""
    time.sleep(sleep)  # lint: allow-wallclock(deliberate stall to trip the runner's wall-clock timeout guard)
    return {"value": value, "seed": seed}


def metric_cell(*, value: float = 1.0, seed: int) -> Dict[str, Any]:
    """Records one counter on the ambient instrumentation, then succeeds.

    With a runner's ``collect_metrics=True`` the counter crosses the
    process boundary as a ``metric`` record tagged with the cell key;
    without collection there is no ambient instrumentation and the cell
    records nothing (telemetry-collection probe).
    """
    from repro.obs import get_ambient

    inst = get_ambient()
    if inst is not None:
        inst.registry.counter("test.cell_value", seed=seed).inc(value)
    return {"value": value, "seed": seed}


def _log_line(log_path: Optional[str], line: str) -> None:
    if log_path is None:
        return
    with open(log_path, "a") as handle:
        handle.write(line + "\n")
        handle.flush()


def checkpoint_cell(
    *,
    duration: float = 4.0,
    pause_at: Optional[float] = None,
    block_path: Optional[str] = None,
    log_path: Optional[str] = None,
    tag: str = "cell",
    seed: int,
) -> Dict[str, Any]:
    """A real (tiny) simulation built on :func:`~repro.checkpoint.checkpointable`.

    Runs one TCP-PR flow over a one-pair dumbbell for ``duration``
    simulated seconds.  With the runner's ``checkpoint_every`` armed,
    the simulator snapshots periodically; a killed process re-invoked
    with ``resume`` picks the cell up mid-run.

    The crash-choreography hooks (all optional) let a test stage a kill
    deterministically: the cell appends ``"<tag>:fresh"`` /
    ``"<tag>:resumed"`` to ``log_path`` when it starts computing, and —
    on a fresh (non-resumed) run only — pauses at ``pause_at`` simulated
    seconds, then stalls on wall-clock while ``block_path`` exists.  The
    test watches the log, SIGKILLs the sweep while the cell is stalled
    (checkpoints already on disk), removes the sentinel, and re-invokes.
    """
    from repro.app.bulk import BulkTransfer
    from repro.checkpoint import checkpointable
    from repro.obs.instrument import maybe_observe
    from repro.topologies.dumbbell import DumbbellSpec

    def build() -> Dict[str, Any]:
        net = DumbbellSpec(num_pairs=1, seed=seed).build().network
        flow = BulkTransfer(net, "tcp-pr", "s0", "d0", flow_id=1)
        maybe_observe(net)
        return {"net": net, "flow": flow}

    with checkpointable(build) as scope:
        _log_line(log_path, f"{tag}:{'resumed' if scope.resumed else 'fresh'}")
        if not scope.resumed:
            if pause_at is not None:
                scope.run(until=pause_at)
            if block_path is not None:
                while os.path.exists(block_path):
                    time.sleep(0.05)  # lint: allow-wallclock(deliberate stall so a crash test can SIGKILL this worker mid-cell)
        scope.run(until=duration)
        flow = scope["flow"]
        return {
            "delivered": flow.receiver.delivered,
            "resumed": scope.resumed,
            "seed": seed,
        }

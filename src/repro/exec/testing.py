"""Importable cell functions exercising the runner's failure paths.

Sweep cells reference their work by ``"module:function"`` path, so test
cells must live in an importable module — worker processes re-resolve
the path on their side of the fork.  These helpers are deliberately tiny
and deterministic; the test suite (``tests/test_exec_failures.py``) and
``docs/EXECUTOR.md`` both build scenarios from them.
"""

from __future__ import annotations

import time
from typing import Any, Dict

#: Importable paths, mirroring the figure modules' ``CELL_FUNC`` idiom.
OK_CELL = "repro.exec.testing:ok_cell"
BOOM_CELL = "repro.exec.testing:boom_cell"
FLAKY_CELL = "repro.exec.testing:flaky_cell"
SLEEPY_CELL = "repro.exec.testing:sleepy_cell"
METRIC_CELL = "repro.exec.testing:metric_cell"


def ok_cell(*, value: Any = 1, seed: int) -> Dict[str, Any]:
    """Succeeds immediately, echoing its inputs (cache/round-trip probe)."""
    return {"value": value, "seed": seed}


def boom_cell(*, message: str = "boom", seed: int) -> None:
    """Always raises — the unconditionally crashing cell."""
    raise ValueError(message)


def flaky_cell(*, fail_seed: int, value: Any = 1, seed: int) -> Dict[str, Any]:
    """Fails iff called with ``seed == fail_seed``.

    Passing the cell's own seed as ``fail_seed`` makes the first attempt
    fail deterministically while a retry — which re-derives the attempt
    seed — succeeds, exercising the backoff/retry path without any
    wall-clock coupling.
    """
    if seed == fail_seed:
        raise RuntimeError(f"flaky failure on seed {seed}")
    return {"value": value, "seed": seed}


def sleepy_cell(*, sleep: float, value: Any = 1, seed: int) -> Dict[str, Any]:
    """Sleeps ``sleep`` wall-clock seconds, then succeeds (timeout probe)."""
    time.sleep(sleep)  # lint: allow-wallclock(deliberate stall to trip the runner's wall-clock timeout guard)
    return {"value": value, "seed": seed}


def metric_cell(*, value: float = 1.0, seed: int) -> Dict[str, Any]:
    """Records one counter on the ambient instrumentation, then succeeds.

    With a runner's ``collect_metrics=True`` the counter crosses the
    process boundary as a ``metric`` record tagged with the cell key;
    without collection there is no ambient instrumentation and the cell
    records nothing (telemetry-collection probe).
    """
    from repro.obs import get_ambient

    inst = get_ambient()
    if inst is not None:
        inst.registry.counter("test.cell_value", seed=seed).inc(value)
    return {"value": value, "seed": seed}

"""Sweep execution: fan independent cells out over a process pool.

:class:`ParallelRunner` takes the cells of an
:class:`~repro.exec.spec.ExperimentSpec`, serves what it can from a
:class:`~repro.exec.cache.ResultCache`, executes the misses — serially
or over a ``multiprocessing`` pool — and hands ``{key: result}`` back to
the spec's ``assemble``.  Because each cell carries its own derived
seed and builds its own simulator, execution order and process placement
cannot influence the numbers: ``jobs=1`` and ``jobs=N`` are
bit-identical.

Failure policy (a sweep farm must degrade, not die):

* every cell runs inside a guard that captures exceptions as data — a
  crashing cell produces a :class:`CellError`, never an aborted grid;
* ``timeout`` puts a per-cell wall-clock ceiling on execution (enforced
  with ``SIGALRM`` inside the worker, so a runaway simulation cannot
  hang the sweep);
* ``retries`` re-runs a failed cell with exponential backoff, each
  attempt under a freshly derived seed (``derive_child_seed(seed,
  "attempt/k")``), so a pathological RNG draw doesn't doom the cell;
* with ``keep_going=True`` the failed cells are reported in
  :attr:`RunStats.errors` and handed to the spec's ``assemble_partial``;
  the default ``keep_going=False`` raises :class:`SweepError` *after*
  draining (and caching) every in-flight cell, so completed work is
  never discarded either way;
* results are cached as each cell completes, not at the end of the
  sweep — a late crash cannot discard earlier cells' work.

:func:`run_sweep` is the one-call convenience used by every
``run_fig*`` entry point::

    from repro.experiments import Fig4Spec, Scale, run_sweep

    spec = Fig4Spec.presets(Scale.PAPER, seed=7)
    result = run_sweep(spec, jobs=8, cache=ResultCache(), keep_going=True)
"""

from __future__ import annotations

import multiprocessing
import signal
import time
import traceback as _traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exec.cache import ResultCache
from repro.exec.spec import ExperimentSpec, SweepCell, resolve_func
from repro.exec.telemetry import (
    CellTelemetry,
    SweepTelemetry,
    summaries_from_records,
)
from repro.obs.export import key_to_str
from repro.obs.instrument import Instrumentation, ambient
from repro.sim.rng import derive_child_seed


class CellTimeout(Exception):
    """Raised inside a worker when a cell exceeds its wall-clock budget."""


@dataclass(frozen=True)
class CellError:
    """One cell's terminal failure, captured as plain (picklable) data.

    Appears as the cell's value in keep-going results and in
    :attr:`RunStats.errors`; never stored in the result cache, so a
    healed code path re-runs the cell on the next invocation.
    """

    key: Any
    func: str
    error: str  # exception class name ("ValueError", "CellTimeout", ...)
    message: str
    traceback: str
    attempts: int
    timed_out: bool

    def summary(self) -> str:
        note = " (timed out)" if self.timed_out else ""
        return (
            f"{self.key!r}: {self.error}: {self.message}{note} "
            f"[{self.attempts} attempt{'s' if self.attempts != 1 else ''}]"
        )


class SweepError(RuntimeError):
    """Raised in fail-fast mode when one or more cells fail.

    ``errors`` holds the per-cell failures (cell order), ``completed``
    the successful results — which were already written to the cache, so
    a re-run under ``keep_going`` (or after a fix) resumes from them.
    """

    def __init__(self, errors: List[CellError], completed: Dict[Any, Any]) -> None:
        lines = "\n  ".join(error.summary() for error in errors)
        super().__init__(
            f"{len(errors)} sweep cell{'s' if len(errors) != 1 else ''} "
            f"failed (completed cells are cached; pass keep_going=True / "
            f"--keep-going to assemble partial results):\n  {lines}"
        )
        self.errors = errors
        self.completed = completed


#: Payload shipped to a worker: everything needed to run one cell with
#: the full failure policy applied *inside* the worker, so retries and
#: timeouts behave identically in-process and across the pool.  The two
#: booleans are (collect_metrics, collect_trace); the trailing element
#: arms mid-run checkpointing as ``(checkpoint path, every seconds)``
#: (None = off) — see :mod:`repro.checkpoint`.
_Payload = Tuple[
    int,
    str,
    Dict[str, Any],
    int,
    Optional[float],
    int,
    float,
    bool,
    bool,
    Optional[Tuple[str, float]],
]
#: What comes back: (index, failure-or-None, value, attempts, wall_time,
#: records) where failure is (error name, message, traceback, timed_out)
#: and records holds the cell's repro.obs/v1 records — plain dicts so
#: they pickle across the pool — or None when collection was off.
_Outcome = Tuple[
    int,
    Optional[Tuple[str, str, str, bool]],
    Any,
    int,
    float,
    Optional[List[Dict[str, Any]]],
]


@contextmanager
def _alarm(seconds: Optional[float]):
    """Arm a SIGALRM-based wall-clock ceiling around a cell execution.

    No-op when ``seconds`` is None or the platform lacks ``SIGALRM``
    (the pure-Python simulator checks signals between bytecodes, so the
    alarm always lands).  The timer is cleared before results are
    pickled back, and fork does not inherit interval timers, so workers
    start clean.

    Safe under an enclosing SIGALRM user (e.g. a test harness arming
    its own per-test deadline): the previous handler is restored even
    if disarming raises, and a pending outer interval timer is re-armed
    with its remaining time instead of being silently cancelled.
    """
    if seconds is None or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_alarm(signum, frame):
        raise CellTimeout(f"cell exceeded its {seconds:g} s wall-clock timeout")

    previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
    outer_delay, _ = signal.setitimer(signal.ITIMER_REAL, seconds)
    armed_at = time.monotonic()
    try:
        yield
    finally:
        try:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
        finally:
            signal.signal(signal.SIGALRM, previous_handler)
            if outer_delay:
                # The enclosing timer keeps ticking on *wall* time while
                # we borrowed the itimer; hand back whatever is left (a
                # tiny positive value if it already expired — zero would
                # disarm it instead of firing).
                remaining = outer_delay - (time.monotonic() - armed_at)
                signal.setitimer(signal.ITIMER_REAL, max(remaining, 1e-6))


@contextmanager
def _cell_checkpoint(checkpoint: Optional[Tuple[str, float]]):
    """Arm the ambient :class:`~repro.checkpoint.CellPlan` for one attempt.

    With ``checkpoint`` set, a cell function built on
    :func:`repro.checkpoint.checkpointable` saves its simulator every
    ``every`` seconds of simulated time to ``path`` — and, when that
    file already exists (a previous process died mid-cell), resumes
    from it instead of re-running from zero.
    """
    if checkpoint is None:
        yield
        return
    from repro.checkpoint import CellPlan, cell_plan

    path, every = checkpoint
    with cell_plan(CellPlan(Path(path), every)):
        yield


def _execute_payload(payload: Tuple[str, Dict[str, Any], int]) -> Any:
    """Bare worker entry point: resolve the cell function and run it.

    Kept for backward compatibility (and the no-failure-policy serial
    path's tests); :func:`_execute_payload_guarded` is the hardened
    equivalent.  Module-level so it pickles under every start method.
    """
    func_path, params, seed = payload
    return resolve_func(func_path)(**params, seed=seed)


def _execute_payload_guarded(payload: _Payload) -> _Outcome:
    """Run one cell with exception capture, timeout, and retries.

    Runs identically in-process and inside a pool worker, which is what
    makes serial and parallel failure sets bit-identical: the guard is
    the same code object, so captured tracebacks match exactly.

    When collection is requested, an ambient
    :class:`~repro.obs.instrument.Instrumentation` is active around each
    attempt (fresh per attempt, so retries never double-record); cell
    functions opt in by calling
    :func:`~repro.obs.instrument.maybe_observe`.
    """
    (
        index,
        func_path,
        params,
        seed,
        timeout,
        retries,
        backoff,
        collect_metrics,
        collect_trace,
        checkpoint,
    ) = payload
    started = time.perf_counter()
    collect = collect_metrics or collect_trace
    attempt = 0
    while True:
        attempt_seed = (
            seed if attempt == 0 else derive_child_seed(seed, f"attempt/{attempt}")
        )
        try:
            func = resolve_func(func_path)
            with _cell_checkpoint(checkpoint):
                if collect:
                    instrumentation = Instrumentation(trace=collect_trace)
                    with ambient(instrumentation):
                        with _alarm(timeout):
                            value = func(**params, seed=attempt_seed)
                    records: Optional[List[Dict[str, Any]]] = (
                        instrumentation.to_records()
                    )
                else:
                    with _alarm(timeout):
                        value = func(**params, seed=attempt_seed)
                    records = None
            wall = time.perf_counter() - started
            return index, None, value, attempt + 1, wall, records
        # lint: allow-broad-except(worker guard must capture every cell failure as CellError data, never crash the pool)
        except Exception as exc:
            timed_out = isinstance(exc, CellTimeout)
            failure = (
                type(exc).__name__,
                str(exc),
                _traceback.format_exc(),
                timed_out,
            )
            if checkpoint is not None:
                # A failed attempt's mid-run checkpoint must not leak
                # into the retry: retries re-derive the seed to escape a
                # pathological draw, which resuming would defeat.
                try:
                    Path(checkpoint[0]).unlink()
                except OSError:
                    pass
        if attempt >= retries:
            wall = time.perf_counter() - started
            return index, failure, None, attempt + 1, wall, None
        time.sleep(backoff * (2.0 ** attempt))
        attempt += 1


def _default_context() -> multiprocessing.context.BaseContext:
    # fork keeps the already-imported package in the children (fast,
    # and the norm on Linux); spawn is the portable fallback.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@dataclass
class RunStats:
    """What one :meth:`ParallelRunner.run_cells` call did."""

    total: int = 0
    cached: int = 0
    executed: int = 0
    jobs: int = 1
    elapsed: float = 0.0
    failed: int = 0
    timed_out: int = 0
    retried: int = 0
    #: Cells re-armed from a mid-run checkpoint left by a killed process.
    resumed: int = 0
    #: Cells whose journal said "finished" but whose cached result had
    #: vanished — reconciled by re-running them.
    reconciled: int = 0
    #: Terminal per-cell failures, in cell order (empty on a clean run).
    errors: List[CellError] = field(default_factory=list)
    #: Per-cell execution stories + collected metric records (see
    #: :mod:`repro.exec.telemetry`); populated by every run.
    telemetry: Optional[SweepTelemetry] = None


class ParallelRunner:
    """Executes sweep cells with caching, fan-out, and graceful failure.

    Args:
        jobs: Maximum worker processes (1 = in-process serial execution,
            no pool — unless ``timeout`` is set, which always uses a
            pool so a hung cell cannot hang the parent).
        cache: Result cache; ``None`` disables caching.
        timeout: Per-cell wall-clock ceiling in seconds (None = no limit).
        retries: Re-run a failed cell up to this many extra times, each
            attempt with a re-derived seed.
        backoff: Base of the exponential retry backoff:
            attempt *k* sleeps ``backoff * 2**k`` seconds first.
        keep_going: On cell failure, keep executing and report the
            failures in :attr:`RunStats.errors` /
            ``spec.assemble_partial`` instead of raising
            :class:`SweepError`.
        collect_metrics: Activate an ambient
            :class:`~repro.obs.instrument.Instrumentation` around each
            cell; cell functions that call ``maybe_observe(...)`` get
            their metrics shipped back and attached to
            :attr:`RunStats.telemetry`.
        collect_trace: Additionally enable packet/fault tracing on the
            ambient instrumentation (expensive; opt-in separately).
        checkpoint_every: Simulated-time interval between mid-cell
            checkpoints (None = off).  Arms the sweep journal: each
            cell built on :func:`repro.checkpoint.checkpointable`
            periodically snapshots its simulator under the journal
            directory, so a killed process resumes cells *mid-run*.
        resume: Replay the sweep journal before executing, so a
            re-invoked sweep skips journalled-and-cached cells, re-runs
            reconciliation misses, and (with ``checkpoint_every``)
            re-arms in-flight cells from their latest checkpoint.
            Journalling itself is armed by either flag.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.25,
        keep_going: bool = False,
        collect_metrics: bool = False,
        collect_trace: bool = False,
        checkpoint_every: Optional[float] = None,
        resume: bool = False,
    ) -> None:
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff = backoff
        self.keep_going = keep_going
        self.collect_metrics = collect_metrics
        self.collect_trace = collect_trace
        self.checkpoint_every = checkpoint_every
        self.resume = resume
        self._mp_context = mp_context
        self.last_stats = RunStats()

    def run(self, spec: ExperimentSpec) -> Any:
        """Execute every cell of ``spec`` and assemble the figure result.

        On a clean run this is ``spec.assemble``; when ``keep_going``
        swallowed failures it is ``spec.assemble_partial`` over the
        surviving cells.
        """
        values = self.run_cells(spec.cells())
        errors = {
            key: value for key, value in values.items()
            if isinstance(value, CellError)
        }
        if errors:
            good = {
                key: value for key, value in values.items()
                if not isinstance(value, CellError)
            }
            return spec.assemble_partial(good, errors)
        return spec.assemble(values)

    def run_cells(self, cells: Iterable[SweepCell]) -> Dict[Any, Any]:
        """Execute ``cells`` (cache-first) and return ``{cell.key: result}``.

        Failed cells appear as :class:`CellError` values under
        ``keep_going``; otherwise a :class:`SweepError` is raised after
        every in-flight cell has drained (and been cached).  The
        returned dict is in cell order regardless of completion order.
        """
        started = time.perf_counter()
        cells = list(cells)
        keys = [cell.key for cell in cells]
        if len(set(keys)) != len(keys):
            raise ValueError(f"sweep cells must have unique keys, got {keys!r}")

        # Fail fast on typos: resolve every cell function *before* any
        # cache read or pool fork, so a bad path is one clear error
        # instead of N identical worker tracebacks.
        for func_path in dict.fromkeys(cell.func for cell in cells):
            resolve_func(func_path)

        results: Dict[Any, Any] = {}
        pending: List[SweepCell] = []
        for cell in cells:
            if self.cache is not None:
                hit, value = self.cache.load(cell)
                if hit:
                    results[cell.key] = value
                    continue
            pending.append(cell)

        # Crash-safe bookkeeping: with checkpointing or resume armed, an
        # append-only journal under the cache root records every
        # dispatch and completion, and provides the per-cell checkpoint
        # paths.  See repro.exec.journal for the recovery contract.
        journal = None
        resumed = 0
        reconciled = 0
        checkpoints: Optional[List[Optional[Tuple[str, float]]]] = None
        if self.checkpoint_every is not None or self.resume:
            from repro.exec.journal import SweepJournal

            journal = SweepJournal.for_cells(
                cells,
                root=self.cache.root if self.cache is not None else None,
                version=self.cache.version if self.cache is not None else None,
            )
            journal_state = journal.load()
            journal.open(total=len(cells))
            pending_keys = [key_to_str(cell.key) for cell in pending]
            reconciled = sum(
                1 for key in pending_keys if key in journal_state.finished
            )
            checkpoints = []
            for key in pending_keys:
                ckpt_path = journal.checkpoint_path(key)
                if self.checkpoint_every is not None:
                    checkpoints.append((str(ckpt_path), self.checkpoint_every))
                    if ckpt_path.exists():
                        resumed += 1
                else:
                    checkpoints.append(None)
                journal.cell_started(
                    key, attempt=journal_state.started.get(key, -1) + 1
                )

        errors: Dict[Any, CellError] = {}
        cell_stories: Dict[Any, CellTelemetry] = {}
        collected: List[Dict[str, Any]] = []
        retried = 0
        timed_out = 0
        try:
            for index, failure, value, attempts, wall, records in self._execute(
                pending, checkpoints
            ):
                cell = pending[index]
                retried += attempts - 1
                if records:
                    tag = key_to_str(cell.key)
                    for record in records:
                        record["cell"] = tag
                    collected.extend(records)
                error_text: Optional[str] = None
                cell_timed_out = False
                if failure is None:
                    results[cell.key] = value
                    if self.cache is not None:
                        # Store as each cell completes: a crash later in
                        # the sweep cannot discard this cell's work.
                        self.cache.store(cell, value)
                    if journal is not None:
                        journal.cell_finished(key_to_str(cell.key), "ok")
                else:
                    error_name, message, trace, cell_timed_out = failure
                    error_text = f"{error_name}: {message}"
                    errors[cell.key] = CellError(
                        key=cell.key,
                        func=cell.func,
                        error=error_name,
                        message=message,
                        traceback=trace,
                        attempts=attempts,
                        timed_out=cell_timed_out,
                    )
                    if cell_timed_out:
                        timed_out += 1
                    if journal is not None:
                        journal.cell_finished(key_to_str(cell.key), "failed")
                cell_stories[cell.key] = CellTelemetry(
                    key=cell.key,
                    cached=False,
                    attempts=attempts,
                    timed_out=cell_timed_out,
                    error=error_text,
                    wall_time=wall,
                    metrics=summaries_from_records(records) if records else {},
                )
        finally:
            if journal is not None:
                journal.close()

        error_list = [errors[cell.key] for cell in pending if cell.key in errors]
        elapsed = time.perf_counter() - started
        telemetry = SweepTelemetry(
            cells=[
                cell_stories.get(
                    cell.key,
                    CellTelemetry(
                        key=cell.key,
                        cached=True,
                        attempts=0,
                        timed_out=False,
                        error=None,
                        wall_time=0.0,
                    ),
                )
                for cell in cells
            ],
            collected=collected,
            total=len(cells),
            cached=len(cells) - len(pending),
            executed=len(pending),
            failed=len(error_list),
            timed_out=timed_out,
            retried=retried,
            elapsed=elapsed,
            jobs=self.jobs,
        )
        self.last_stats = RunStats(
            total=len(cells),
            cached=len(cells) - len(pending),
            executed=len(pending),
            jobs=self.jobs,
            elapsed=elapsed,
            failed=len(error_list),
            timed_out=timed_out,
            retried=retried,
            resumed=resumed,
            reconciled=reconciled,
            errors=error_list,
            telemetry=telemetry,
        )
        if error_list and not self.keep_going:
            raise SweepError(error_list, results)
        combined = {**results, **errors}
        return {cell.key: combined[cell.key] for cell in cells}

    def _execute(
        self,
        cells: Sequence[SweepCell],
        checkpoints: Optional[Sequence[Optional[Tuple[str, float]]]] = None,
    ) -> Iterator[_Outcome]:
        """Yield guarded outcomes for ``cells`` (any completion order)."""
        payloads: List[_Payload] = [
            (
                index,
                cell.func,
                dict(cell.params),
                cell.seed,
                self.timeout,
                self.retries,
                self.backoff,
                self.collect_metrics,
                self.collect_trace,
                checkpoints[index] if checkpoints is not None else None,
            )
            for index, cell in enumerate(cells)
        ]
        if not payloads:
            return
        # A timeout always routes through a pool — SIGALRM in the parent
        # would collide with test harnesses (and a hung cell would still
        # hang a serial parent); a worker's main thread is all ours.
        use_pool = (self.jobs > 1 and len(payloads) > 1) or (
            self.timeout is not None
        )
        if not use_pool:
            for payload in payloads:
                yield _execute_payload_guarded(payload)
            return
        context = (
            self._mp_context if self._mp_context is not None else _default_context()
        )
        with context.Pool(processes=min(self.jobs, len(payloads))) as pool:
            # imap_unordered: one slow or crashing cell never blocks the
            # others' results from being consumed (and cached) promptly.
            for outcome in pool.imap_unordered(_execute_payload_guarded, payloads):
                yield outcome


def run_sweep(
    spec: ExperimentSpec,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    seed: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.25,
    keep_going: bool = False,
    collect_metrics: bool = False,
    collect_trace: bool = False,
    checkpoint_every: Optional[float] = None,
    resume: bool = False,
    runner: Optional[ParallelRunner] = None,
) -> Any:
    """Run a declarative sweep end-to-end and return the assembled result.

    ``seed``, when given, overrides the spec's master seed (the common
    CLI case: one ``--seed`` flag threading into a preset spec).  Pass a
    pre-built ``runner`` to reuse one runner across sweeps (and read its
    ``last_stats`` afterwards); the other executor knobs are ignored
    then.  ``checkpoint_every`` / ``resume`` arm the crash-safe sweep
    journal (see :mod:`repro.exec.journal`).
    """
    spec = spec.with_seed(seed)
    if runner is None:
        runner = ParallelRunner(
            jobs=jobs,
            cache=cache,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            keep_going=keep_going,
            collect_metrics=collect_metrics,
            collect_trace=collect_trace,
            checkpoint_every=checkpoint_every,
            resume=resume,
        )
    return runner.run(spec)

"""Sweep execution: fan independent cells out over a process pool.

:class:`ParallelRunner` takes the cells of an
:class:`~repro.exec.spec.ExperimentSpec`, serves what it can from a
:class:`~repro.exec.cache.ResultCache`, executes the misses — serially
or over a ``multiprocessing`` pool — and hands ``{key: result}`` back to
the spec's ``assemble``.  Because each cell carries its own derived
seed and builds its own simulator, execution order and process placement
cannot influence the numbers: ``jobs=1`` and ``jobs=N`` are
bit-identical.

:func:`run_sweep` is the one-call convenience used by every
``run_fig*`` entry point::

    from repro.experiments import Fig4Spec, Scale, run_sweep

    spec = Fig4Spec.presets(Scale.PAPER, seed=7)
    result = run_sweep(spec, jobs=8, cache=ResultCache())
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exec.cache import ResultCache
from repro.exec.spec import ExperimentSpec, SweepCell, resolve_func


def _execute_payload(payload: Tuple[str, Dict[str, Any], int]) -> Any:
    """Worker entry point: resolve the cell function by path and run it.

    Module-level (not a closure) so it pickles under every
    multiprocessing start method.
    """
    func_path, params, seed = payload
    return resolve_func(func_path)(**params, seed=seed)


def _default_context() -> multiprocessing.context.BaseContext:
    # fork keeps the already-imported package in the children (fast,
    # and the norm on Linux); spawn is the portable fallback.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@dataclass
class RunStats:
    """What one :meth:`ParallelRunner.run_cells` call did."""

    total: int = 0
    cached: int = 0
    executed: int = 0
    jobs: int = 1
    elapsed: float = 0.0


class ParallelRunner:
    """Executes sweep cells with optional caching and process fan-out.

    ``jobs`` is the maximum number of worker processes (1 = in-process
    serial execution, no pool).  ``cache=None`` disables caching.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self._mp_context = mp_context
        self.last_stats = RunStats()

    def run(self, spec: ExperimentSpec) -> Any:
        """Execute every cell of ``spec`` and assemble the figure result."""
        return spec.assemble(self.run_cells(spec.cells()))

    def run_cells(self, cells: Iterable[SweepCell]) -> Dict[Any, Any]:
        """Execute ``cells`` (cache-first) and return ``{cell.key: result}``."""
        started = time.perf_counter()
        cells = list(cells)
        keys = [cell.key for cell in cells]
        if len(set(keys)) != len(keys):
            raise ValueError(f"sweep cells must have unique keys, got {keys!r}")

        results: Dict[Any, Any] = {}
        pending: List[SweepCell] = []
        for cell in cells:
            if self.cache is not None:
                hit, value = self.cache.load(cell)
                if hit:
                    results[cell.key] = value
                    continue
            pending.append(cell)

        for cell, value in zip(pending, self._execute(pending)):
            results[cell.key] = value
            if self.cache is not None:
                self.cache.store(cell, value)

        self.last_stats = RunStats(
            total=len(cells),
            cached=len(cells) - len(pending),
            executed=len(pending),
            jobs=self.jobs,
            elapsed=time.perf_counter() - started,
        )
        return results

    def _execute(self, cells: Sequence[SweepCell]) -> List[Any]:
        payloads = [(cell.func, dict(cell.params), cell.seed) for cell in cells]
        if self.jobs <= 1 or len(cells) <= 1:
            return [_execute_payload(payload) for payload in payloads]
        context = self._mp_context if self._mp_context is not None else _default_context()
        with context.Pool(processes=min(self.jobs, len(cells))) as pool:
            return pool.map(_execute_payload, payloads)


def run_sweep(
    spec: ExperimentSpec,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    seed: Optional[int] = None,
) -> Any:
    """Run a declarative sweep end-to-end and return the assembled result.

    ``seed``, when given, overrides the spec's master seed (the common
    CLI case: one ``--seed`` flag threading into a preset spec).
    """
    spec = spec.with_seed(seed)
    return ParallelRunner(jobs=jobs, cache=cache).run(spec)

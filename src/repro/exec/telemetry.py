"""Sweep telemetry: why each cell behaved the way it did.

A sweep's assembled figure says *what* each cell produced; the
telemetry carried on :attr:`~repro.exec.runner.RunStats.telemetry` says
*why* — whether the cell was served from cache, how many attempts it
took, whether it timed out, how long it ran, and (when metric
collection was active) the per-metric summaries its instrumentation
gathered inside the worker.  The CLI's ``--metrics-out`` flag
serializes all of this, plus the full metric records, as one
``repro.obs/v1`` stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.export import key_to_str


@dataclass(frozen=True)
class CellTelemetry:
    """One cell's execution story.

    Attributes:
        key: The cell's sweep key.
        cached: Served from the result cache (no execution; the other
            fields are zeroed, and no fresh metrics exist for it).
        attempts: Executions including retries (0 when cached).
        timed_out: The *terminal* attempt hit the wall-clock ceiling.
        error: ``"ErrorName: message"`` for a terminally failed cell.
        wall_time: Worker wall-clock seconds across all attempts.
        metrics: Per-metric summaries from the cell's instrumentation
            (empty unless the runner collected metrics).
    """

    key: Any
    cached: bool
    attempts: int
    timed_out: bool
    error: Optional[str]
    wall_time: float
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        """This cell as a ``repro.obs/v1`` ``cell`` record."""
        return {
            "record": "cell",
            "key": key_to_str(self.key),
            "cached": self.cached,
            "attempts": self.attempts,
            "timed_out": self.timed_out,
            "error": self.error,
            "wall_time": self.wall_time,
            "metrics": self.metrics,
        }


@dataclass
class SweepTelemetry:
    """Everything one sweep reported about itself.

    Attributes:
        cells: Per-cell telemetry, in cell order.
        collected: Full ``repro.obs/v1`` records gathered inside the
            workers (metric / trace / fault records, each tagged with
            its ``cell`` key); empty unless collection was enabled.
        total / cached / executed / failed / timed_out / retried /
        elapsed / jobs: The sweep-level counters, mirroring
            :class:`~repro.exec.runner.RunStats`.
    """

    cells: List[CellTelemetry] = field(default_factory=list)
    collected: List[Dict[str, Any]] = field(default_factory=list)
    total: int = 0
    cached: int = 0
    executed: int = 0
    failed: int = 0
    timed_out: int = 0
    retried: int = 0
    elapsed: float = 0.0
    jobs: int = 1

    def sweep_record(self) -> Dict[str, Any]:
        """The aggregate counters as a ``repro.obs/v1`` ``sweep`` record."""
        return {
            "record": "sweep",
            "total": self.total,
            "cached": self.cached,
            "executed": self.executed,
            "failed": self.failed,
            "timed_out": self.timed_out,
            "retried": self.retried,
            "elapsed": self.elapsed,
            "jobs": self.jobs,
        }

    def metric_records(self) -> List[Dict[str, Any]]:
        """The ``--metrics-out`` stream: metrics, cells, sweep (no header)."""
        records = [
            record for record in self.collected if record.get("record") == "metric"
        ]
        records.extend(cell.to_record() for cell in self.cells)
        records.append(self.sweep_record())
        return records

    def trace_records(self) -> List[Dict[str, Any]]:
        """The ``--trace-out`` stream: packet and fault events (no header)."""
        return [
            record
            for record in self.collected
            if record.get("record") in ("trace", "fault")
        ]

    def cell(self, key: Any) -> Optional[CellTelemetry]:
        """The telemetry for one cell key, or None."""
        for entry in self.cells:
            if entry.key == key:
                return entry
        return None


def summaries_from_records(
    records: List[Dict[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """Compact per-metric aggregates from full ``metric`` records.

    Mirrors :meth:`repro.obs.registry.MetricsRegistry.summaries` but
    works on the plain-dict records that crossed the process boundary.
    """
    out: Dict[str, Dict[str, Any]] = {}
    for record in records:
        if record.get("record") != "metric":
            continue
        labels = record.get("labels") or {}
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        name = f"{record['name']}{{{label_text}}}"
        kind = record.get("kind")
        if kind in ("counter", "gauge"):
            out[name] = {"kind": kind, "value": record.get("value")}
        elif kind == "histogram":
            count = record.get("count") or 0
            out[name] = {
                "kind": kind,
                "count": count,
                "mean": (record.get("sum", 0.0) / count) if count else None,
                "min": record.get("min"),
                "max": record.get("max"),
            }
        elif kind == "timeseries":
            values = record.get("values") or []
            out[name] = {
                "kind": kind,
                "n": len(values),
                "last": values[-1] if values else None,
                "min": min(values) if values else None,
                "max": max(values) if values else None,
            }
    return out

"""The metrics registry: counters, gauges, histograms, timeseries.

A :class:`MetricsRegistry` is the single sink every instrumentation
probe writes into (see :mod:`repro.obs.instrument`).  Metrics are
identified by ``(kind, name, labels)`` — asking twice for the same
identity returns the same object, so probes can be created eagerly and
hot paths touch only pre-resolved metric objects.

Design constraints, in order:

* **Appending must be cheap.**  A timeseries is two parallel Python
  lists (``times`` / ``values``); recording a sample is two appends, no
  allocation beyond the floats themselves.  This is what lets the
  per-ACK hooks in :mod:`repro.tcp.base` and :mod:`repro.core.pr` run
  inline instead of via scheduled sampling events (which would perturb
  the simulator's event count).
* **Export must be stable.**  :meth:`MetricsRegistry.to_records`
  produces the plain-dict records of the ``repro.obs/v1`` schema
  (see :mod:`repro.obs.export` and ``docs/OBSERVABILITY.md``).
* **Nothing here knows about the simulator.**  Time is whatever the
  caller passes; the registry crosses process boundaries as records.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Default fixed buckets for reorder-displacement-style histograms
#: (segment counts; Fibonacci-ish so the tail stays resolved).
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 3, 5, 8, 13, 21, 34, 55, 89)

LabelItems = Tuple[Tuple[str, Any], ...]


def _label_items(labels: Mapping[str, Any]) -> LabelItems:
    return tuple(sorted(labels.items()))


class Metric:
    """Common identity carried by every metric type."""

    kind = "metric"
    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels

    @property
    def label_dict(self) -> Dict[str, Any]:
        return dict(self.labels)

    def _identity(self) -> Dict[str, Any]:
        return {
            "record": "metric",
            "kind": self.kind,
            "name": self.name,
            "labels": self.label_dict,
        }

    def to_record(self) -> Dict[str, Any]:
        """One ``repro.obs/v1`` record describing this metric's state."""
        raise NotImplementedError

    def summary(self) -> Dict[str, Any]:
        """A compact aggregate (for sweep telemetry; no sample arrays)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        labels = ",".join(f"{key}={value}" for key, value in self.labels)
        return f"<{type(self).__name__} {self.name}{{{labels}}}>"


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def to_record(self) -> Dict[str, Any]:
        return {**self._identity(), "value": self.value}

    def summary(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge(Metric):
    """A value that can go up and down (last write wins)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def to_record(self) -> Dict[str, Any]:
        return {**self._identity(), "value": self.value}

    def summary(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram(Metric):
    """Fixed-bucket histogram (bucket edges are upper bounds, ``le``)."""

    kind = "histogram"
    __slots__ = ("buckets", "counts", "count", "total", "min", "max")

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, labels)
        edges = tuple(float(edge) for edge in buckets)
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError(
                f"histogram buckets must be strictly increasing, got {buckets!r}"
            )
        self.buckets = edges
        #: counts[i] = observations with value <= buckets[i];
        #: counts[-1] = overflow (> the last edge).
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def to_record(self) -> Dict[str, Any]:
        return {
            **self._identity(),
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    def summary(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class Timeseries(Metric):
    """Timestamped samples held as parallel ``times`` / ``values`` lists.

    The parallel-array layout keeps appends allocation-light and makes
    :meth:`sample_at_or_before` a plain bisect — no per-call list
    rebuild (the failure mode the old
    ``FlowThroughputMonitor.sample_at_or_before`` had).
    """

    kind = "timeseries"
    __slots__ = ("times", "values")

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self.times: List[float] = []
        self.values: List[float] = []

    def append(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def sample_at_or_before(self, time: float) -> Tuple[float, float]:
        """Latest ``(time, value)`` sample with ``sample time <= time``."""
        if not self.times:
            raise ValueError(f"timeseries {self.name!r} has no samples")
        index = bisect_right(self.times, time)
        index = max(index - 1, 0)
        return self.times[index], self.values[index]

    def to_record(self) -> Dict[str, Any]:
        return {
            **self._identity(),
            "times": list(self.times),
            "values": list(self.values),
        }

    def summary(self) -> Dict[str, Any]:
        values = self.values
        return {
            "kind": self.kind,
            "n": len(values),
            "last": values[-1] if values else None,
            "min": min(values) if values else None,
            "max": max(values) if values else None,
        }


class MetricsRegistry:
    """Get-or-create home for every metric of one observed run.

    The accessors (:meth:`counter`, :meth:`gauge`, :meth:`histogram`,
    :meth:`timeseries`) return the existing metric when the
    ``(name, labels)`` identity was seen before — with a
    :class:`TypeError` if it was seen as a *different* kind, since that
    is always an instrumentation bug.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], Metric] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, labels: Mapping[str, Any], **kwargs):
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r}{dict(key[1])!r} already registered as "
                f"{metric.kind}, not {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    def timeseries(self, name: str, **labels: Any) -> Timeseries:
        return self._get_or_create(Timeseries, name, labels)

    # ------------------------------------------------------------------
    def metrics(self) -> List[Metric]:
        """Every registered metric, in registration order."""
        return list(self._metrics.values())

    def get(self, name: str, **labels: Any) -> Optional[Metric]:
        """The metric with this exact identity, or None."""
        return self._metrics.get((name, _label_items(labels)))

    def find(self, name: str) -> List[Metric]:
        """All metrics with this name, across label sets."""
        return [metric for metric in self._metrics.values() if metric.name == name]

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    def to_records(self) -> List[Dict[str, Any]]:
        """All metrics as ``repro.obs/v1`` records (see docs/OBSERVABILITY.md)."""
        return [metric.to_record() for metric in self._metrics.values()]

    def summaries(self) -> Dict[str, Dict[str, Any]]:
        """``"name{label=value,...}" -> summary`` for sweep telemetry."""
        out: Dict[str, Dict[str, Any]] = {}
        for metric in self._metrics.values():
            labels = ",".join(f"{key}={value}" for key, value in metric.labels)
            out[f"{metric.name}{{{labels}}}"] = metric.summary()
        return out

    def __repr__(self) -> str:
        return f"<MetricsRegistry metrics={len(self._metrics)}>"

"""Packet event tracing (canonical home; was :mod:`repro.trace.events`).

A :class:`PacketTracer` hooks a link's drop listeners and wraps a node's
receive path to record per-packet events, ns-2-trace style.  Intended for
debugging and for the reordering analyses in tests/examples — tracing
every packet of a large experiment is intentionally opt-in, via
:meth:`repro.obs.instrument.Instrumentation.attach` or the ``--trace-out``
CLI flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.net.packet import Packet

if TYPE_CHECKING:
    from repro.net.link import Link
    from repro.net.node import Node


@dataclass(frozen=True)
class TraceEvent:
    """One recorded packet event."""

    time: float
    kind: str  # "recv" | "drop"
    where: str  # node or link name
    packet_uid: int
    flow_id: int
    packet_kind: str
    seq: int
    ack: int


@dataclass(frozen=True)
class FaultRecord:
    """One applied fault-injection state change (see :mod:`repro.faults`)."""

    time: float
    kind: str  # "link-down" | "link-up" | "path-blackout" | ...
    target: str  # link name or path description
    detail: str  # human-readable state change ("down", "delay x3", ...)


class PacketTracer:
    """Records arrivals at chosen nodes and drops on chosen links."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    # ------------------------------------------------------------------
    def watch_node(self, node: "Node") -> None:
        """Record every packet delivered to ``node`` (wraps its receive)."""
        original = node.receive

        def traced_receive(packet: Packet) -> None:
            self.events.append(
                TraceEvent(
                    time=node.sim.now,
                    kind="recv",
                    where=node.name,
                    packet_uid=packet.uid,
                    flow_id=packet.flow_id,
                    packet_kind=packet.kind,
                    seq=packet.seq,
                    ack=packet.ack,
                )
            )
            original(packet)

        node.receive = traced_receive  # type: ignore[method-assign]

    def watch_link_drops(self, link: "Link") -> None:
        """Record every packet the link drops."""

        def on_drop(dropped_on: "Link", packet: Packet) -> None:
            self.events.append(
                TraceEvent(
                    time=dropped_on.sim.now,
                    kind="drop",
                    where=dropped_on.name,
                    packet_uid=packet.uid,
                    flow_id=packet.flow_id,
                    packet_kind=packet.kind,
                    seq=packet.seq,
                    ack=packet.ack,
                )
            )

        link.drop_listeners.append(on_drop)

    # ------------------------------------------------------------------
    def arrivals(
        self, flow_id: Optional[int] = None, kind: str = "data"
    ) -> List[TraceEvent]:
        """Arrival events, optionally filtered by flow."""
        return [
            event
            for event in self.events
            if event.kind == "recv"
            and event.packet_kind == kind
            and (flow_id is None or event.flow_id == flow_id)
        ]

    def drops(self, flow_id: Optional[int] = None) -> List[TraceEvent]:
        return [
            event
            for event in self.events
            if event.kind == "drop"
            and (flow_id is None or event.flow_id == flow_id)
        ]

    def arrival_seqs(self, flow_id: int) -> List[int]:
        """Data-segment sequence numbers in arrival order for one flow."""
        return [event.seq for event in self.arrivals(flow_id=flow_id)]

"""Packet event tracing: the emit side of the ``repro.traces`` pipeline.

A :class:`PacketTracer` hooks a node's send path, a node's receive path,
and a link's drop listeners to record per-packet events, ns-2-trace
style.  Every event carries the flow id and a *monotonic per-flow
sequence number* (:attr:`TraceEvent.flow_seq`), assigned at record time,
so downstream consumers (:mod:`repro.traces`) can join send/recv/drop
events without depending on emission or serialization order.

Tracing every packet of a large experiment is intentionally opt-in, via
:meth:`repro.obs.instrument.Instrumentation.attach` (``trace=True``) or
the ``--trace-out`` CLI flag; the recorded stream is exported as
``repro.obs/v1`` JSONL and analyzed with ``repro trace analyze``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.net.packet import Packet

if TYPE_CHECKING:
    from repro.net.link import Link
    from repro.net.node import Node


@dataclass(frozen=True)
class TraceEvent:
    """One recorded packet event.

    Attributes:
        time: Simulation time of the event.
        kind: ``"send"`` (origin injection), ``"recv"`` (delivery to a
            watched node), or ``"drop"`` (lost on a watched link).
        where: Node name (send/recv) or link name (drop).
        packet_uid: Globally unique packet id (one per transmission).
        flow_id: Stable per-flow identifier (the transport flow id).
        flow_seq: Monotonic per-flow event counter assigned by the
            tracer — the stable join key for analyzers, independent of
            how records were interleaved on export.
        packet_kind: ``"data"`` or ``"ack"``.
        seq: Data segment number (for ACKs: the triggering segment).
        ack: Cumulative ACK carried (``-1`` on data packets).
        retransmit: True when the data segment is a retransmission.
        path: ``"a>b>c"`` source route when per-packet multipath routing
            chose one; ``None`` under destination-based forwarding.
    """

    time: float
    kind: str  # "send" | "recv" | "drop"
    where: str  # node or link name
    packet_uid: int
    flow_id: int
    flow_seq: int
    packet_kind: str
    seq: int
    ack: int
    retransmit: bool = False
    path: Optional[str] = None


@dataclass(frozen=True)
class FaultRecord:
    """One applied fault-injection state change (see :mod:`repro.faults`)."""

    time: float
    kind: str  # "link-down" | "link-up" | "path-blackout" | ...
    target: str  # link name or path description
    detail: str  # human-readable state change ("down", "delay x3", ...)


class _TracedReceive:
    """Picklable wrapper installed over ``node.receive`` by a tracer.

    A plain class (not a closure) so that a traced simulation graph can
    round-trip through :mod:`repro.checkpoint` — closures cannot be
    pickled, and these wrappers end up referenced from heap events.
    """

    __slots__ = ("tracer", "node", "original")

    def __init__(
        self, tracer: "PacketTracer", node: "Node", original: "Callable[[Packet], None]"
    ) -> None:
        self.tracer = tracer
        self.node = node
        self.original = original

    def __call__(self, packet: Packet) -> None:
        node = self.node
        self.tracer._record(node.sim.now, "recv", node.name, packet)
        self.original(packet)


class _TracedSend:
    """Picklable wrapper installed over ``node.send`` by a tracer."""

    __slots__ = ("tracer", "node", "original")

    def __init__(
        self, tracer: "PacketTracer", node: "Node", original: "Callable[[Packet], None]"
    ) -> None:
        self.tracer = tracer
        self.node = node
        self.original = original

    def __call__(self, packet: Packet) -> None:
        self.original(packet)
        node = self.node
        self.tracer._record(node.sim.now, "send", node.name, packet)


class _DropRecorder:
    """Picklable link drop listener feeding a tracer."""

    __slots__ = ("tracer",)

    def __init__(self, tracer: "PacketTracer") -> None:
        self.tracer = tracer

    def __call__(self, dropped_on: "Link", packet: Packet) -> None:
        self.tracer._record(dropped_on.sim.now, "drop", dropped_on.name, packet)


class PacketTracer:
    """Records sends, arrivals, and drops at chosen nodes and links.

    One tracer owns one event list and the per-flow ``flow_seq``
    counters; all watch methods are idempotent per node/link, so the
    unified :class:`~repro.obs.instrument.Instrumentation` surface can
    attach overlapping component sets without double-recording.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._flow_seq: Dict[int, int] = {}
        self._watched_recv: Set[int] = set()
        self._watched_send: Set[int] = set()
        self._watched_drop: Set[int] = set()

    # ------------------------------------------------------------------
    def _record(self, time: float, kind: str, where: str, packet: Packet) -> None:
        flow_id = packet.flow_id
        flow_seq = self._flow_seq.get(flow_id, 0)
        self._flow_seq[flow_id] = flow_seq + 1
        route = packet.route
        self.events.append(
            TraceEvent(
                time=time,
                kind=kind,
                where=where,
                packet_uid=packet.uid,
                flow_id=flow_id,
                flow_seq=flow_seq,
                packet_kind=packet.kind,
                seq=packet.seq,
                ack=packet.ack,
                retransmit=packet.retransmit,
                path=">".join(route) if route is not None else None,
            )
        )

    # ------------------------------------------------------------------
    def watch_node(self, node: "Node") -> None:
        """Record every packet delivered to ``node`` (wraps its receive)."""
        if id(node) in self._watched_recv:
            return
        self._watched_recv.add(id(node))
        node.receive = _TracedReceive(  # type: ignore[method-assign]
            self, node, node.receive
        )

    def watch_node_sends(self, node: "Node") -> None:
        """Record every packet injected at ``node`` (wraps its send).

        The event is recorded *after* the node's path policy ran, so the
        chosen source route (if any) appears in :attr:`TraceEvent.path`.
        """
        if id(node) in self._watched_send:
            return
        self._watched_send.add(id(node))
        node.send = _TracedSend(self, node, node.send)  # type: ignore[method-assign]

    def watch_link_drops(self, link: "Link") -> None:
        """Record every packet the link drops."""
        if id(link) in self._watched_drop:
            return
        self._watched_drop.add(id(link))
        link.drop_listeners.append(_DropRecorder(self))

    # ------------------------------------------------------------------
    def sends(
        self, flow_id: Optional[int] = None, kind: str = "data"
    ) -> List[TraceEvent]:
        """Send events, optionally filtered by flow."""
        return [
            event
            for event in self.events
            if event.kind == "send"
            and event.packet_kind == kind
            and (flow_id is None or event.flow_id == flow_id)
        ]

    def arrivals(
        self, flow_id: Optional[int] = None, kind: str = "data"
    ) -> List[TraceEvent]:
        """Arrival events, optionally filtered by flow."""
        return [
            event
            for event in self.events
            if event.kind == "recv"
            and event.packet_kind == kind
            and (flow_id is None or event.flow_id == flow_id)
        ]

    def drops(self, flow_id: Optional[int] = None) -> List[TraceEvent]:
        return [
            event
            for event in self.events
            if event.kind == "drop"
            and (flow_id is None or event.flow_id == flow_id)
        ]

    def arrival_seqs(self, flow_id: int) -> List[int]:
        """Data-segment sequence numbers in arrival order for one flow."""
        return [event.seq for event in self.arrivals(flow_id=flow_id)]

"""Unified observability: metrics, monitors, traces, structured export.

The one attachment surface is :class:`Instrumentation` (or the
:func:`observe` shorthand)::

    from repro.obs import observe

    inst = observe(net)              # probe every link/sender/receiver
    net.run(until=30.0)
    inst.registry.get("flow.cwnd", flow=1, variant="tcp-pr").values

Submodules:

* :mod:`repro.obs.registry` — :class:`MetricsRegistry` and the metric
  types (counter, gauge, histogram, timeseries);
* :mod:`repro.obs.instrument` — push-based component probes, the
  :class:`Instrumentation` owner object, and the ambient context used
  by the sweep executor;
* :mod:`repro.obs.monitors` — the poll-based samplers (throughput,
  cwnd, queue, fault timeline), formerly :mod:`repro.trace.monitors`;
* :mod:`repro.obs.trace` — :class:`PacketTracer` and the trace/fault
  record types, formerly :mod:`repro.trace.events`;
* :mod:`repro.obs.export` — the ``repro.obs/v1`` JSONL/CSV schema.
"""

from repro.obs.export import (
    SCHEMA,
    JsonlAppender,
    read_jsonl,
    recover_jsonl_tail,
    summarize_records,
    write_csv,
    write_jsonl,
)
from repro.obs.instrument import (
    Instrumentation,
    ambient,
    get_ambient,
    maybe_observe,
    observe,
    set_ambient,
)
from repro.obs.monitors import (
    CwndMonitor,
    FaultTimelineMonitor,
    FlowThroughputMonitor,
    QueueMonitor,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timeseries,
)
from repro.obs.trace import FaultRecord, PacketTracer, TraceEvent

__all__ = [
    "DEFAULT_BUCKETS",
    "SCHEMA",
    "Counter",
    "CwndMonitor",
    "FaultRecord",
    "FaultTimelineMonitor",
    "FlowThroughputMonitor",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "PacketTracer",
    "QueueMonitor",
    "Timeseries",
    "TraceEvent",
    "ambient",
    "get_ambient",
    "maybe_observe",
    "observe",
    "JsonlAppender",
    "read_jsonl",
    "recover_jsonl_tail",
    "set_ambient",
    "summarize_records",
    "write_csv",
    "write_jsonl",
]

"""Sampling monitors (canonical home; was :mod:`repro.trace.monitors`).

Monitors poll state on a fixed interval (they never perturb the
simulation's outcome, though their sampling events do appear in the
event count — the push-based probes of :mod:`repro.obs.instrument` are
the event-neutral alternative).  :class:`FlowThroughputMonitor` provides
the "data delivered during the last N seconds" measurement the paper's
fairness experiments use.

New code should attach monitors through
:class:`repro.obs.instrument.Instrumentation` rather than the raw
constructors, so one object owns every observer of a run.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, List, Mapping

from repro.analysis.throughput import FlowSample, goodput_bps
from repro.obs.trace import FaultRecord

if TYPE_CHECKING:
    from repro.net.queues import Queue
    from repro.sim.engine import Simulator
    from repro.tcp.receiver import TcpReceiver


class FlowThroughputMonitor:
    """Samples a receiver's in-order delivery counter over time.

    Args:
        sim: Owning simulator.
        receiver: The flow's :class:`~repro.tcp.receiver.TcpReceiver`.
        mss_bytes: Segment size for byte conversion.
        interval: Sampling period in seconds.
    """

    def __init__(
        self,
        sim: "Simulator",
        receiver: "TcpReceiver",
        mss_bytes: int = 1000,
        interval: float = 0.5,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.receiver = receiver
        self.mss_bytes = mss_bytes
        self.interval = interval
        self.samples: List[FlowSample] = [FlowSample(sim.now, receiver.delivered)]
        # Parallel time array so sample_at_or_before is one bisect, not a
        # per-call list rebuild (O(n^2) across a sweep's many lookups).
        self._times: List[float] = [sim.now]
        self._schedule()

    def _schedule(self) -> None:
        self.sim.post_in(self.interval, self._sample, None, "flow monitor")

    def _sample(self) -> None:
        self.samples.append(FlowSample(self.sim.now, self.receiver.delivered))
        self._times.append(self.sim.now)
        self._schedule()

    # ------------------------------------------------------------------
    def sample_at_or_before(self, time: float) -> FlowSample:
        """Latest recorded sample with ``sample.time <= time``."""
        index = bisect_left(self._times, time + 1e-12)
        if index == 0:
            return self.samples[0]
        return self.samples[index - 1]

    def final_sample(self) -> FlowSample:
        """The receiver's state *now* (not just the last poll)."""
        return FlowSample(self.sim.now, self.receiver.delivered)

    def goodput_bps(self, start: float, end: float) -> float:
        """Average goodput between two times (nearest samples used)."""
        start_sample = self.sample_at_or_before(start)
        end_sample = (
            self.final_sample() if end >= self.sim.now else self.sample_at_or_before(end)
        )
        return goodput_bps(start_sample, end_sample, self.mss_bytes)

    def last_window_goodput_bps(self, window: float) -> float:
        """Goodput over the final ``window`` seconds of the run so far."""
        end = self.sim.now
        return self.goodput_bps(max(0.0, end - window), end)

    # StatefulComponent protocol (see repro.checkpoint.state): the
    # samples are logical state; the engine/receiver references and the
    # sampling cadence wiring are not.
    _SNAPSHOT_EXCLUDE = frozenset({"sim", "receiver"})

    def snapshot_state(self) -> "dict[str, object]":
        from repro.checkpoint.state import snapshot_object

        return snapshot_object(self, exclude=self._SNAPSHOT_EXCLUDE)

    def restore_state(self, state: "Mapping[str, object]") -> None:
        from repro.checkpoint.state import restore_object

        restore_object(self, state)


class CwndMonitor:
    """Samples any object's ``cwnd`` attribute over time."""

    def __init__(self, sim: "Simulator", sender, interval: float = 0.1) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.sender = sender
        self.interval = interval
        self.times: List[float] = []
        self.values: List[float] = []
        self._sample()

    def _sample(self) -> None:
        self.times.append(self.sim.now)
        self.values.append(float(self.sender.cwnd))
        self.sim.post_in(self.interval, self._sample, None, "cwnd monitor")

    def max_cwnd(self) -> float:
        return max(self.values)

    def mean_cwnd(self) -> float:
        return sum(self.values) / len(self.values)

    _SNAPSHOT_EXCLUDE = frozenset({"sim", "sender"})

    def snapshot_state(self) -> "dict[str, object]":
        from repro.checkpoint.state import snapshot_object

        return snapshot_object(self, exclude=self._SNAPSHOT_EXCLUDE)

    def restore_state(self, state: "Mapping[str, object]") -> None:
        from repro.checkpoint.state import restore_object

        restore_object(self, state)


class FaultTimelineMonitor:
    """Records fault-injection state changes as an injector applies them.

    Pass an instance as ``monitor=`` to
    :class:`~repro.faults.injector.Injector` (or obtain one from
    :meth:`repro.obs.instrument.Instrumentation.fault_timeline`); each
    applied event becomes a :class:`~repro.obs.trace.FaultRecord`, so an
    experiment's fault timeline can be lined up against its packet trace
    and throughput samples.
    """

    def __init__(self) -> None:
        self.records: List[FaultRecord] = []

    def record(self, time: float, kind: str, target: str, detail: str) -> None:
        self.records.append(
            FaultRecord(time=time, kind=kind, target=target, detail=detail)
        )

    def of_kind(self, kind: str) -> List[FaultRecord]:
        return [record for record in self.records if record.kind == kind]

    def between(self, start: float, end: float) -> List[FaultRecord]:
        """Records applied in ``[start, end)``."""
        return [
            record for record in self.records if start <= record.time < end
        ]

    _SNAPSHOT_EXCLUDE = frozenset()

    def snapshot_state(self) -> "dict[str, object]":
        from repro.checkpoint.state import snapshot_object

        return snapshot_object(self, exclude=self._SNAPSHOT_EXCLUDE)

    def restore_state(self, state: "Mapping[str, object]") -> None:
        from repro.checkpoint.state import restore_object

        restore_object(self, state)

    def timeline(self) -> str:
        """A human-readable one-line-per-fault rendering."""
        if not self.records:
            return "(no faults applied)"
        return "\n".join(
            f"t={record.time:9.4f}  {record.kind:<14} {record.target}: "
            f"{record.detail}"
            for record in self.records
        )


class QueueMonitor:
    """Samples a queue's occupancy over time."""

    def __init__(self, sim: "Simulator", queue: "Queue", interval: float = 0.1) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.queue = queue
        self.interval = interval
        self.times: List[float] = []
        self.occupancies: List[int] = []
        self._sample()

    def _sample(self) -> None:
        self.times.append(self.sim.now)
        self.occupancies.append(self.queue.occupancy)
        self.sim.post_in(self.interval, self._sample, None, "queue monitor")

    def mean_occupancy(self) -> float:
        return sum(self.occupancies) / len(self.occupancies)

    def max_occupancy(self) -> int:
        return max(self.occupancies)

    _SNAPSHOT_EXCLUDE = frozenset({"sim", "queue"})

    def snapshot_state(self) -> "dict[str, object]":
        from repro.checkpoint.state import snapshot_object

        return snapshot_object(self, exclude=self._SNAPSHOT_EXCLUDE)

    def restore_state(self, state: "Mapping[str, object]") -> None:
        from repro.checkpoint.state import restore_object

        restore_object(self, state)

"""The unified attachment surface: one way to observe a simulation.

:class:`Instrumentation` replaces the four divergent conventions the
repository grew — ``FlowThroughputMonitor(sim, receiver, ...)``
constructors, hand-wrapping links for a :class:`PacketTracer`, passing a
:class:`FaultTimelineMonitor` into :class:`~repro.faults.injector.Injector`,
and ad-hoc queue sampling — with a single owner object::

    from repro.obs import Instrumentation

    inst = Instrumentation()
    inst.attach(net)                 # probes every link, sender, receiver
    mon = inst.throughput(flow.receiver)
    net.run(until=30.0)
    records = inst.to_records()      # repro.obs/v1 records for export

Probes are *push-based*: each observed component gets an ``obs``
attribute holding pre-resolved metric objects, and its hot paths run
``if self.obs is not None: ...`` inline.  No simulator events are ever
scheduled by a probe, so attaching a registry leaves the event count —
and therefore the simulation's results — bit-identical.  With no
registry attached the cost is one ``is not None`` check per hook site.

The *ambient* context (:func:`set_ambient` / :func:`maybe_observe`) lets
sweep cell functions opt into whatever instrumentation the executor
activated in their worker process without threading a parameter through
every experiment signature: :class:`~repro.exec.runner.ParallelRunner`
sets an ambient :class:`Instrumentation` around each cell when metric
collection is requested, the cell function calls ``maybe_observe(net)``,
and the collected records travel back over the process boundary as
plain dicts.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional

from repro.obs.monitors import (
    CwndMonitor,
    FaultTimelineMonitor,
    FlowThroughputMonitor,
    QueueMonitor,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import PacketTracer

if TYPE_CHECKING:
    from repro.net.link import Link
    from repro.net.node import Node
    from repro.sim.engine import Simulator
    from repro.tcp.receiver import TcpReceiver


class SenderProbe:
    """Per-flow probe for the Reno-family senders (:mod:`repro.tcp.base`).

    Records, all keyed by ``(flow, variant)`` labels:

    * ``flow.cwnd`` / ``flow.srtt`` / ``flow.rto`` — timeseries appended
      on every new cumulative ACK;
    * ``flow.retransmits`` — cumulative retransmission count, appended
      when a retransmission goes on the wire;
    * ``flow.losses`` — cumulative loss *events* (fast-retransmit
      entries plus timeouts), appended as each is declared.
    """

    __slots__ = ("_sim", "_cwnd", "_srtt", "_rto", "_retransmits", "_losses")

    def __init__(self, sim: "Simulator", registry: MetricsRegistry, sender) -> None:
        self._sim = sim
        labels = {"flow": sender.flow_id, "variant": sender.variant}
        self._cwnd = registry.timeseries("flow.cwnd", **labels)
        self._srtt = registry.timeseries("flow.srtt", **labels)
        self._rto = registry.timeseries("flow.rto", **labels)
        self._retransmits = registry.timeseries("flow.retransmits", **labels)
        self._losses = registry.timeseries("flow.losses", **labels)

    def on_ack(self, sender) -> None:
        now = self._sim.now
        self._cwnd.append(now, sender.cwnd)
        srtt = sender.rto.srtt
        if srtt is not None:
            self._srtt.append(now, srtt)
        self._rto.append(now, sender.rto.rto)

    def on_retransmit(self, sender) -> None:
        self._retransmits.append(self._sim.now, sender.stats.retransmits)

    def on_loss(self, sender) -> None:
        self._losses.append(
            self._sim.now,
            sender.stats.recoveries_entered + sender.stats.timeouts,
        )


class PrSenderProbe:
    """Per-flow probe for :class:`~repro.core.pr.TcpPrSender`.

    Records ``flow.cwnd`` / ``flow.ewrtt`` / ``flow.mxrtt`` timeseries on
    every informative ACK, plus cumulative ``flow.losses`` (timer-declared
    drops) and ``flow.retransmits`` — the estimator trajectories the
    paper's Tables 1–2 discussion turns on.
    """

    __slots__ = ("_sim", "_cwnd", "_ewrtt", "_mxrtt", "_retransmits", "_losses")

    def __init__(self, sim: "Simulator", registry: MetricsRegistry, sender) -> None:
        self._sim = sim
        labels = {"flow": sender.flow_id, "variant": sender.variant}
        self._cwnd = registry.timeseries("flow.cwnd", **labels)
        self._ewrtt = registry.timeseries("flow.ewrtt", **labels)
        self._mxrtt = registry.timeseries("flow.mxrtt", **labels)
        self._retransmits = registry.timeseries("flow.retransmits", **labels)
        self._losses = registry.timeseries("flow.losses", **labels)

    def on_ack(self, sender) -> None:
        now = self._sim.now
        self._cwnd.append(now, sender.cwnd)
        ewrtt = sender.ewrtt
        if ewrtt is not None:
            self._ewrtt.append(now, ewrtt)
        self._mxrtt.append(now, sender.mxrtt)

    def on_retransmit(self, sender) -> None:
        self._retransmits.append(self._sim.now, sender.stats.retransmits)

    def on_loss(self, sender) -> None:
        self._losses.append(self._sim.now, sender.stats.drops_detected)


class LinkProbe:
    """Per-link probe serving both the link and its queue.

    Installed as ``link.obs`` *and* ``link.queue.obs`` (the queue has no
    simulator reference of its own, so the probe carries it).  Records:

    * ``link.drops`` counters labelled ``kind=fault|loss_model|queue``;
    * ``link.queue_depth`` — a timeseries appended whenever the queue's
      occupancy changes (accept or dequeue), i.e. event-driven rather
      than polled.
    """

    __slots__ = ("_sim", "_queue", "_depth", "_drop_counters", "_queue_drops")

    def __init__(self, sim: "Simulator", registry: MetricsRegistry, link) -> None:
        self._sim = sim
        self._queue = link.queue
        self._depth = registry.timeseries("link.queue_depth", link=link.name)
        self._drop_counters = {
            kind: registry.counter("link.drops", link=link.name, kind=kind)
            for kind in ("fault", "loss_model", "queue")
        }
        self._queue_drops = self._drop_counters["queue"]

    def drop(self, kind: str) -> None:
        self._drop_counters[kind].inc()

    # Queue-facing hooks (see repro.net.queues.Queue).
    def queue_depth(self) -> None:
        self._depth.append(self._sim.now, self._queue.occupancy)

    def queue_drop(self) -> None:
        self._queue_drops.inc()


class ReceiverProbe:
    """Per-flow probe for :class:`~repro.tcp.receiver.TcpReceiver`.

    Records ``flow.delivered`` (in-order delivery progress), the
    ``flow.reorder_displacement`` timeseries, and a
    ``flow.reorder_displacement.hist`` histogram — displacement being how
    many segments below the highest-seen sequence a late arrival landed,
    the reorder-density-style severity measure of Wu et al.
    """

    __slots__ = ("_sim", "_delivered", "_displacement", "_hist")

    def __init__(self, sim: "Simulator", registry: MetricsRegistry, receiver) -> None:
        self._sim = sim
        self._delivered = registry.timeseries("flow.delivered", flow=receiver.flow_id)
        self._displacement = registry.timeseries(
            "flow.reorder_displacement", flow=receiver.flow_id
        )
        self._hist = registry.histogram(
            "flow.reorder_displacement.hist", flow=receiver.flow_id
        )

    def reorder(self, displacement: int) -> None:
        self._displacement.append(self._sim.now, displacement)
        self._hist.observe(displacement)

    def delivered(self, rcv_nxt: int) -> None:
        self._delivered.append(self._sim.now, rcv_nxt)


class Instrumentation:
    """One owner for every observer of a run.

    Args:
        registry: Metrics sink; a fresh :class:`MetricsRegistry` by
            default.
        trace: When True, :meth:`attach` additionally wires the shared
            :class:`PacketTracer` to every observed link's drops and
            every observed receiver's node (opt-in: tracing every packet
            of a large sweep is expensive by design).
    """

    def __init__(
        self, registry: Optional[MetricsRegistry] = None, trace: bool = False
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace_enabled = trace
        self._tracer: Optional[PacketTracer] = None
        #: Scheduled monitors created through this instrumentation.
        self.monitors: List[Any] = []
        self._fault_monitor: Optional[FaultTimelineMonitor] = None

    # ------------------------------------------------------------------
    # The unified attach entry point
    # ------------------------------------------------------------------
    def attach(self, *components: Any) -> "Instrumentation":
        """Probe each component (sender, receiver, link, flow, network).

        Dispatches on type; a :class:`~repro.net.network.Network` attaches
        every link and every node-registered agent, and anything with
        ``sender``/``receiver`` attributes (e.g.
        :class:`~repro.app.bulk.BulkTransfer`) attaches both ends.
        Returns self for chaining.
        """
        from repro.core.pr import TcpPrSender
        from repro.net.link import Link
        from repro.net.network import Network
        from repro.tcp.base import TcpSenderBase
        from repro.tcp.receiver import TcpReceiver

        for component in components:
            if isinstance(component, Network):
                for link in component.links.values():
                    self.observe_link(link)
                for node in component.nodes.values():
                    for agent in node.agents.values():
                        if isinstance(agent, (TcpPrSender, TcpSenderBase)):
                            self.observe_sender(agent)
                        elif isinstance(agent, TcpReceiver):
                            self.observe_receiver(agent)
            elif isinstance(component, (TcpPrSender, TcpSenderBase)):
                self.observe_sender(component)
            elif isinstance(component, TcpReceiver):
                self.observe_receiver(component)
            elif isinstance(component, Link):
                self.observe_link(component)
            elif hasattr(component, "sender") and hasattr(component, "receiver"):
                self.attach(component.sender, component.receiver)
            else:
                raise TypeError(
                    f"don't know how to observe {type(component).__name__}"
                )
        return self

    # ------------------------------------------------------------------
    # Component probes
    # ------------------------------------------------------------------
    def observe_sender(self, sender: Any) -> None:
        """Install the per-ACK metrics probe on a TCP sender.

        With tracing enabled, the sender's node is additionally watched
        both ways: injected packets become ``send`` events (with the
        chosen source route) and returning ACKs become ``recv`` events —
        the two halves the :mod:`repro.traces` analyzer joins for RTT
        samples and duplicate-ACK detection.
        """
        from repro.core.pr import TcpPrSender

        if self.trace_enabled:
            tracer = self.tracer
            tracer.watch_node_sends(sender.node)
            tracer.watch_node(sender.node)
        if sender.obs is not None:
            return
        probe_cls = (
            PrSenderProbe if isinstance(sender, TcpPrSender) else SenderProbe
        )
        sender.obs = probe_cls(sender.sim, self.registry, sender)

    def observe_link(self, link: "Link") -> None:
        """Install the drop/queue-depth probe on a link and its queue."""
        if link.obs is not None:
            return
        probe = LinkProbe(link.sim, self.registry, link)
        link.obs = probe
        link.queue.obs = probe
        if self.trace_enabled:
            self.tracer.watch_link_drops(link)

    def observe_receiver(self, receiver: "TcpReceiver") -> None:
        """Install the delivery/reordering probe on a receiver."""
        if receiver.obs is not None:
            return
        receiver.obs = ReceiverProbe(receiver.sim, self.registry, receiver)
        if self.trace_enabled:
            self.trace_node(receiver.node)

    # ------------------------------------------------------------------
    # Scheduled monitors (poll-based; these do add simulator events)
    # ------------------------------------------------------------------
    def throughput(
        self,
        receiver: "TcpReceiver",
        mss_bytes: int = 1000,
        interval: float = 0.5,
    ) -> FlowThroughputMonitor:
        """Attach a goodput sampler to ``receiver`` and return it."""
        monitor = FlowThroughputMonitor(
            receiver.sim, receiver, mss_bytes=mss_bytes, interval=interval
        )
        self.monitors.append(monitor)
        return monitor

    def cwnd(self, sender: Any, interval: float = 0.1) -> CwndMonitor:
        """Attach a polled cwnd sampler to ``sender`` and return it."""
        monitor = CwndMonitor(sender.sim, sender, interval=interval)
        self.monitors.append(monitor)
        return monitor

    def queue(self, link: "Link", interval: float = 0.1) -> QueueMonitor:
        """Attach a polled occupancy sampler to ``link``'s queue."""
        monitor = QueueMonitor(link.sim, link.queue, interval=interval)
        self.monitors.append(monitor)
        return monitor

    def fault_timeline(self) -> FaultTimelineMonitor:
        """The shared fault recorder (pass to ``Injector(monitor=...)``)."""
        if self._fault_monitor is None:
            self._fault_monitor = FaultTimelineMonitor()
            self.monitors.append(self._fault_monitor)
        return self._fault_monitor

    # ------------------------------------------------------------------
    # Packet tracing
    # ------------------------------------------------------------------
    @property
    def tracer(self) -> PacketTracer:
        """The shared packet tracer (created on first use)."""
        if self._tracer is None:
            self._tracer = PacketTracer()
        return self._tracer

    def trace_node(self, node: "Node") -> PacketTracer:
        """Record every packet delivered to ``node``."""
        tracer = self.tracer
        tracer.watch_node(node)
        return tracer

    def trace_link(self, link: "Link") -> PacketTracer:
        """Record every packet dropped on ``link``."""
        tracer = self.tracer
        tracer.watch_link_drops(link)
        return tracer

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_records(self) -> List[Dict[str, Any]]:
        """Everything observed, as ``repro.obs/v1`` records (no header)."""
        from repro.obs.export import fault_record, trace_event_record

        records = self.registry.to_records()
        if self._tracer is not None:
            records.extend(
                trace_event_record(event) for event in self._tracer.events
            )
        if self._fault_monitor is not None:
            records.extend(
                fault_record(record) for record in self._fault_monitor.records
            )
        return records

    def summaries(self) -> Dict[str, Dict[str, Any]]:
        """Compact per-metric aggregates (see sweep telemetry)."""
        return self.registry.summaries()

    def __repr__(self) -> str:
        return (
            f"<Instrumentation metrics={len(self.registry)} "
            f"monitors={len(self.monitors)} trace={self.trace_enabled}>"
        )


def observe(
    *components: Any,
    registry: Optional[MetricsRegistry] = None,
    trace: bool = False,
) -> Instrumentation:
    """Create an :class:`Instrumentation` and attach ``components`` to it."""
    return Instrumentation(registry=registry, trace=trace).attach(*components)


# ----------------------------------------------------------------------
# Ambient instrumentation (process-local)
# ----------------------------------------------------------------------
_ambient: Optional[Instrumentation] = None


def set_ambient(instrumentation: Optional[Instrumentation]) -> None:
    """Make ``instrumentation`` the process's ambient sink (None clears)."""
    global _ambient
    _ambient = instrumentation


def get_ambient() -> Optional[Instrumentation]:
    """The process's ambient instrumentation, if any."""
    return _ambient


@contextmanager
def ambient(instrumentation: Instrumentation) -> Iterator[Instrumentation]:
    """Context manager form of :func:`set_ambient` (restores on exit)."""
    previous = _ambient
    set_ambient(instrumentation)
    try:
        yield instrumentation
    finally:
        set_ambient(previous)


def maybe_observe(*components: Any) -> Optional[Instrumentation]:
    """Attach ``components`` to the ambient instrumentation, if one is set.

    This is the hook experiment cell functions call after building their
    network: a no-op (returning None) in ordinary runs, and the metric
    collection point when the executor activated instrumentation for the
    cell (``--metrics-out`` / ``collect_metrics=True``).
    """
    instrumentation = _ambient
    if instrumentation is not None:
        instrumentation.attach(*components)
    return instrumentation

"""Structured export: ``repro.obs/v1`` records to JSONL / CSV.

Every export — a registry, a packet trace, a fault timeline, sweep
telemetry — is a stream of flat JSON objects sharing one envelope
field, ``record``, which names the record type:

``header``
    First line of every file: ``{"record": "header", "schema":
    "repro.obs/v1", ...}``.  Consumers should check ``schema``.
``metric``
    One metric's full state: ``kind`` (counter / gauge / histogram /
    timeseries), ``name``, ``labels``, and the kind-specific payload
    (``value``, ``buckets``/``counts``/``count``/``sum``/``min``/``max``,
    or parallel ``times``/``values`` arrays).  Records collected inside a
    sweep cell additionally carry ``cell`` (the cell key, JSON-rendered).
``trace``
    One :class:`~repro.obs.trace.TraceEvent`: ``time``, ``kind``
    (send / recv / drop), ``where``, ``packet_uid``, ``flow_id``,
    ``flow_seq`` (monotonic per-flow event counter — the stable join
    key), ``packet_kind``, ``seq``, ``ack``, ``retransmit``, ``path``.
    See ``docs/TRACES.md`` for the analyzer-facing semantics.
``fault``
    One :class:`~repro.obs.trace.FaultRecord`: ``time``, ``kind``,
    ``target``, ``detail``.
``cell``
    One sweep cell's telemetry: ``key``, ``cached``, ``attempts``,
    ``timed_out``, ``error``, ``wall_time``, ``metrics`` (per-metric
    summaries, no sample arrays).
``sweep``
    One per sweep: the aggregate counters (``total``, ``cached``,
    ``executed``, ``failed``, ``timed_out``, ``retried``, ``elapsed``,
    ``jobs``).

The schema is append-only: new record types and new optional fields may
appear under ``repro.obs/v1``; existing fields never change meaning.
See ``docs/OBSERVABILITY.md`` for the full field tables.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import FaultRecord, PacketTracer, TraceEvent

#: The schema identifier written into every header record.
SCHEMA = "repro.obs/v1"

PathLike = Union[str, Path]


def header_record(**extra: Any) -> Dict[str, Any]:
    """The leading record of a ``repro.obs/v1`` stream."""
    return {"record": "header", "schema": SCHEMA, **extra}


def trace_event_record(event: TraceEvent) -> Dict[str, Any]:
    """One :class:`TraceEvent` as a schema record."""
    return {
        "record": "trace",
        "time": event.time,
        "kind": event.kind,
        "where": event.where,
        "packet_uid": event.packet_uid,
        "flow_id": event.flow_id,
        "flow_seq": event.flow_seq,
        "packet_kind": event.packet_kind,
        "seq": event.seq,
        "ack": event.ack,
        "retransmit": event.retransmit,
        "path": event.path,
    }


def trace_event_from_record(record: Dict[str, Any]) -> TraceEvent:
    """Rebuild a :class:`TraceEvent` from its schema record.

    Tolerates streams written before the ``flow_seq`` / ``retransmit`` /
    ``path`` fields existed (the schema is append-only) and external
    captures converted by :mod:`repro.traces.adapter`.
    """
    return TraceEvent(
        time=float(record["time"]),
        kind=str(record["kind"]),
        where=str(record.get("where", "")),
        packet_uid=int(record.get("packet_uid", -1)),
        flow_id=int(record.get("flow_id", 0)),
        flow_seq=int(record.get("flow_seq", 0)),
        packet_kind=str(record.get("packet_kind", "data")),
        seq=int(record.get("seq", -1)),
        ack=int(record.get("ack", -1)),
        retransmit=bool(record.get("retransmit", False)),
        path=record.get("path"),
    )


def fault_record(record: FaultRecord) -> Dict[str, Any]:
    """One :class:`FaultRecord` as a schema record."""
    return {
        "record": "fault",
        "time": record.time,
        "kind": record.kind,
        "target": record.target,
        "detail": record.detail,
    }


def key_to_str(key: Any) -> str:
    """Render a sweep-cell key stably (strings verbatim, else JSON)."""
    if isinstance(key, str):
        return key
    try:
        return json.dumps(key, default=str)
    except TypeError:
        return repr(key)


def registry_records(
    registry: MetricsRegistry, cell: Optional[Any] = None
) -> List[Dict[str, Any]]:
    """A registry's metrics as records, optionally tagged with a cell key."""
    records = registry.to_records()
    if cell is not None:
        tag = key_to_str(cell)
        for record in records:
            record["cell"] = tag
    return records


def tracer_records(tracer: PacketTracer) -> List[Dict[str, Any]]:
    """A packet tracer's events as records."""
    return [trace_event_record(event) for event in tracer.events]


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(
    records: Iterable[Dict[str, Any]],
    path: PathLike,
    header: bool = True,
    **header_fields: Any,
) -> Path:
    """Write records to ``path`` as JSON Lines; returns the path.

    A header record is prepended unless ``header=False`` or the first
    record already is one.
    """
    path = Path(path)
    records = list(records)
    if header and not (records and records[0].get("record") == "header"):
        records.insert(0, header_record(**header_fields))
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, default=str))
            handle.write("\n")
    return path


def recover_jsonl_tail(path: PathLike) -> int:
    """Truncate a torn tail off a JSONL file; return bytes removed.

    A process killed mid-append can leave (a) a final line without its
    newline or (b) a newline-terminated final line that is not valid
    JSON (partial flush).  Both are removed, repeatedly, until the file
    ends in a complete, parseable line (or is empty).  Records that were
    fully written are never touched, so append-mode exporters and the
    sweep journal can recover by calling this before appending.
    """
    path = Path(path)
    try:
        handle = path.open("r+b")
    except OSError:
        return 0
    removed = 0
    with handle:
        handle.seek(0, io.SEEK_END)
        size = handle.tell()
        while size > 0:
            if _read_at(handle, size - 1, 1) == b"\n":
                start = _rfind_newline(handle, size - 1) + 1
                line = _read_at(handle, start, size - 1 - start)
                if _is_json_line(line):
                    break
            else:
                start = _rfind_newline(handle, size) + 1
            handle.truncate(start)
            removed += size - start
            size = start
    return removed


class JsonlAppender:
    """Crash-safe incremental ``repro.obs/v1`` JSONL writer.

    Opens ``path`` in append mode after truncating any torn tail line
    (see :func:`recover_jsonl_tail`); each :meth:`write` emits one
    record as a single unbuffered O_APPEND write, so a kill between
    writes loses at most the record in flight — never the stream behind
    it.  Because every record reaches the file in one ``write(2)`` at a
    kernel-assigned offset, any number of appenders — including
    concurrent worker *processes* sharding one scenario — can share the
    path without ever interleaving partial lines.  A header record is
    written automatically when the file starts out empty.

    Known limitation with concurrent writers: if one writer is killed
    *mid-write* while others stay live, its torn fragment lands mid-file
    once a survivor appends after it — :func:`recover_jsonl_tail` only
    repairs the final line, so the fused corrupt line persists.  Readers
    that must survive this should use ``read_jsonl(path,
    on_invalid="skip")``; writers that cannot tolerate it should give
    each process its own file.

    Attributes:
        recovered_bytes: Size of the torn tail removed at open (0 for a
            clean file).
    """

    def __init__(
        self,
        path: PathLike,
        header: bool = True,
        fsync: bool = False,
        **header_fields: Any,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.recovered_bytes = recover_jsonl_tail(self.path)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fsync = fsync
        self._handle: Optional[Any] = self.path.open("ab", buffering=0)
        if fresh and header:
            self.write(header_record(**header_fields))

    def write(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            raise ValueError(f"appender for {self.path} is closed")
        line = json.dumps(record, default=str) + "\n"
        self._handle.write(line.encode("utf-8"))
        if self._fsync:
            import os

            os.fsync(self._handle.fileno())

    def extend(self, records: Iterable[Dict[str, Any]]) -> None:
        for record in records:
            self.write(record)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlAppender":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _read_at(handle: Any, offset: int, length: int) -> bytes:
    handle.seek(offset)
    return handle.read(length)


def _rfind_newline(handle: Any, before: int) -> int:
    """Offset of the last ``\\n`` strictly before ``before``, or -1."""
    chunk_size = 65536
    end = before
    while end > 0:
        start = max(0, end - chunk_size)
        chunk = _read_at(handle, start, end - start)
        index = chunk.rfind(b"\n")
        if index != -1:
            return start + index
        end = start
    return -1


def _is_json_line(line: bytes) -> bool:
    stripped = line.strip()
    if not stripped:
        return True  # a blank line is harmless padding, not a torn record
    try:
        json.loads(stripped.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return False
    return True


def read_jsonl(
    path: PathLike, on_invalid: str = "raise"
) -> List[Dict[str, Any]]:
    """Read a JSONL record stream (blank lines ignored).

    ``on_invalid`` controls what happens on an unparseable line:
    ``"raise"`` (default) propagates the ``json.JSONDecodeError``;
    ``"skip"`` drops the line and emits a single :class:`RuntimeWarning`
    naming the file and the count.  Skip mode exists for streams written
    by many concurrent appenders under a kill/retry policy — a writer
    killed mid-append can leave a torn fragment that a live writer's
    next append fuses into one corrupt mid-file line (tail recovery only
    repairs the *last* line; see :class:`JsonlAppender`).
    """
    if on_invalid not in ("raise", "skip"):
        raise ValueError(
            f"on_invalid must be 'raise' or 'skip', got {on_invalid!r}"
        )
    records: List[Dict[str, Any]] = []
    skipped = 0
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if on_invalid == "raise":
                    raise
                skipped += 1
    if skipped:
        import warnings

        warnings.warn(
            f"{path}: skipped {skipped} unparseable JSONL line(s) "
            f"(torn concurrent append?)",
            RuntimeWarning,
            stacklevel=2,
        )
    return records


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
def write_csv(records: Iterable[Dict[str, Any]], path: PathLike) -> Path:
    """Write records to ``path`` as CSV; returns the path.

    The column set is the union of all record keys (in first-seen
    order); nested values (labels, arrays, summaries) are JSON-encoded
    in their cells so the file round-trips losslessly.
    """
    path = Path(path)
    records = list(records)
    columns: List[str] = []
    seen = set()
    for record in records:
        for key in record:
            if key not in seen:
                seen.add(key)
                columns.append(key)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for record in records:
            writer.writerow(
                [_csv_cell(record[key]) if key in record else "" for key in columns]
            )
    return path


def _csv_cell(value: Any) -> Any:
    if isinstance(value, (dict, list, tuple)):
        return json.dumps(value, default=str)
    return value


# ----------------------------------------------------------------------
# Summaries (the `repro obs summary` view)
# ----------------------------------------------------------------------
def summarize_records(records: Iterable[Dict[str, Any]]) -> str:
    """A human-readable digest of a record stream."""
    records = list(records)
    by_type: Dict[str, int] = {}
    for record in records:
        kind = record.get("record", "?")
        by_type[kind] = by_type.get(kind, 0) + 1
    out = io.StringIO()
    schema = next(
        (r.get("schema") for r in records if r.get("record") == "header"), None
    )
    out.write(f"schema: {schema or '(no header)'}\n")
    out.write(
        "records: "
        + ", ".join(f"{kind}={count}" for kind, count in sorted(by_type.items()))
        + "\n"
    )
    metrics = [r for r in records if r.get("record") == "metric"]
    if metrics:
        out.write("metrics:\n")
        for record in metrics:
            labels = record.get("labels") or {}
            label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            cell = record.get("cell")
            origin = f" cell={cell}" if cell is not None else ""
            out.write(
                f"  {record.get('name')}{{{label_text}}} "
                f"[{record.get('kind')}]{origin} {_metric_digest(record)}\n"
            )
    cells = [r for r in records if r.get("record") == "cell"]
    if cells:
        out.write("cells:\n")
        for record in cells:
            status = "cached" if record.get("cached") else (
                record.get("error") or "ok"
            )
            out.write(
                f"  {record.get('key')}: {status}, "
                f"attempts={record.get('attempts')}, "
                f"wall={record.get('wall_time', 0.0):.3f}s\n"
            )
    sweeps = [r for r in records if r.get("record") == "sweep"]
    for record in sweeps:
        out.write(
            f"sweep: total={record.get('total')} cached={record.get('cached')} "
            f"executed={record.get('executed')} failed={record.get('failed')} "
            f"timed_out={record.get('timed_out')} retried={record.get('retried')}\n"
        )
    return out.getvalue().rstrip("\n")


def _metric_digest(record: Dict[str, Any]) -> str:
    kind = record.get("kind")
    if kind in ("counter", "gauge"):
        return f"value={record.get('value')}"
    if kind == "histogram":
        return f"count={record.get('count')} sum={record.get('sum')}"
    if kind == "timeseries":
        times = record.get("times") or []
        values = record.get("values") or []
        last = values[-1] if values else None
        return f"n={len(times)} last={last}"
    return ""

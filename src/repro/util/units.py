"""Unit constants and formatting helpers.

The simulator works in SI base units throughout: seconds for time and
bits-per-second for bandwidth.  These constants make call sites read like
the paper's parameter tables (``10 * MBPS``, ``60 * MS``).
"""

from __future__ import annotations

#: One kilobit per second, in bits/second.
KBPS = 1_000.0
#: One megabit per second, in bits/second.
MBPS = 1_000_000.0
#: One gigabit per second, in bits/second.
GBPS = 1_000_000_000.0

#: One millisecond, in seconds.
MS = 1e-3
#: One microsecond, in seconds.
US = 1e-6


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a byte count to bits."""
    return num_bytes * 8.0


def bits_to_mbps(bits: float, interval: float) -> float:
    """Average rate in Mbps for ``bits`` transferred over ``interval`` seconds.

    Raises:
        ValueError: if ``interval`` is not positive.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    return bits / interval / MBPS


def fmt_bandwidth(bits_per_second: float) -> str:
    """Human-readable bandwidth string (``'10.00 Mbps'``)."""
    if bits_per_second >= GBPS:
        return f"{bits_per_second / GBPS:.2f} Gbps"
    if bits_per_second >= MBPS:
        return f"{bits_per_second / MBPS:.2f} Mbps"
    if bits_per_second >= KBPS:
        return f"{bits_per_second / KBPS:.2f} kbps"
    return f"{bits_per_second:.0f} bps"


def fmt_time(seconds: float) -> str:
    """Human-readable time string (``'10.0 ms'``)."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= MS:
        return f"{seconds / MS:.1f} ms"
    return f"{seconds / US:.1f} us"

"""Small shared utilities: unit helpers and generic data structures."""

from repro.util.units import (
    GBPS,
    KBPS,
    MBPS,
    MS,
    US,
    bits_to_mbps,
    bytes_to_bits,
    fmt_bandwidth,
    fmt_time,
)

__all__ = [
    "GBPS",
    "KBPS",
    "MBPS",
    "MS",
    "US",
    "bits_to_mbps",
    "bytes_to_bits",
    "fmt_bandwidth",
    "fmt_time",
]

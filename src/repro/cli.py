"""Command-line interface: regenerate the paper's figures from a shell.

Installed as ``repro-experiments`` (also ``python -m repro``)::

    repro-experiments variants
    repro-experiments fig2 --topology dumbbell --flows 4 8
    repro-experiments fig3 --topology parking-lot
    repro-experiments fig4
    repro-experiments fig6 --delay-ms 10 --epsilons 0 4 500
    repro-experiments compare --scenario multipath --variants tcp-pr sack

Every subcommand prints the same rows/series the paper's figure shows.
The ``--paper-scale`` flag switches from the quick defaults to the full
configurations (much slower).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import fig2_fairness, fig3_cov, fig4_params, fig6_multipath
from repro.experiments.report import bar_chart
from repro.tcp.registry import available_variants
from repro.util.units import MS


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the full paper-scale configuration (slow)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")


def _cmd_variants(_args: argparse.Namespace) -> int:
    print("Available TCP variants:")
    for name in available_variants():
        print(f"  {name}")
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    if args.paper_scale:
        counts = args.flows or fig2_fairness.PAPER_FLOW_COUNTS
        duration = fig2_fairness.PAPER_DURATION
        window = fig2_fairness.PAPER_MEASURE_WINDOW
    else:
        counts = args.flows or fig2_fairness.QUICK_FLOW_COUNTS
        duration = fig2_fairness.QUICK_DURATION
        window = fig2_fairness.QUICK_MEASURE_WINDOW
    result = fig2_fairness.run_fig2(
        topology=args.topology,
        flow_counts=counts,
        duration=duration,
        measure_window=window,
        seed=args.seed,
    )
    print(fig2_fairness.format_fig2(result))
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    if args.paper_scale:
        result = fig3_cov.run_fig3(
            topology=args.topology,
            bandwidths_mbps=fig3_cov.PAPER_BANDWIDTHS_MBPS,
            total_flows=fig3_cov.PAPER_FLOWS,
            duration=fig3_cov.PAPER_DURATION,
            measure_window=fig3_cov.PAPER_MEASURE_WINDOW,
            seed=args.seed,
        )
    else:
        result = fig3_cov.run_fig3(topology=args.topology, seed=args.seed)
    print(fig3_cov.format_fig3(result))
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    if args.paper_scale:
        result = fig4_params.run_fig4(
            alphas=fig4_params.PAPER_ALPHAS,
            betas=fig4_params.PAPER_BETAS,
            total_flows=fig4_params.PAPER_FLOWS,
            duration=fig4_params.PAPER_DURATION,
            measure_window=fig4_params.PAPER_MEASURE_WINDOW,
            seed=args.seed,
        )
    else:
        result = fig4_params.run_fig4(seed=args.seed)
    print(fig4_params.format_fig4(result))
    if args.extreme:
        points = fig4_params.run_extreme_loss_beta_sweep(seed=args.seed)
        print()
        print(fig4_params.format_beta_sweep(points))
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    epsilons = args.epsilons or (
        fig6_multipath.PAPER_EPSILONS if args.paper_scale
        else fig6_multipath.QUICK_EPSILONS
    )
    duration = (
        fig6_multipath.PAPER_DURATION if args.paper_scale
        else fig6_multipath.QUICK_DURATION
    )
    result = fig6_multipath.run_fig6(
        link_delay=args.delay_ms * MS,
        epsilons=tuple(epsilons),
        duration=duration,
        seed=args.seed,
    )
    print(fig6_multipath.format_fig6(result))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    duration = 30.0 if args.paper_scale else 15.0
    results = {}
    for variant in args.variants:
        results[variant] = fig6_multipath.run_single_multipath_flow(
            variant,
            epsilon=args.epsilon,
            link_delay=args.delay_ms * MS,
            duration=duration,
            seed=args.seed,
        )
    print(
        f"Throughput over the Figure 5 mesh (eps={args.epsilon:g}, "
        f"{args.delay_ms} ms links, {duration:.0f} s):\n"
    )
    print(bar_chart(results, unit=" Mbps"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the TCP-PR paper's figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("variants", help="list available TCP variants").set_defaults(
        func=_cmd_variants
    )

    fig2 = sub.add_parser("fig2", help="Figure 2: fairness vs TCP-SACK")
    fig2.add_argument("--topology", choices=["dumbbell", "parking-lot"],
                      default="dumbbell")
    fig2.add_argument("--flows", type=int, nargs="*", default=None,
                      help="total flow counts to sweep")
    _add_common(fig2)
    fig2.set_defaults(func=_cmd_fig2)

    fig3 = sub.add_parser("fig3", help="Figure 3: CoV vs loss rate")
    fig3.add_argument("--topology", choices=["dumbbell", "parking-lot"],
                      default="dumbbell")
    _add_common(fig3)
    fig3.set_defaults(func=_cmd_fig3)

    fig4 = sub.add_parser("fig4", help="Figure 4: alpha/beta sensitivity")
    fig4.add_argument("--extreme", action="store_true",
                      help="also run the extreme-loss beta sweep")
    _add_common(fig4)
    fig4.set_defaults(func=_cmd_fig4)

    fig6 = sub.add_parser("fig6", help="Figure 6: multipath throughput")
    fig6.add_argument("--delay-ms", type=float, default=10.0,
                      help="per-link delay in milliseconds (paper: 10 or 60)")
    fig6.add_argument("--epsilons", type=float, nargs="*", default=None)
    _add_common(fig6)
    fig6.set_defaults(func=_cmd_fig6)

    compare = sub.add_parser(
        "compare", help="compare chosen variants in one multipath scenario"
    )
    compare.add_argument("--variants", nargs="+", default=["tcp-pr", "sack"])
    compare.add_argument("--epsilon", type=float, default=0.0)
    compare.add_argument("--delay-ms", type=float, default=10.0)
    _add_common(compare)
    compare.set_defaults(func=_cmd_compare)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: regenerate the paper's figures from a shell.

Installed as ``repro-experiments`` (also ``python -m repro``)::

    repro-experiments variants
    repro-experiments fig2 --topology dumbbell --flows 4 8
    repro-experiments fig3 --topology parking-lot
    repro-experiments fig4 --jobs 8
    repro-experiments fig6 --delay-ms 10 --epsilons 0 4 500
    repro-experiments fig7 --outages 0 1 2 --keep-going
    repro-experiments compare --scenario multipath --variants tcp-pr sack

Every subcommand prints the same rows/series the paper's figure shows
and shares one execution path: a :class:`~repro.exec.spec.Scale` preset
spec (``--paper-scale`` selects the full configuration), fanned out over
``--jobs`` worker processes, with results cached on disk under
``--cache-dir`` (default ``.repro-cache/``; disable with ``--no-cache``)
so repeat invocations are near-instant.  ``--json PATH`` additionally
dumps the result for external plotting tools.

Sweeps are crash-isolated: ``--keep-going`` finishes the surviving cells
and reports a partial figure when some fail, ``--cell-timeout`` bounds
each cell's wall clock, and ``--retries``/``--retry-backoff`` re-attempt
failed cells with re-derived seeds (see ``docs/FAULTS.md``).

Observability: ``--metrics-out PATH`` streams per-flow metric
timeseries plus per-cell and sweep telemetry as ``repro.obs/v1`` JSONL;
``--trace-out PATH`` does the same for packet/fault trace events; and
``repro-experiments obs summary|convert FILE`` inspects or converts an
existing stream (see ``docs/OBSERVABILITY.md``).

The trace pipeline (``docs/TRACES.md``): ``repro-experiments trace
analyze FILE`` computes pcap-style reordering analytics from a
``--trace-out`` stream, ``trace replay FILE`` distills it into a
:class:`~repro.traces.ReorderProfile` and re-runs it as a simulator
scenario, and ``trace convert CAPTURE.csv`` imports an external
capture into the same schema.

Flag groups are defined once as argparse *parent parsers*
(:func:`_execution_parent`: scale/seed/jobs/cache/failure-policy;
:func:`_obs_parent`: ``--json``/``--metrics-out``/``--trace-out``;
:func:`_engine_parent`: ``--engine``) and inherited by every
sweep-running subcommand, so new subcommands get the full flag surface
by construction.

Engine selection (``docs/COMPILED.md``): every subcommand accepts
``--engine auto|pure|compiled`` to pick the hot-core build; the choice
is activated before dispatch and exported to worker processes.
``repro-experiments bench report`` merges the committed
``benchmarks/results/BENCH_*.json`` files into one trajectory table.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.exec import (
    DEFAULT_CACHE_DIR,
    CellError,
    ParallelRunner,
    ResultCache,
    Scale,
    SweepCell,
    SweepError,
)
from repro.experiments import (
    fig2_fairness,
    fig3_cov,
    fig4_params,
    fig6_multipath,
    fig7_faults,
)
from repro.experiments.report import bar_chart
from repro.experiments.serialize import dump_result
from repro.obs import read_jsonl, summarize_records, write_csv, write_jsonl
from repro.scenarios import (
    SIZE_DISTRIBUTIONS,
    ScenarioSpec,
    ShardPlan,
    WorkloadSpec,
    format_scale,
    run_scale,
)
from repro.tcp.registry import available_variants
from repro.topologies import (
    DumbbellSpec,
    FatTreeSpec,
    MultipathMeshSpec,
    ParkingLotSpec,
    WanMeshSpec,
)
from repro.traces import (
    ReorderProfile,
    TraceStream,
    analyze_stream,
    convert_capture,
    distill_profile,
    format_report,
    replay_flow_workload,
    replay_profile,
)
from repro.util.units import MS


def _execution_parent() -> argparse.ArgumentParser:
    """Parent parser: the execution flag group, defined exactly once.

    Scale/seed selection, worker fan-out, the on-disk result cache, and
    the failure policy (keep-going/fail-fast, per-cell timeouts,
    retries).  Every subcommand that runs simulations inherits this via
    ``parents=[...]``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the full paper-scale configuration (slow)",
    )
    parent.add_argument("--seed", type=int, default=0, help="master RNG seed")
    parent.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent sweep cells (default: 1)",
    )
    parent.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache",
    )
    parent.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    failure = parent.add_mutually_exclusive_group()
    failure.add_argument(
        "--keep-going",
        dest="keep_going",
        action="store_true",
        help="on cell failure, finish the remaining cells and report a "
        "partial result (failed cells are listed; exit status stays 0 "
        "only if everything succeeded)",
    )
    failure.add_argument(
        "--fail-fast",
        dest="keep_going",
        action="store_false",
        help="abort the sweep on the first cell failure (default)",
    )
    parent.set_defaults(keep_going=False)
    parent.add_argument(
        "--cell-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="wall-clock budget per sweep cell; overruns count as failures",
    )
    parent.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-attempts per failed cell, each with a re-derived seed "
        "(default: 0)",
    )
    parent.add_argument(
        "--retry-backoff",
        type=float,
        metavar="SECONDS",
        default=0.25,
        help="base delay between attempts, doubled each retry (default: 0.25)",
    )
    parent.add_argument(
        "--checkpoint-every",
        type=float,
        metavar="SIM-SECONDS",
        default=None,
        help="snapshot each cell's simulator every SIM-SECONDS of "
        "simulated time (arms the crash-safe sweep journal under the "
        "cache directory; see docs/CHECKPOINT.md)",
    )
    parent.add_argument(
        "--resume",
        action="store_true",
        help="replay the sweep journal before running: skip completed "
        "cells, re-arm cells that were mid-run when a previous "
        "invocation was killed from their latest checkpoint",
    )
    return parent


def _obs_parent() -> argparse.ArgumentParser:
    """Parent parser: the observability flag group, defined exactly once.

    JSON result dumps and the ``repro.obs/v1`` metric/trace stream
    outputs.  Inherited alongside :func:`_execution_parent`.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also dump the result as JSON to PATH",
    )
    parent.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="collect per-flow metric timeseries inside each cell and "
        "write them, with per-cell and sweep telemetry, as "
        "repro.obs/v1 JSONL",
    )
    parent.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="collect packet send/arrival/drop and fault trace events "
        "inside each cell and write them as repro.obs/v1 JSONL "
        "(analyze with `trace analyze`)",
    )
    return parent


def _engine_parent() -> argparse.ArgumentParser:
    """Parent parser: the engine-build selector, defined exactly once.

    ``--engine`` picks the hot-core build (see docs/COMPILED.md):
    ``auto`` (default) uses the compiled extension when built and falls
    back to pure python silently; ``compiled`` demands it (actionable
    error when missing); ``pure`` never touches it.  Activation happens
    in :func:`main` before dispatch and exports ``REPRO_ENGINE`` so
    ``--jobs`` worker processes inherit the choice.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--engine",
        choices=["auto", "pure", "compiled"],
        default=None,
        help="hot-core build: auto (compiled when built, else pure), "
        "pure, or compiled (error if the extension is missing); "
        "default: the REPRO_ENGINE env var, else auto",
    )
    return parent


def _cache_from(args: argparse.Namespace) -> Optional[ResultCache]:
    return None if args.no_cache else ResultCache(args.cache_dir)


def _runner_from(args: argparse.Namespace) -> ParallelRunner:
    """One runner per invocation, so ``last_stats`` survives the sweep."""
    return ParallelRunner(
        jobs=args.jobs,
        cache=_cache_from(args),
        timeout=args.cell_timeout,
        retries=args.retries,
        backoff=args.retry_backoff,
        keep_going=args.keep_going,
        collect_metrics=bool(args.metrics_out),
        collect_trace=bool(args.trace_out),
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )


def _write_observability(args: argparse.Namespace, telemetries: List[Any]) -> None:
    """Serialize collected sweep telemetry to ``--metrics-out``/``--trace-out``."""
    telemetries = [telemetry for telemetry in telemetries if telemetry is not None]
    if args.metrics_out:
        records = [
            record
            for telemetry in telemetries
            for record in telemetry.metric_records()
        ]
        path = write_jsonl(records, args.metrics_out, command=args.command)
        print(f"[metrics written to {path}]")
    if args.trace_out:
        records = [
            record
            for telemetry in telemetries
            for record in telemetry.trace_records()
        ]
        path = write_jsonl(records, args.trace_out, command=args.command)
        print(f"[trace written to {path}]")


def _failure_report(runner: ParallelRunner) -> str:
    """Human-readable summary of any failed cells (empty when clean)."""
    stats = runner.last_stats
    if not stats.errors:
        return ""
    lines = [
        f"{len(stats.errors)} of {stats.total} cells failed "
        f"({stats.timed_out} timed out, {stats.retried} retried):"
    ]
    lines.extend(f"  {error.summary()}" for error in stats.errors)
    return "\n".join(lines)


def _finish(args: argparse.Namespace, result: Any, text: str) -> int:
    """Shared tail of every subcommand: print, optionally dump JSON."""
    print(text)
    if args.json:
        path = dump_result(result, args.json)
        print(f"[json written to {path}]")
    return 0


def _cmd_variants(args: argparse.Namespace) -> int:
    names = list(available_variants())
    lines = ["Available TCP variants:"] + [f"  {name}" for name in names]
    return _finish(args, {"variants": names}, "\n".join(lines))


@dataclass(frozen=True)
class _FigureCommand:
    """One figure subcommand: spec class + entry point + formatter."""

    spec_cls: type
    run: Callable[..., Any]
    fmt: Callable[[Any], str]
    #: Maps parsed args to spec-field overrides (None values are ignored
    #: by ``presets``, so optional CLI arguments forward verbatim).
    overrides: Callable[[argparse.Namespace], Dict[str, Any]]


_FIGURES: Dict[str, _FigureCommand] = {
    "fig2": _FigureCommand(
        spec_cls=fig2_fairness.Fig2Spec,
        run=fig2_fairness.run_fig2,
        fmt=fig2_fairness.format_fig2,
        overrides=lambda args: {
            "topology": args.topology,
            "flow_counts": tuple(args.flows) if args.flows else None,
            "duration": args.duration,
            "measure_window": args.window,
        },
    ),
    "fig3": _FigureCommand(
        spec_cls=fig3_cov.Fig3Spec,
        run=fig3_cov.run_fig3,
        fmt=fig3_cov.format_fig3,
        overrides=lambda args: {
            "topology": args.topology,
            "bandwidths_mbps": tuple(args.bandwidths) if args.bandwidths else None,
            "total_flows": args.flows,
            "duration": args.duration,
            "measure_window": args.window,
        },
    ),
    "fig4": _FigureCommand(
        spec_cls=fig4_params.Fig4Spec,
        run=fig4_params.run_fig4,
        fmt=fig4_params.format_fig4,
        overrides=lambda args: {
            "alphas": tuple(args.alphas) if args.alphas else None,
            "betas": tuple(args.betas) if args.betas else None,
            "total_flows": args.flows,
            "duration": args.duration,
            "measure_window": args.window,
        },
    ),
    "fig6": _FigureCommand(
        spec_cls=fig6_multipath.Fig6Spec,
        run=fig6_multipath.run_fig6,
        fmt=fig6_multipath.format_fig6,
        overrides=lambda args: {
            "link_delay": args.delay_ms * MS if args.delay_ms is not None else None,
            "protocols": tuple(args.protocols) if args.protocols else None,
            "epsilons": tuple(args.epsilons) if args.epsilons else None,
            "duration": args.duration,
        },
    ),
    "fig7": _FigureCommand(
        spec_cls=fig7_faults.Fig7Spec,
        run=fig7_faults.run_fig7,
        fmt=fig7_faults.format_fig7,
        overrides=lambda args: {
            "link_delay": args.delay_ms * MS if args.delay_ms is not None else None,
            "protocols": tuple(args.protocols) if args.protocols else None,
            "outages": tuple(args.outages) if args.outages else None,
            "period": args.period,
            "duration": args.duration,
        },
    ),
}


def _cmd_figure(args: argparse.Namespace) -> int:
    """The single code path every figure subcommand dispatches through."""
    command = _FIGURES[args.command]
    spec = command.spec_cls.presets(
        Scale.from_flag(args.paper_scale),
        seed=args.seed,
        **command.overrides(args),
    )
    runner = _runner_from(args)
    try:
        result = command.run(spec, runner=runner)
    except SweepError as exc:
        print(f"sweep failed ({args.command}):", file=sys.stderr)
        for error in exc.errors:
            print(f"  {error.summary()}", file=sys.stderr)
        return 1
    text = command.fmt(result)
    payload: Any = result
    failures = _failure_report(runner)
    telemetries = [runner.last_stats.telemetry]

    if getattr(args, "extreme", False):
        sweep_spec = fig4_params.BetaSweepSpec.presets(
            Scale.from_flag(args.paper_scale), seed=args.seed
        )
        try:
            points = fig4_params.run_extreme_loss_beta_sweep(
                sweep_spec, runner=runner
            )
        except SweepError as exc:
            print("sweep failed (extreme beta sweep):", file=sys.stderr)
            for error in exc.errors:
                print(f"  {error.summary()}", file=sys.stderr)
            return 1
        text += "\n\n" + fig4_params.format_beta_sweep(points)
        payload = {"fig4": result, "extreme_beta_sweep": points}
        extra = _failure_report(runner)
        failures = "\n".join(part for part in (failures, extra) if part)
        telemetries.append(runner.last_stats.telemetry)

    if failures:
        text += "\n\n" + failures
    status = _finish(args, payload, text)
    _write_observability(args, telemetries)
    return 1 if failures else status


def _parse_variant_mix(items: Optional[List[str]]) -> Any:
    """Parse ``NAME=WEIGHT`` pairs (bare ``NAME`` means weight 1)."""
    if not items:
        return None
    mix = []
    for item in items:
        name, sep, weight = item.partition("=")
        mix.append((name, float(weight) if sep else 1.0))
    return tuple(mix)


def _scenario_from(args: argparse.Namespace) -> ScenarioSpec:
    """Build the scenario: a saved spec file, or the inline flag surface.

    A ``--spec`` file is taken verbatim except that a non-zero ``--seed``
    re-seeds it (seed 0 — the flag default — keeps the file's own seed).
    """
    if args.spec:
        scenario = ScenarioSpec.load(args.spec)
        if args.seed:
            scenario = scenario.with_seed(args.seed)
        return scenario
    if args.topology == "fat-tree":
        topology: Any = FatTreeSpec(
            k=args.fat_k,
            hosts_per_edge=args.hosts_per_edge,
            oversubscription=args.oversubscription,
            seed=args.seed,
        )
    elif args.topology == "wan-mesh":
        topology = WanMeshSpec(
            sites=args.sites,
            degree=args.site_degree,
            hosts_per_site=args.hosts_per_site,
            seed=args.seed,
        )
    elif args.topology == "dumbbell":
        topology = DumbbellSpec(num_pairs=args.pairs, seed=args.seed)
    elif args.topology == "parking-lot":
        topology = ParkingLotSpec(seed=args.seed)
    else:
        topology = MultipathMeshSpec(seed=args.seed)
    workload = WorkloadSpec(
        arrival="poisson",
        arrival_rate=args.arrival_rate,
        max_flows=args.max_flows,
        size=args.size_dist,
        mean_size_segments=args.mean_size,
        pareto_shape=args.pareto_shape,
        variant_mix=_parse_variant_mix(args.variant_mix) or (("tcp-pr", 1.0),),
    )
    return ScenarioSpec(
        topology=topology,
        workload=workload,
        duration=args.duration,
        seed=args.seed,
        name=args.name,
    )


def _cmd_scale(args: argparse.Namespace) -> int:
    """Run one declarative scenario sharded across the worker pool."""
    scenario = _scenario_from(args)
    if args.spec_out:
        path = scenario.save(args.spec_out)
        print(f"[scenario spec written to {path}]")
    shards = args.shards if args.shards is not None else max(args.jobs, 1)
    plan = ShardPlan(
        scenario=scenario,
        num_shards=shards,
        stream_path=args.metrics_out,
        reap_interval=args.reap_interval,
    )
    # Cached shard cells return their summary without re-writing the
    # per-flow stream, so a streamed run must execute every shard.
    cache = _cache_from(args)
    if args.metrics_out and cache is not None:
        cache = None
        print("[cache disabled: --metrics-out streams per-flow records]")
    runner = ParallelRunner(
        jobs=args.jobs,
        cache=cache,
        timeout=args.cell_timeout,
        retries=args.retries,
        backoff=args.retry_backoff,
        keep_going=args.keep_going,
        collect_metrics=False,
        collect_trace=bool(args.trace_out),
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )
    try:
        report = run_scale(plan, runner=runner)
    except SweepError as exc:
        print("sweep failed (scale):", file=sys.stderr)
        for error in exc.errors:
            print(f"  {error.summary()}", file=sys.stderr)
        return 1
    text = format_scale(report)
    failures = _failure_report(runner)
    if failures:
        text += "\n\n" + failures
    status = _finish(args, report.to_jsonable(), text)
    if args.metrics_out:
        print(f"[flow records streamed to {args.metrics_out}]")
    if args.trace_out:
        telemetry = runner.last_stats.telemetry
        records = list(telemetry.trace_records()) if telemetry else []
        path = write_jsonl(records, args.trace_out, command=args.command)
        print(f"[trace written to {path}]")
    return 1 if failures else status


def _cmd_compare(args: argparse.Namespace) -> int:
    duration = args.duration
    if duration is None:
        duration = 30.0 if args.paper_scale else 15.0
    cells = [
        SweepCell(
            key=variant,
            func=fig6_multipath.CELL_FUNC,
            params={
                "protocol": variant,
                "epsilon": args.epsilon,
                "link_delay": args.delay_ms * MS,
                "duration": duration,
            },
            seed=args.seed,
        )
        for variant in args.variants
    ]
    runner = _runner_from(args)
    try:
        values = runner.run_cells(cells)
    except SweepError as exc:
        print("comparison failed:", file=sys.stderr)
        for error in exc.errors:
            print(f"  {error.summary()}", file=sys.stderr)
        return 1
    results = {
        variant: value
        for variant, value in values.items()
        if not isinstance(value, CellError)
    }
    text = (
        f"Throughput over the Figure 5 mesh (eps={args.epsilon:g}, "
        f"{args.delay_ms} ms links, {duration:.0f} s):\n\n"
        + bar_chart(results, unit=" Mbps")
    )
    failures = _failure_report(runner)
    if failures:
        text += "\n\n" + failures
    payload = {
        "epsilon": args.epsilon,
        "delay_ms": args.delay_ms,
        "duration": duration,
        "throughput_mbps": results,
    }
    status = _finish(args, payload, text)
    _write_observability(args, [runner.last_stats.telemetry])
    return 1 if failures else status


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the project lint pass (see :mod:`repro.lint`).

    Exit codes: 0 clean, 1 findings, 2 internal analyzer error — CI can
    tell "the tree is dirty" from "the linter itself broke".
    """
    import json as _json

    from repro.lint import DEEP_RULES, RULES, run_analysis, to_sarif
    from repro.lint.deep import DEFAULT_CACHE_DIR

    if args.list_rules:
        catalog = [(r.code, r.slug, r.summary) for r in RULES]
        catalog.extend((r.code, r.slug, r.summary) for r in DEEP_RULES)
        width = max(len(slug) for _code, slug, _summary in catalog)
        for code, slug, summary in catalog:
            print(f"{code}  {slug:<{width}}  {summary}")
        return 0
    select = [
        prefix
        for chunk in (args.select or [])
        for prefix in chunk.split(",")
        if prefix.strip()
    ]
    result = run_analysis(
        args.paths,
        deep=args.deep,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir or DEFAULT_CACHE_DIR,
        jobs=args.jobs,
        select=select or None,
    )
    findings = result.findings
    fmt = "json" if args.lint_json else args.lint_format
    if fmt == "json":
        text = _json.dumps([finding.to_record() for finding in findings])
    elif fmt == "sarif":
        text = _json.dumps(to_sarif(findings), indent=2, sort_keys=True)
    else:
        lines = [finding.format() for finding in findings]
        noun = "finding" if len(findings) == 1 else "findings"
        lines.append(f"{len(findings)} {noun}")
        text = "\n".join(lines)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"[lint report written to {args.output}]")
    else:
        print(text)
    if args.stats:
        print(
            "lint-stats: " + _json.dumps(result.stats.to_record()),
            file=sys.stderr,
        )
    for error in result.errors:
        print(f"lint internal error: {error}", file=sys.stderr)
    if result.errors:
        return 2
    return 1 if findings else 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Inspect or convert an existing ``repro.obs/v1`` record stream."""
    # Inspection should survive a corrupt mid-file line (a shard worker
    # killed mid-append under a concurrent stream); the skipped count is
    # reported as a RuntimeWarning.
    records = read_jsonl(args.file, on_invalid="skip")
    if args.obs_command == "summary":
        print(summarize_records(records))
        return 0
    output = args.output or str(Path(args.file).with_suffix(".csv"))
    path = write_csv(records, output)
    print(f"[csv written to {path}]")
    return 0


def _cmd_trace_analyze(args: argparse.Namespace) -> int:
    """Pcap-style reordering analytics over a ``--trace-out`` stream."""
    stream = TraceStream.from_jsonl(args.file)
    report = analyze_stream(stream)
    if args.flow is not None:
        from repro.traces import FlowKey

        key = FlowKey(cell=args.cell, flow_id=args.flow)
        if key not in report.flows:
            known = ", ".join(str(k) for k in sorted(report.flows)) or "none"
            print(
                f"flow {key} not in {args.file} (flows: {known})",
                file=sys.stderr,
            )
            return 1
        report.flows = {key: report.flows[key]}
    return _finish(args, report.to_jsonable(), format_report(report))


def _load_profile(args: argparse.Namespace) -> ReorderProfile:
    """A profile from FILE: saved profile JSON, or distilled from a trace."""
    records = read_jsonl(args.file)
    if len(records) == 1 and records[0].get("record") == "reorder_profile":
        return ReorderProfile.from_record(records[0])
    return distill_profile(
        TraceStream(records),
        flow_id=args.flow,
        cell=args.cell,
        name=str(args.file),
    )


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    """Replay a trace (or saved profile) as a simulator scenario."""
    try:
        profile = _load_profile(args)
    except ValueError as exc:
        print(f"cannot build a replay profile: {exc}", file=sys.stderr)
        return 1
    print(profile.summary())
    if args.profile_out:
        path = profile.save(args.profile_out)
        print(f"[profile written to {path}]")
    if args.variant:
        goodput = replay_flow_workload(
            profile,
            variant=args.variant,
            duration=args.duration,
            seed=args.seed,
        )
        text = (
            f"closed-loop replay: {args.variant} over the profile link for "
            f"{args.duration:g} s -> {goodput:.2f} Mbps goodput"
        )
        payload: Any = {
            "mode": "closed-loop",
            "variant": args.variant,
            "duration": args.duration,
            "seed": args.seed,
            "goodput_mbps": goodput,
            "profile": profile.to_record(),
        }
        return _finish(args, payload, text)
    result = replay_profile(profile, seed=args.seed)
    extent = result.report.extent_summary()
    text = (
        f"open-loop replay (seed {args.seed}): injected {result.injected}, "
        f"delivered {result.delivered}, dropped {result.dropped}\n"
        f"reordered {result.report.reordered} "
        f"({result.reorder_ratio:.2%}), extent mean={extent['mean']:.2f} "
        f"max={extent['max']:.0f}"
    )
    payload = {
        "mode": "open-loop",
        "seed": args.seed,
        "injected": result.injected,
        "delivered": result.delivered,
        "dropped": result.dropped,
        "reorder_ratio": result.reorder_ratio,
        "reorder_density": result.reorder_density,
        "extent": extent,
        "profile": profile.to_record(),
    }
    return _finish(args, payload, text)


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    """Import an external capture CSV into the ``repro.obs/v1`` schema."""
    output = args.output or str(Path(args.file).with_suffix(".jsonl"))
    path = convert_capture(args.file, output, command="trace convert")
    print(f"[trace written to {path}]")
    return 0


def _cmd_ckpt_inspect(args: argparse.Namespace) -> int:
    """Describe a ``repro.ckpt/v1`` file without unpickling its graph."""
    from repro.checkpoint import CheckpointError, inspect_checkpoint

    try:
        info = inspect_checkpoint(args.file)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(info, indent=2, sort_keys=True))
    return 0


def _flatten_bench(value: Any, prefix: str = "") -> List[tuple]:
    """Flatten one BENCH_*.json payload into ``(dotted.path, scalar)`` rows.

    The committed benchmark files are heterogeneous (each subsystem
    records its own headline numbers), so the report is schema-agnostic:
    every numeric or string leaf becomes a row.  Lists of dicts — the
    common ``points: [{"mode": ..., ...}]`` idiom — are keyed by their
    ``mode`` (or ``segments``) field when present, else by index.
    """
    rows: List[tuple] = []
    if isinstance(value, dict):
        for key, item in value.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            rows.extend(_flatten_bench(item, path))
    elif isinstance(value, list):
        for index, item in enumerate(value):
            label = str(index)
            if isinstance(item, dict):
                tag = item.get("mode", item.get("segments"))
                if tag is not None:
                    label = str(tag)
            rows.extend(_flatten_bench(item, f"{prefix}[{label}]"))
    elif isinstance(value, bool) or value is None:
        pass  # flags and nulls carry no trajectory signal
    elif isinstance(value, (int, float, str)):
        rows.append((prefix, value))
    return rows


def _format_bench_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    text = str(value)
    if len(text) > 72:  # free-text provenance notes; --json keeps them whole
        return text[:69] + "..."
    return text


def _cmd_bench_report(args: argparse.Namespace) -> int:
    """Merge ``benchmarks/results/BENCH_*.json`` into one trajectory table."""
    results_dir = Path(args.dir)
    files = sorted(results_dir.glob("BENCH_*.json"))
    if not files:
        where = results_dir if results_dir.is_dir() else f"{results_dir} (no such directory)"
        print(
            f"no BENCH_*.json found under {where}; run the tier-2 "
            "benchmarks (pytest -m 'bench_smoke or bench_scale') or pass "
            "--dir pointing at committed results",
            file=sys.stderr,
        )
        return 1
    report: Dict[str, Dict[str, Any]] = {}
    for path in files:
        name = path.stem[len("BENCH_"):]
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 1
        report[name] = dict(_flatten_bench(data))
    if args.bench_json:
        text = json.dumps(report, indent=2, sort_keys=True)
    else:
        rows = [
            (bench, metric, _format_bench_value(value))
            for bench, metrics in report.items()
            for metric, value in metrics.items()
        ]
        if not rows:
            names = ", ".join(path.name for path in files)
            print(
                f"no reportable metrics in {names}; the files parsed but "
                "hold no numeric or string leaves",
                file=sys.stderr,
            )
            return 1
        widths = [
            max(len(header), *(len(row[col]) for row in rows))
            for col, header in enumerate(("benchmark", "metric", "value"))
        ]
        lines = [
            "| {} | {} | {} |".format(
                "benchmark".ljust(widths[0]),
                "metric".ljust(widths[1]),
                "value".ljust(widths[2]),
            ),
            "| {} | {} | {} |".format(*("-" * w for w in widths)),
        ]
        lines.extend(
            "| {} | {} | {} |".format(
                bench.ljust(widths[0]), metric.ljust(widths[1]),
                value.ljust(widths[2]),
            )
            for bench, metric, value in rows
        )
        text = "\n".join(lines)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"[report written to {args.output}]")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the TCP-PR paper's figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    # The shared flag groups.  argparse copies parent actions into each
    # child, so one definition site serves every subcommand.
    execution = _execution_parent()
    obs_flags = _obs_parent()
    engine = _engine_parent()
    common = [execution, obs_flags, engine]

    variants = sub.add_parser(
        "variants", help="list available TCP variants", parents=common
    )
    variants.set_defaults(func=_cmd_variants)

    fig2 = sub.add_parser(
        "fig2", help="Figure 2: fairness vs TCP-SACK", parents=common
    )
    fig2.add_argument("--topology", choices=["dumbbell", "parking-lot"],
                      default="dumbbell")
    fig2.add_argument("--flows", type=int, nargs="*", default=None,
                      help="total flow counts to sweep")
    fig2.add_argument("--duration", type=float, default=None,
                      help="seconds of simulated time per cell")
    fig2.add_argument("--window", type=float, default=None,
                      help="measurement window (final seconds)")
    fig2.set_defaults(func=_cmd_figure)

    fig3 = sub.add_parser(
        "fig3", help="Figure 3: CoV vs loss rate", parents=common
    )
    fig3.add_argument("--topology", choices=["dumbbell", "parking-lot"],
                      default="dumbbell")
    fig3.add_argument("--bandwidths", type=float, nargs="*", default=None,
                      help="bottleneck bandwidths (Mbps) to sweep")
    fig3.add_argument("--flows", type=int, default=None,
                      help="total number of flows")
    fig3.add_argument("--duration", type=float, default=None)
    fig3.add_argument("--window", type=float, default=None)
    fig3.set_defaults(func=_cmd_figure)

    fig4 = sub.add_parser(
        "fig4", help="Figure 4: alpha/beta sensitivity", parents=common
    )
    fig4.add_argument("--alphas", type=float, nargs="*", default=None,
                      help="TCP-PR alpha values to sweep")
    fig4.add_argument("--betas", type=float, nargs="*", default=None,
                      help="TCP-PR beta values to sweep")
    fig4.add_argument("--flows", type=int, default=None,
                      help="total number of flows")
    fig4.add_argument("--duration", type=float, default=None)
    fig4.add_argument("--window", type=float, default=None)
    fig4.add_argument("--extreme", action="store_true",
                      help="also run the extreme-loss beta sweep")
    fig4.set_defaults(func=_cmd_figure)

    fig6 = sub.add_parser(
        "fig6", help="Figure 6: multipath throughput", parents=common
    )
    fig6.add_argument("--delay-ms", type=float, default=10.0,
                      help="per-link delay in milliseconds (paper: 10 or 60)")
    fig6.add_argument("--epsilons", type=float, nargs="*", default=None)
    fig6.add_argument("--protocols", nargs="*", default=None,
                      help="subset of protocols to run")
    fig6.add_argument("--duration", type=float, default=None)
    fig6.set_defaults(func=_cmd_figure)

    fig7 = sub.add_parser(
        "fig7",
        help="Figure 7: goodput under scheduled outages/blackouts",
        parents=common,
    )
    fig7.add_argument("--delay-ms", type=float, default=10.0,
                      help="per-link delay in milliseconds")
    fig7.add_argument("--outages", type=float, nargs="*", default=None,
                      help="outage durations (seconds) to sweep")
    fig7.add_argument("--protocols", nargs="*", default=None,
                      help="subset of protocols to run")
    fig7.add_argument("--period", type=float, default=None,
                      help="seconds between outages (default: 10)")
    fig7.add_argument("--duration", type=float, default=None)
    fig7.set_defaults(func=_cmd_figure)

    scale = sub.add_parser(
        "scale",
        help="run a declarative scenario sharded across the worker pool",
        parents=common,
    )
    scale.add_argument(
        "--spec", metavar="PATH", default=None,
        help="load a saved ScenarioSpec JSON instead of the inline flags "
        "(a non-zero --seed re-seeds it)",
    )
    scale.add_argument(
        "--topology",
        choices=["fat-tree", "wan-mesh", "dumbbell", "parking-lot",
                 "multipath-mesh"],
        default="fat-tree",
    )
    scale.add_argument("--fat-k", type=int, default=4,
                       help="fat-tree arity k (even; default: 4)")
    scale.add_argument("--hosts-per-edge", type=int, default=2,
                       help="hosts per fat-tree edge switch")
    scale.add_argument("--oversubscription", type=float, default=1.0,
                       help="fat-tree uplink oversubscription ratio")
    scale.add_argument("--sites", type=int, default=8,
                       help="WAN-mesh site count")
    scale.add_argument("--site-degree", type=float, default=3.0,
                       help="WAN-mesh mean backbone degree")
    scale.add_argument("--hosts-per-site", type=int, default=1)
    scale.add_argument("--pairs", type=int, default=2,
                       help="dumbbell sender/receiver pairs")
    scale.add_argument("--arrival-rate", type=float, default=50.0,
                       help="Poisson flow arrivals per second")
    scale.add_argument("--max-flows", type=int, default=None,
                       help="hard cap on generated flows")
    scale.add_argument("--size-dist", choices=list(SIZE_DISTRIBUTIONS),
                       default="pareto")
    scale.add_argument("--mean-size", type=float, default=100.0,
                       help="mean flow size (segments)")
    scale.add_argument("--pareto-shape", type=float, default=1.3)
    scale.add_argument("--variant-mix", nargs="*", metavar="NAME[=WEIGHT]",
                       default=None,
                       help="TCP variant mix, e.g. tcp-pr=1 sack=1")
    scale.add_argument("--duration", type=float, default=30.0,
                       help="scenario horizon (simulated seconds)")
    scale.add_argument("--shards", type=int, default=None,
                       help="flow-group shards (default: max(--jobs, 1))")
    scale.add_argument("--reap-interval", type=float, default=1.0,
                       help="sim-time period of the in-shard flow reaper")
    scale.add_argument("--name", default="scenario",
                       help="scenario name recorded in specs and streams")
    scale.add_argument("--spec-out", metavar="PATH", default=None,
                       help="also save the resolved ScenarioSpec as JSON")
    scale.set_defaults(func=_cmd_scale)

    lint = sub.add_parser(
        "lint",
        help="run the project's determinism/hot-path/hygiene lint rules",
        parents=[engine],
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        metavar="PATH",
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--deep",
        action="store_true",
        help="also run the whole-program passes (interprocedural "
        "determinism taint REP11x, cross-artifact drift REP4xx)",
    )
    lint.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallel parse workers (default: min(cpu, 8); 1 = serial)",
    )
    lint.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not update the incremental analysis cache",
    )
    lint.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="analysis cache location (default: .repro-cache/lint)",
    )
    lint.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="PREFIX[,PREFIX...]",
        help="only report findings whose code matches a prefix "
        "(e.g. --select REP1 for the determinism family)",
    )
    lint.add_argument(
        "--format",
        dest="lint_format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--json",
        dest="lint_json",
        action="store_true",
        help="alias for --format json",
    )
    lint.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    lint.add_argument(
        "--stats",
        action="store_true",
        help="print cache hit/miss statistics to stderr",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog (shallow + deep) and exit",
    )
    lint.set_defaults(func=_cmd_lint)

    obs = sub.add_parser(
        "obs", help="inspect or convert a repro.obs/v1 record stream"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_summary = obs_sub.add_parser(
        "summary", help="print a human-readable digest of FILE",
        parents=[engine],
    )
    obs_summary.add_argument("file", metavar="FILE", help="JSONL record stream")
    obs_summary.set_defaults(func=_cmd_obs)
    obs_convert = obs_sub.add_parser(
        "convert", help="convert FILE (JSONL) to CSV", parents=[engine]
    )
    obs_convert.add_argument("file", metavar="FILE", help="JSONL record stream")
    obs_convert.add_argument(
        "-o",
        "--output",
        default=None,
        help="output CSV path (default: FILE with a .csv suffix)",
    )
    obs_convert.set_defaults(func=_cmd_obs)

    ckpt = sub.add_parser(
        "ckpt", help="inspect simulator checkpoint files (repro.ckpt/v1)"
    )
    ckpt_sub = ckpt.add_subparsers(dest="ckpt_command", required=True)
    ckpt_inspect = ckpt_sub.add_parser(
        "inspect",
        help="print a checkpoint's metadata and section sizes as JSON "
        "(reads headers only; never unpickles the simulation graph)",
        parents=[engine],
    )
    ckpt_inspect.add_argument(
        "file", metavar="FILE", help="checkpoint file (*.ckpt)"
    )
    ckpt_inspect.set_defaults(func=_cmd_ckpt_inspect)

    bench = sub.add_parser(
        "bench", help="inspect committed benchmark results"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_report = bench_sub.add_parser(
        "report",
        help="merge benchmarks/results/BENCH_*.json into one trajectory "
        "table (markdown by default)",
        parents=[engine],
    )
    bench_report.add_argument(
        "--dir",
        default="benchmarks/results",
        metavar="PATH",
        help="directory holding BENCH_*.json (default: benchmarks/results)",
    )
    bench_report.add_argument(
        "--json",
        dest="bench_json",
        action="store_true",
        help="emit the merged report as JSON instead of markdown",
    )
    bench_report.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the report to PATH instead of stdout",
    )
    bench_report.set_defaults(func=_cmd_bench_report)

    compare = sub.add_parser(
        "compare",
        help="compare chosen variants in one multipath scenario",
        parents=common,
    )
    compare.add_argument("--variants", nargs="+", default=["tcp-pr", "sack"])
    compare.add_argument("--epsilon", type=float, default=0.0)
    compare.add_argument("--delay-ms", type=float, default=10.0)
    compare.add_argument("--duration", type=float, default=None)
    compare.set_defaults(func=_cmd_compare)

    trace = sub.add_parser(
        "trace",
        help="analyze, replay, or import packet trace streams",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_analyze = trace_sub.add_parser(
        "analyze",
        help="pcap-style reordering analytics over a --trace-out stream",
        parents=common,
    )
    trace_analyze.add_argument("file", metavar="FILE",
                               help="repro.obs/v1 JSONL trace stream")
    trace_analyze.add_argument("--flow", type=int, default=None,
                               help="restrict the report to one flow id")
    trace_analyze.add_argument("--cell", default="",
                               help="sweep-cell tag of the flow (sweep traces)")
    trace_analyze.set_defaults(func=_cmd_trace_analyze)
    trace_replay = trace_sub.add_parser(
        "replay",
        help="distill FILE into a ReorderProfile and re-run it as a "
        "simulator scenario",
        parents=common,
    )
    trace_replay.add_argument("file", metavar="FILE",
                              help="trace stream (JSONL) or saved profile "
                              "(.profile.json)")
    trace_replay.add_argument("--flow", type=int, default=None,
                              help="flow id to distill from a trace stream")
    trace_replay.add_argument("--cell", default="",
                              help="sweep-cell tag of the flow")
    trace_replay.add_argument("--variant", default=None,
                              help="closed-loop mode: run this TCP variant "
                              "over the profile link instead of the "
                              "open-loop packet replay")
    trace_replay.add_argument("--duration", type=float, default=30.0,
                              help="closed-loop run length in seconds "
                              "(default: 30)")
    trace_replay.add_argument("--profile-out", metavar="PATH", default=None,
                              help="also save the distilled profile as JSON")
    trace_replay.set_defaults(func=_cmd_trace_replay)
    trace_convert = trace_sub.add_parser(
        "convert",
        help="import an external capture CSV as a repro.obs/v1 trace",
        parents=common,
    )
    trace_convert.add_argument("file", metavar="CSV",
                               help="capture table (see docs/TRACES.md)")
    trace_convert.add_argument("-o", "--output", default=None,
                               help="output JSONL path (default: CSV with a "
                               ".jsonl suffix)")
    trace_convert.set_defaults(func=_cmd_trace_convert)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "engine", None) is not None:
        from repro.core import engine_select

        try:
            engine_select.activate(args.engine)
        except engine_select.EngineUnavailableError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe; exit
        # quietly like any well-behaved filter.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())

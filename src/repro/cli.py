"""Command-line interface: regenerate the paper's figures from a shell.

Installed as ``repro-experiments`` (also ``python -m repro``)::

    repro-experiments variants
    repro-experiments fig2 --topology dumbbell --flows 4 8
    repro-experiments fig3 --topology parking-lot
    repro-experiments fig4 --jobs 8
    repro-experiments fig6 --delay-ms 10 --epsilons 0 4 500
    repro-experiments compare --scenario multipath --variants tcp-pr sack

Every subcommand prints the same rows/series the paper's figure shows
and shares one execution path: a :class:`~repro.exec.spec.Scale` preset
spec (``--paper-scale`` selects the full configuration), fanned out over
``--jobs`` worker processes, with results cached on disk under
``--cache-dir`` (default ``.repro-cache/``; disable with ``--no-cache``)
so repeat invocations are near-instant.  ``--json PATH`` additionally
dumps the result for external plotting tools.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.exec import DEFAULT_CACHE_DIR, ParallelRunner, ResultCache, Scale, SweepCell
from repro.experiments import fig2_fairness, fig3_cov, fig4_params, fig6_multipath
from repro.experiments.report import bar_chart
from repro.experiments.serialize import dump_result
from repro.tcp.registry import available_variants
from repro.util.units import MS


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the full paper-scale configuration (slow)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent sweep cells (default: 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also dump the result as JSON to PATH",
    )


def _cache_from(args: argparse.Namespace) -> Optional[ResultCache]:
    return None if args.no_cache else ResultCache(args.cache_dir)


def _finish(args: argparse.Namespace, result: Any, text: str) -> int:
    """Shared tail of every subcommand: print, optionally dump JSON."""
    print(text)
    if args.json:
        path = dump_result(result, args.json)
        print(f"[json written to {path}]")
    return 0


def _cmd_variants(args: argparse.Namespace) -> int:
    names = list(available_variants())
    lines = ["Available TCP variants:"] + [f"  {name}" for name in names]
    return _finish(args, {"variants": names}, "\n".join(lines))


@dataclass(frozen=True)
class _FigureCommand:
    """One figure subcommand: spec class + entry point + formatter."""

    spec_cls: type
    run: Callable[..., Any]
    fmt: Callable[[Any], str]
    #: Maps parsed args to spec-field overrides (None values are ignored
    #: by ``presets``, so optional CLI arguments forward verbatim).
    overrides: Callable[[argparse.Namespace], Dict[str, Any]]


_FIGURES: Dict[str, _FigureCommand] = {
    "fig2": _FigureCommand(
        spec_cls=fig2_fairness.Fig2Spec,
        run=fig2_fairness.run_fig2,
        fmt=fig2_fairness.format_fig2,
        overrides=lambda args: {
            "topology": args.topology,
            "flow_counts": tuple(args.flows) if args.flows else None,
            "duration": args.duration,
            "measure_window": args.window,
        },
    ),
    "fig3": _FigureCommand(
        spec_cls=fig3_cov.Fig3Spec,
        run=fig3_cov.run_fig3,
        fmt=fig3_cov.format_fig3,
        overrides=lambda args: {
            "topology": args.topology,
            "bandwidths_mbps": tuple(args.bandwidths) if args.bandwidths else None,
            "total_flows": args.flows,
            "duration": args.duration,
            "measure_window": args.window,
        },
    ),
    "fig4": _FigureCommand(
        spec_cls=fig4_params.Fig4Spec,
        run=fig4_params.run_fig4,
        fmt=fig4_params.format_fig4,
        overrides=lambda args: {
            "alphas": tuple(args.alphas) if args.alphas else None,
            "betas": tuple(args.betas) if args.betas else None,
            "total_flows": args.flows,
            "duration": args.duration,
            "measure_window": args.window,
        },
    ),
    "fig6": _FigureCommand(
        spec_cls=fig6_multipath.Fig6Spec,
        run=fig6_multipath.run_fig6,
        fmt=fig6_multipath.format_fig6,
        overrides=lambda args: {
            "link_delay": args.delay_ms * MS if args.delay_ms is not None else None,
            "protocols": tuple(args.protocols) if args.protocols else None,
            "epsilons": tuple(args.epsilons) if args.epsilons else None,
            "duration": args.duration,
        },
    ),
}


def _cmd_figure(args: argparse.Namespace) -> int:
    """The single code path every figure subcommand dispatches through."""
    command = _FIGURES[args.command]
    spec = command.spec_cls.presets(
        Scale.from_flag(args.paper_scale),
        seed=args.seed,
        **command.overrides(args),
    )
    cache = _cache_from(args)
    result = command.run(spec, jobs=args.jobs, cache=cache)
    text = command.fmt(result)
    payload: Any = result

    if getattr(args, "extreme", False):
        sweep_spec = fig4_params.BetaSweepSpec.presets(
            Scale.from_flag(args.paper_scale), seed=args.seed
        )
        points = fig4_params.run_extreme_loss_beta_sweep(
            sweep_spec, jobs=args.jobs, cache=cache
        )
        text += "\n\n" + fig4_params.format_beta_sweep(points)
        payload = {"fig4": result, "extreme_beta_sweep": points}

    return _finish(args, payload, text)


def _cmd_compare(args: argparse.Namespace) -> int:
    duration = args.duration
    if duration is None:
        duration = 30.0 if args.paper_scale else 15.0
    cells = [
        SweepCell(
            key=variant,
            func=fig6_multipath.CELL_FUNC,
            params={
                "protocol": variant,
                "epsilon": args.epsilon,
                "link_delay": args.delay_ms * MS,
                "duration": duration,
            },
            seed=args.seed,
        )
        for variant in args.variants
    ]
    runner = ParallelRunner(jobs=args.jobs, cache=_cache_from(args))
    values = runner.run_cells(cells)
    results = {variant: values[variant] for variant in args.variants}
    text = (
        f"Throughput over the Figure 5 mesh (eps={args.epsilon:g}, "
        f"{args.delay_ms} ms links, {duration:.0f} s):\n\n"
        + bar_chart(results, unit=" Mbps")
    )
    payload = {
        "epsilon": args.epsilon,
        "delay_ms": args.delay_ms,
        "duration": duration,
        "throughput_mbps": results,
    }
    return _finish(args, payload, text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the TCP-PR paper's figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    variants = sub.add_parser("variants", help="list available TCP variants")
    _add_common(variants)
    variants.set_defaults(func=_cmd_variants)

    fig2 = sub.add_parser("fig2", help="Figure 2: fairness vs TCP-SACK")
    fig2.add_argument("--topology", choices=["dumbbell", "parking-lot"],
                      default="dumbbell")
    fig2.add_argument("--flows", type=int, nargs="*", default=None,
                      help="total flow counts to sweep")
    fig2.add_argument("--duration", type=float, default=None,
                      help="seconds of simulated time per cell")
    fig2.add_argument("--window", type=float, default=None,
                      help="measurement window (final seconds)")
    _add_common(fig2)
    fig2.set_defaults(func=_cmd_figure)

    fig3 = sub.add_parser("fig3", help="Figure 3: CoV vs loss rate")
    fig3.add_argument("--topology", choices=["dumbbell", "parking-lot"],
                      default="dumbbell")
    fig3.add_argument("--bandwidths", type=float, nargs="*", default=None,
                      help="bottleneck bandwidths (Mbps) to sweep")
    fig3.add_argument("--flows", type=int, default=None,
                      help="total number of flows")
    fig3.add_argument("--duration", type=float, default=None)
    fig3.add_argument("--window", type=float, default=None)
    _add_common(fig3)
    fig3.set_defaults(func=_cmd_figure)

    fig4 = sub.add_parser("fig4", help="Figure 4: alpha/beta sensitivity")
    fig4.add_argument("--alphas", type=float, nargs="*", default=None,
                      help="TCP-PR alpha values to sweep")
    fig4.add_argument("--betas", type=float, nargs="*", default=None,
                      help="TCP-PR beta values to sweep")
    fig4.add_argument("--flows", type=int, default=None,
                      help="total number of flows")
    fig4.add_argument("--duration", type=float, default=None)
    fig4.add_argument("--window", type=float, default=None)
    fig4.add_argument("--extreme", action="store_true",
                      help="also run the extreme-loss beta sweep")
    _add_common(fig4)
    fig4.set_defaults(func=_cmd_figure)

    fig6 = sub.add_parser("fig6", help="Figure 6: multipath throughput")
    fig6.add_argument("--delay-ms", type=float, default=10.0,
                      help="per-link delay in milliseconds (paper: 10 or 60)")
    fig6.add_argument("--epsilons", type=float, nargs="*", default=None)
    fig6.add_argument("--protocols", nargs="*", default=None,
                      help="subset of protocols to run")
    fig6.add_argument("--duration", type=float, default=None)
    _add_common(fig6)
    fig6.set_defaults(func=_cmd_figure)

    compare = sub.add_parser(
        "compare", help="compare chosen variants in one multipath scenario"
    )
    compare.add_argument("--variants", nargs="+", default=["tcp-pr", "sack"])
    compare.add_argument("--epsilon", type=float, default=0.0)
    compare.add_argument("--delay-ms", type=float, default=10.0)
    compare.add_argument("--duration", type=float, default=None)
    _add_common(compare)
    compare.set_defaults(func=_cmd_compare)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Figure 5's multi-path comparison topology.

The paper's drawing is a source→destination mesh in which "each link has
a bandwidth of 10 Mbps and queue has a size of 100 packets", with all
link delays equal (10 ms in one experiment set, 60 ms in the other), and
multiple independent paths.  At ε = 0 the measured aggregate reaches
≈ 30-35 Mbps, implying at least four usable 10 Mbps paths.

We build the closest synthetic equivalent satisfying every stated
constraint: ``num_paths`` node-disjoint paths between ``src`` and
``dst``, with hop counts ``2, 3, 4, 5, ...`` so the ε-parameterized
softmin routing has distinct path costs to discriminate on (with all
links equal-delay, the cost differences come from hop count, exactly as
in a mesh).  Intermediate nodes are named ``p{k}m{i}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Optional, Tuple

from repro.net.network import Network, install_static_routes
from repro.routing.multipath import EpsilonMultipathPolicy
from repro.sim import Simulator
from repro.topologies.base import Topology, register_topology
from repro.util.units import MBPS, MS


@register_topology
@dataclass
class MultipathMeshSpec:
    """Parameters of the Figure 5 mesh (implements ``TopologySpec``).

    Attributes:
        num_paths: Node-disjoint path count (>= 1).
        link_delay: Per-link propagation delay (10 ms or 60 ms in the paper).
        bandwidth: Per-link rate (paper: 10 Mbps).
        queue_packets: DropTail queue size (paper: 100).
        min_hops: Hop count of the shortest path; path k has
            ``min_hops + k`` hops.
        seed: Master RNG seed.
    """

    kind: ClassVar[str] = "multipath-mesh"

    num_paths: int = 4
    link_delay: float = 10 * MS
    bandwidth: float = 10 * MBPS
    queue_packets: int = 100
    min_hops: int = 2
    seed: int = 0

    def path_hop_counts(self) -> List[int]:
        return [self.min_hops + k for k in range(self.num_paths)]

    def endpoints(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        return ("src",), ("dst",)

    def build(self, sim: Optional[Simulator] = None) -> Topology:
        """Construct the mesh; nodes ``src`` and ``dst`` are the endpoints."""
        if self.num_paths < 1:
            raise ValueError(f"need at least one path, got {self.num_paths}")
        net = Network(seed=self.seed, sim=sim)
        net.add_nodes("src", "dst")
        for k, hops in enumerate(self.path_hop_counts()):
            middles = [f"p{k}m{i}" for i in range(hops - 1)]
            for name in middles:
                net.add_node(name)
            chain = ["src", *middles, "dst"]
            for left, right in zip(chain, chain[1:]):
                net.add_duplex_link(
                    left,
                    right,
                    bandwidth=self.bandwidth,
                    delay=self.link_delay,
                    queue=self.queue_packets,
                )
        install_static_routes(net)
        return Topology(
            network=net,
            kind=self.kind,
            senders=("src",),
            receivers=("dst",),
        )


def build_multipath_mesh(
    spec: MultipathMeshSpec, sim: Optional[Simulator] = None
) -> Network:
    """Construct the mesh; nodes ``src`` and ``dst`` are the endpoints.

    Deprecated: thin wrapper kept for older call sites.  New code should
    use the ``TopologySpec`` protocol — ``spec.build(sim)`` — which also
    returns the sender/receiver handles.
    """
    return spec.build(sim).network


def install_epsilon_routing(
    net: Network,
    epsilon: float,
    reorder_acks: bool = True,
    max_paths: Optional[int] = None,
) -> EpsilonMultipathPolicy:
    """Attach ε-multipath policies for ``src -> dst`` (and the ACK path).

    Returns the forward-direction policy (for path-usage diagnostics).
    """
    forward: EpsilonMultipathPolicy = EpsilonMultipathPolicy(
        net, "src", epsilon=epsilon, destinations=["dst"], max_paths=max_paths
    ).install()
    if reorder_acks:
        EpsilonMultipathPolicy(
            net, "dst", epsilon=epsilon, destinations=["src"], max_paths=max_paths
        ).install()
    return forward

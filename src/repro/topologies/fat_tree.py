"""k-ary fat-tree topology generator (the datacenter scale-out shape).

The classic three-tier Clos fat-tree: ``(k/2)^2`` core switches, ``k``
pods of ``k/2`` aggregation and ``k/2`` edge switches each, and
``hosts_per_edge`` hosts per edge switch (the textbook value is ``k/2``;
the default here is smaller so quick scenarios stay small).  Aggregation
switch ``a`` of every pod uplinks to cores ``a*(k/2) .. a*(k/2)+k/2-1``.

Node naming: cores ``c{i}``, aggregation ``p{p}a{a}``, edge
``p{p}e{e}``, hosts ``p{p}e{e}h{j}``.

Two knobs parameterize the capacity and delay distributions:

* ``oversubscription`` divides the aggregation→core uplink bandwidth,
  modeling the usual under-provisioned core (1.0 = full bisection);
* ``delay_jitter`` perturbs every link's propagation delay by a
  uniform ``±jitter`` *fraction*, drawn from the spec's seeded RNG
  stream, so equal-cost paths get distinct-but-deterministic costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Optional, Tuple

from repro.net.network import Network, install_static_routes
from repro.sim import Simulator
from repro.sim.rng import RngRegistry
from repro.topologies.base import Topology, register_topology
from repro.util.units import MBPS, MS


@register_topology
@dataclass
class FatTreeSpec:
    """Parameters of a k-ary fat-tree (implements ``TopologySpec``).

    Attributes:
        k: Pod degree (even, >= 2): ``k`` pods, ``k/2`` edge and ``k/2``
            aggregation switches per pod, ``(k/2)^2`` cores.
        hosts_per_edge: Hosts attached to each edge switch.
        bandwidth: Host and intra-pod link rate (bits/second).
        oversubscription: Aggregation→core uplinks run at
            ``bandwidth / oversubscription`` (>= 1.0).
        host_delay: Host↔edge propagation delay (seconds).
        switch_delay: Switch↔switch propagation delay (seconds).
        delay_jitter: Uniform ±fraction applied to every link delay,
            drawn deterministically from ``seed`` (0 disables).
        queue_packets: DropTail queue capacity on every link.
        seed: Master RNG seed (simulator and jitter stream).
    """

    kind: ClassVar[str] = "fat-tree"

    k: int = 4
    hosts_per_edge: int = 2
    bandwidth: float = 100 * MBPS
    oversubscription: float = 1.0
    host_delay: float = 0.05 * MS
    switch_delay: float = 0.05 * MS
    delay_jitter: float = 0.0
    queue_packets: int = 100
    seed: int = 0

    def _validate(self) -> None:
        if self.k < 2 or self.k % 2 != 0:
            raise ValueError(f"k must be even and >= 2, got {self.k}")
        if self.hosts_per_edge < 1:
            raise ValueError(
                f"hosts_per_edge must be >= 1, got {self.hosts_per_edge}"
            )
        if self.oversubscription < 1.0:
            raise ValueError(
                f"oversubscription must be >= 1.0, got {self.oversubscription}"
            )
        if not 0.0 <= self.delay_jitter < 1.0:
            raise ValueError(
                f"delay_jitter must be in [0, 1), got {self.delay_jitter}"
            )

    def host_names(self) -> List[str]:
        """Every host name, in pod/edge/index order."""
        self._validate()
        half = self.k // 2
        return [
            f"p{p}e{e}h{j}"
            for p in range(self.k)
            for e in range(half)
            for j in range(self.hosts_per_edge)
        ]

    def num_hosts(self) -> int:
        return self.k * (self.k // 2) * self.hosts_per_edge

    def endpoints(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        hosts = tuple(self.host_names())
        return hosts, hosts

    def build(self, sim: Optional[Simulator] = None) -> Topology:
        """Construct the fat-tree and install shortest-path routes."""
        self._validate()
        half = self.k // 2
        net = Network(seed=self.seed, sim=sim)
        jitter_rng = (
            RngRegistry(self.seed).stream("fat-tree/delay-jitter")
            if self.delay_jitter > 0.0
            else None
        )

        def delay(base: float) -> float:
            if jitter_rng is None:
                return base
            return base * (
                1.0 + jitter_rng.uniform(-self.delay_jitter, self.delay_jitter)
            )

        for c in range(half * half):
            net.add_node(f"c{c}")
        core_bandwidth = self.bandwidth / self.oversubscription
        for p in range(self.k):
            for a in range(half):
                net.add_node(f"p{p}a{a}")
            for e in range(half):
                net.add_node(f"p{p}e{e}")
            # Full bipartite edge<->aggregation mesh within the pod.
            for e in range(half):
                for a in range(half):
                    net.add_duplex_link(
                        f"p{p}e{e}",
                        f"p{p}a{a}",
                        bandwidth=self.bandwidth,
                        delay=delay(self.switch_delay),
                        queue=self.queue_packets,
                    )
            # Aggregation uplinks: switch a owns core group a.
            for a in range(half):
                for j in range(half):
                    net.add_duplex_link(
                        f"p{p}a{a}",
                        f"c{a * half + j}",
                        bandwidth=core_bandwidth,
                        delay=delay(self.switch_delay),
                        queue=self.queue_packets,
                    )
            # Hosts.
            for e in range(half):
                for j in range(self.hosts_per_edge):
                    host = f"p{p}e{e}h{j}"
                    net.add_node(host)
                    net.add_duplex_link(
                        host,
                        f"p{p}e{e}",
                        bandwidth=self.bandwidth,
                        delay=delay(self.host_delay),
                        queue=self.queue_packets,
                    )
        install_static_routes(net)
        hosts = tuple(self.host_names())
        return Topology(
            network=net,
            kind=self.kind,
            senders=hosts,
            receivers=hosts,
        )

"""The dumbbell (single-bottleneck) topology of Section 4.

All flows share one bottleneck link between two routers; each sender and
receiver hangs off its own access link.  The paper does not state its
dumbbell parameters, so the defaults here are typical paper-era values
consistent with the parking-lot numbers of Figure 1 (15 Mbps links), and
every parameter is adjustable through :class:`DumbbellSpec`.

Node naming: senders ``s0..s{n-1}``, receivers ``d0..d{n-1}``, routers
``r0`` (left) and ``r1`` (right).  Flow *i* runs ``si -> di``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.network import Network, install_static_routes
from repro.sim import Simulator
from repro.util.units import MBPS, MS


@dataclass
class DumbbellSpec:
    """Parameters of a dumbbell topology.

    Attributes:
        num_pairs: Number of sender/receiver pairs.
        bottleneck_bandwidth: Bottleneck link rate (bits/second).
        bottleneck_delay: Bottleneck propagation delay (seconds).
        access_bandwidth: Per-host access link rate.
        access_delay: Per-host access link delay.
        queue_packets: DropTail queue capacity on every link.
        seed: Master RNG seed for the simulation.
    """

    num_pairs: int = 2
    bottleneck_bandwidth: float = 15 * MBPS
    bottleneck_delay: float = 10 * MS
    access_bandwidth: float = 15 * MBPS
    access_delay: float = 2 * MS
    queue_packets: int = 100
    seed: int = 0

    def rtt_floor(self) -> float:
        """Two-way propagation delay with zero queueing."""
        return 2.0 * (self.bottleneck_delay + 2 * self.access_delay)


def build_dumbbell(
    spec: DumbbellSpec, sim: Optional[Simulator] = None
) -> Network:
    """Construct the dumbbell network and install shortest-path routes.

    Pass ``sim`` to host the topology on a pre-built simulator (e.g.
    ``Simulator(seed=..., profile=True)``); otherwise one is created
    from ``spec.seed``.
    """
    if spec.num_pairs < 1:
        raise ValueError(f"need at least one pair, got {spec.num_pairs}")
    net = Network(seed=spec.seed, sim=sim)
    net.add_nodes("r0", "r1")
    net.add_duplex_link(
        "r0",
        "r1",
        bandwidth=spec.bottleneck_bandwidth,
        delay=spec.bottleneck_delay,
        queue=spec.queue_packets,
    )
    for i in range(spec.num_pairs):
        net.add_node(f"s{i}")
        net.add_node(f"d{i}")
        net.add_duplex_link(
            f"s{i}",
            "r0",
            bandwidth=spec.access_bandwidth,
            delay=spec.access_delay,
            queue=spec.queue_packets,
        )
        net.add_duplex_link(
            "r1",
            f"d{i}",
            bandwidth=spec.access_bandwidth,
            delay=spec.access_delay,
            queue=spec.queue_packets,
        )
    install_static_routes(net)
    return net

"""The dumbbell (single-bottleneck) topology of Section 4.

All flows share one bottleneck link between two routers; each sender and
receiver hangs off its own access link.  The paper does not state its
dumbbell parameters, so the defaults here are typical paper-era values
consistent with the parking-lot numbers of Figure 1 (15 Mbps links), and
every parameter is adjustable through :class:`DumbbellSpec`.

Node naming: senders ``s0..s{n-1}``, receivers ``d0..d{n-1}``, routers
``r0`` (left) and ``r1`` (right).  Flow *i* runs ``si -> di``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional, Tuple

from repro.net.network import Network, install_static_routes
from repro.sim import Simulator
from repro.topologies.base import Topology, register_topology
from repro.util.units import MBPS, MS


@register_topology
@dataclass
class DumbbellSpec:
    """Parameters of a dumbbell topology (implements ``TopologySpec``).

    Attributes:
        num_pairs: Number of sender/receiver pairs.
        bottleneck_bandwidth: Bottleneck link rate (bits/second).
        bottleneck_delay: Bottleneck propagation delay (seconds).
        access_bandwidth: Per-host access link rate.
        access_delay: Per-host access link delay.
        queue_packets: DropTail queue capacity on every link.
        seed: Master RNG seed for the simulation.
    """

    kind: ClassVar[str] = "dumbbell"

    num_pairs: int = 2
    bottleneck_bandwidth: float = 15 * MBPS
    bottleneck_delay: float = 10 * MS
    access_bandwidth: float = 15 * MBPS
    access_delay: float = 2 * MS
    queue_packets: int = 100
    seed: int = 0

    def rtt_floor(self) -> float:
        """Two-way propagation delay with zero queueing."""
        return 2.0 * (self.bottleneck_delay + 2 * self.access_delay)

    def endpoints(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        senders = tuple(f"s{i}" for i in range(self.num_pairs))
        receivers = tuple(f"d{i}" for i in range(self.num_pairs))
        return senders, receivers

    def build(self, sim: Optional[Simulator] = None) -> Topology:
        """Construct the dumbbell and install shortest-path routes.

        Pass ``sim`` to host the topology on a pre-built simulator (e.g.
        ``Simulator(seed=..., profile=True)``); otherwise one is created
        from :attr:`seed`.
        """
        if self.num_pairs < 1:
            raise ValueError(f"need at least one pair, got {self.num_pairs}")
        net = Network(seed=self.seed, sim=sim)
        net.add_nodes("r0", "r1")
        net.add_duplex_link(
            "r0",
            "r1",
            bandwidth=self.bottleneck_bandwidth,
            delay=self.bottleneck_delay,
            queue=self.queue_packets,
        )
        for i in range(self.num_pairs):
            net.add_node(f"s{i}")
            net.add_node(f"d{i}")
            net.add_duplex_link(
                f"s{i}",
                "r0",
                bandwidth=self.access_bandwidth,
                delay=self.access_delay,
                queue=self.queue_packets,
            )
            net.add_duplex_link(
                "r1",
                f"d{i}",
                bandwidth=self.access_bandwidth,
                delay=self.access_delay,
                queue=self.queue_packets,
            )
        install_static_routes(net)
        senders, receivers = self.endpoints()
        return Topology(
            network=net,
            kind=self.kind,
            senders=senders,
            receivers=receivers,
            bottlenecks=("r0->r1",),
        )


def build_dumbbell(
    spec: DumbbellSpec, sim: Optional[Simulator] = None
) -> Network:
    """Construct the dumbbell network and install shortest-path routes.

    Deprecated: thin wrapper kept for older call sites.  New code should
    use the ``TopologySpec`` protocol — ``spec.build(sim)`` — which also
    returns the sender/receiver/bottleneck handles.
    """
    return spec.build(sim).network

"""Figure 1's parking-lot topology with multiple bottlenecks.

Backbone ``1 - 2 - 3 - 4`` with the main flows running ``S -> D`` across
all three backbone links.  Cross-traffic sources CS1..CS3 attach at
backbone nodes 1..3 and cross destinations CD1..CD3 at nodes 2..4.  The
paper's stated bandwidths:

    CS1->1 = 5 Mbps,  CS2->2 = 1.66 Mbps,  CS3->3 = 2.5 Mbps,
    all other links 15 Mbps,

which makes the three backbone links ``1->2``, ``2->3`` and ``3->4`` the
bottlenecks.  Cross connections (also from the caption): CS1->CD1,
CS1->CD2, CS1->CD3, CS2->CD2, CS2->CD3, CS3->CD3.

Node names: ``S``, ``D``, ``n1..n4``, ``CS1..CS3``, ``CD1..CD3``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Optional, Tuple

from repro.net.network import Network, install_static_routes
from repro.sim import Simulator
from repro.topologies.base import Topology, register_topology
from repro.util.units import MBPS, MS

#: The cross-traffic (source, destination) pairs from Figure 1's caption.
CROSS_TRAFFIC_PAIRS: List[Tuple[str, str]] = [
    ("CS1", "CD1"),
    ("CS1", "CD2"),
    ("CS1", "CD3"),
    ("CS2", "CD2"),
    ("CS2", "CD3"),
    ("CS3", "CD3"),
]


@register_topology
@dataclass
class ParkingLotSpec:
    """Parameters of the parking-lot topology (implements ``TopologySpec``).

    Bandwidths default to the paper's; delays are unstated in the paper
    and default to 10 ms on the backbone and 2 ms on access links.
    """

    kind: ClassVar[str] = "parking-lot"

    backbone_bandwidth: float = 15 * MBPS
    cs1_bandwidth: float = 5 * MBPS
    cs2_bandwidth: float = 1.66 * MBPS
    cs3_bandwidth: float = 2.5 * MBPS
    other_bandwidth: float = 15 * MBPS
    backbone_delay: float = 10 * MS
    access_delay: float = 2 * MS
    queue_packets: int = 100
    seed: int = 0

    def endpoints(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        return ("S",), ("D",)

    def build(self, sim: Optional[Simulator] = None) -> Topology:
        """Construct Figure 1's parking lot with shortest-path routes."""
        net = Network(seed=self.seed, sim=sim)
        net.add_nodes("S", "D", "n1", "n2", "n3", "n4")
        net.add_nodes("CS1", "CS2", "CS3", "CD1", "CD2", "CD3")

        # Backbone: the three bottleneck links.
        for left, right in (("n1", "n2"), ("n2", "n3"), ("n3", "n4")):
            net.add_duplex_link(
                left,
                right,
                bandwidth=self.backbone_bandwidth,
                delay=self.backbone_delay,
                queue=self.queue_packets,
            )

        # Main flow attachment points.
        net.add_duplex_link(
            "S", "n1", self.other_bandwidth, self.access_delay, self.queue_packets
        )
        net.add_duplex_link(
            "n4", "D", self.other_bandwidth, self.access_delay, self.queue_packets
        )

        # Cross-traffic sources with the paper's asymmetric ingress rates.
        for name, attach, bandwidth in (
            ("CS1", "n1", self.cs1_bandwidth),
            ("CS2", "n2", self.cs2_bandwidth),
            ("CS3", "n3", self.cs3_bandwidth),
        ):
            net.add_duplex_link(
                name, attach, bandwidth, self.access_delay, self.queue_packets
            )

        # Cross-traffic destinations.
        for name, attach in (("CD1", "n2"), ("CD2", "n3"), ("CD3", "n4")):
            net.add_duplex_link(
                attach, name, self.other_bandwidth, self.access_delay,
                self.queue_packets,
            )
        install_static_routes(net)
        return Topology(
            network=net,
            kind=self.kind,
            senders=("S",),
            receivers=("D",),
            bottlenecks=("n1->n2", "n2->n3", "n3->n4"),
        )


def build_parking_lot(
    spec: ParkingLotSpec, sim: Optional[Simulator] = None
) -> Network:
    """Construct Figure 1's parking lot and install shortest-path routes.

    Deprecated: thin wrapper kept for older call sites.  New code should
    use the ``TopologySpec`` protocol — ``spec.build(sim)`` — which also
    returns the sender/receiver/bottleneck handles.
    """
    return spec.build(sim).network

"""Topology builders for the paper's experiments and scale-out scenarios.

Every shape implements the :class:`~repro.topologies.base.TopologySpec`
protocol — ``spec.build(sim) -> Topology`` returns the network plus
named sender/receiver/bottleneck handles, ``spec.endpoints()`` answers
the endpoint question without building, and the ``kind`` registry
round-trips any spec through JSON (see ``docs/SCENARIOS.md``):

* :class:`~repro.topologies.dumbbell.DumbbellSpec` — the classic
  single-bottleneck topology of Section 4;
* :class:`~repro.topologies.parking_lot.ParkingLotSpec` — Figure 1's
  multi-bottleneck parking lot with its six cross-traffic pairs;
* :class:`~repro.topologies.multipath_mesh.MultipathMeshSpec` —
  Figure 5's multi-path source→destination comparison topology;
* :class:`~repro.topologies.fat_tree.FatTreeSpec` — k-ary datacenter
  fat-tree with parameterized oversubscription and delay jitter;
* :class:`~repro.topologies.wan_mesh.WanMeshSpec` — random wide-area
  mesh (ring + chords) with heterogeneous per-link delays.

The ``build_*`` functions are deprecated thin wrappers over
``spec.build()``, kept for older call sites.
"""

from repro.topologies.base import (
    Topology,
    TopologySpec,
    register_topology,
    topology_class,
    topology_from_jsonable,
    topology_kinds,
    topology_to_jsonable,
    topology_with_seed,
)
from repro.topologies.dumbbell import DumbbellSpec, build_dumbbell
from repro.topologies.fat_tree import FatTreeSpec
from repro.topologies.multipath_mesh import (
    MultipathMeshSpec,
    build_multipath_mesh,
    install_epsilon_routing,
)
from repro.topologies.parking_lot import (
    CROSS_TRAFFIC_PAIRS,
    ParkingLotSpec,
    build_parking_lot,
)
from repro.topologies.wan_mesh import WanMeshSpec

__all__ = [
    "CROSS_TRAFFIC_PAIRS",
    "DumbbellSpec",
    "FatTreeSpec",
    "MultipathMeshSpec",
    "ParkingLotSpec",
    "Topology",
    "TopologySpec",
    "WanMeshSpec",
    "build_dumbbell",
    "build_multipath_mesh",
    "build_parking_lot",
    "install_epsilon_routing",
    "register_topology",
    "topology_class",
    "topology_from_jsonable",
    "topology_kinds",
    "topology_to_jsonable",
    "topology_with_seed",
]

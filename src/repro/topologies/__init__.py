"""Topology builders for the paper's experiments.

* :func:`~repro.topologies.dumbbell.build_dumbbell` — the classic
  single-bottleneck topology of Section 4.
* :func:`~repro.topologies.parking_lot.build_parking_lot` — Figure 1's
  multi-bottleneck parking lot with its six cross-traffic pairs.
* :func:`~repro.topologies.multipath_mesh.build_multipath_mesh` —
  Figure 5's multi-path source→destination comparison topology.
"""

from repro.topologies.dumbbell import DumbbellSpec, build_dumbbell
from repro.topologies.multipath_mesh import (
    MultipathMeshSpec,
    build_multipath_mesh,
    install_epsilon_routing,
)
from repro.topologies.parking_lot import (
    CROSS_TRAFFIC_PAIRS,
    ParkingLotSpec,
    build_parking_lot,
)

__all__ = [
    "CROSS_TRAFFIC_PAIRS",
    "DumbbellSpec",
    "MultipathMeshSpec",
    "ParkingLotSpec",
    "build_dumbbell",
    "build_multipath_mesh",
    "build_parking_lot",
    "install_epsilon_routing",
]

"""WAN mesh topology generator (the wide-area scale-out shape).

``sites`` backbone routers arranged as a ring (guaranteeing
connectivity) plus random chords until the average router degree reaches
``degree`` — the standard sparse random-WAN construction.  Per-link
propagation delays are drawn uniformly from ``[delay_min, delay_max]``,
so paths have genuinely heterogeneous RTTs, which is exactly the regime
where reordering-tolerant retransmission policies are interesting.

Both the chord placement and the delay draws come from
:class:`~repro.sim.rng.RngRegistry` streams derived from ``seed``: the
same spec always builds the identical graph.

Node naming: routers ``r{i}``, hosts ``r{i}h{j}`` (``hosts_per_site``
per router; with 0 hosts the routers themselves are the endpoints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Optional, Set, Tuple

from repro.net.network import Network, install_static_routes
from repro.sim import Simulator
from repro.sim.rng import RngRegistry
from repro.topologies.base import Topology, register_topology
from repro.util.units import MBPS, MS


@register_topology
@dataclass
class WanMeshSpec:
    """Parameters of a random WAN mesh (implements ``TopologySpec``).

    Attributes:
        sites: Backbone router count (>= 2).
        degree: Target average router degree (ring gives 2; chords are
            added until ``sites * degree / 2`` total backbone links).
        hosts_per_site: Hosts hanging off each router (0 = routers are
            the endpoints themselves).
        backbone_bandwidth: Router↔router link rate (bits/second).
        access_bandwidth: Host↔router link rate.
        delay_min / delay_max: Uniform range the per-backbone-link
            propagation delays are drawn from (seconds).
        access_delay: Host↔router propagation delay.
        queue_packets: DropTail queue capacity on every link.
        seed: Master RNG seed (simulator, chords, and delay draws).
    """

    kind: ClassVar[str] = "wan-mesh"

    sites: int = 8
    degree: float = 3.0
    hosts_per_site: int = 1
    backbone_bandwidth: float = 100 * MBPS
    access_bandwidth: float = 100 * MBPS
    delay_min: float = 5 * MS
    delay_max: float = 40 * MS
    access_delay: float = 1 * MS
    queue_packets: int = 100
    seed: int = 0

    def _validate(self) -> None:
        if self.sites < 2:
            raise ValueError(f"sites must be >= 2, got {self.sites}")
        if self.degree < 2.0:
            raise ValueError(f"degree must be >= 2.0, got {self.degree}")
        if self.hosts_per_site < 0:
            raise ValueError(
                f"hosts_per_site must be >= 0, got {self.hosts_per_site}"
            )
        if not 0.0 <= self.delay_min <= self.delay_max:
            raise ValueError(
                f"need 0 <= delay_min <= delay_max, got "
                f"{self.delay_min}..{self.delay_max}"
            )

    def host_names(self) -> List[str]:
        """Every endpoint name, in site/index order."""
        self._validate()
        if self.hosts_per_site == 0:
            return [f"r{i}" for i in range(self.sites)]
        return [
            f"r{i}h{j}"
            for i in range(self.sites)
            for j in range(self.hosts_per_site)
        ]

    def endpoints(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        hosts = tuple(self.host_names())
        return hosts, hosts

    def backbone_pairs(self) -> List[Tuple[int, int]]:
        """The deterministic backbone edge list (ring + accepted chords)."""
        self._validate()
        pairs: List[Tuple[int, int]] = []
        seen: Set[Tuple[int, int]] = set()
        ring = self.sites if self.sites > 2 else 1
        for i in range(ring):
            pair = tuple(sorted((i, (i + 1) % self.sites)))
            pairs.append((pair[0], pair[1]))
            seen.add((pair[0], pair[1]))
        target = max(len(pairs), round(self.sites * self.degree / 2.0))
        chord_rng = RngRegistry(self.seed).stream("wan-mesh/chords")
        max_pairs = self.sites * (self.sites - 1) // 2
        attempts = 20 * (target - len(pairs)) + 50
        for _ in range(attempts):
            if len(pairs) >= min(target, max_pairs):
                break
            a = chord_rng.randrange(self.sites)
            b = chord_rng.randrange(self.sites)
            if a == b:
                continue
            pair = tuple(sorted((a, b)))
            if (pair[0], pair[1]) in seen:
                continue
            pairs.append((pair[0], pair[1]))
            seen.add((pair[0], pair[1]))
        return pairs

    def build(self, sim: Optional[Simulator] = None) -> Topology:
        """Construct the mesh and install shortest-path (delay) routes."""
        self._validate()
        net = Network(seed=self.seed, sim=sim)
        for i in range(self.sites):
            net.add_node(f"r{i}")
        delay_rng = RngRegistry(self.seed).stream("wan-mesh/delays")
        for a, b in self.backbone_pairs():
            net.add_duplex_link(
                f"r{a}",
                f"r{b}",
                bandwidth=self.backbone_bandwidth,
                delay=delay_rng.uniform(self.delay_min, self.delay_max),
                queue=self.queue_packets,
            )
        for i in range(self.sites):
            for j in range(self.hosts_per_site):
                host = f"r{i}h{j}"
                net.add_node(host)
                net.add_duplex_link(
                    host,
                    f"r{i}",
                    bandwidth=self.access_bandwidth,
                    delay=self.access_delay,
                    queue=self.queue_packets,
                )
        install_static_routes(net)
        hosts = tuple(self.host_names())
        return Topology(
            network=net,
            kind=self.kind,
            senders=hosts,
            receivers=hosts,
        )

"""The :class:`TopologySpec` protocol: one way to build every network.

Historically each topology shipped its own ad-hoc builder function
(``build_dumbbell(spec)``, ``build_parking_lot(spec)``,
``build_multipath_mesh(spec)``) and every consumer hard-coded the node
names and bottleneck links that builder happened to create.  This module
replaces that with a single protocol:

* a *spec* is a plain dataclass of JSON scalars describing the shape
  (so it can cross process boundaries and live inside a
  :class:`~repro.scenarios.spec.ScenarioSpec`);
* ``spec.build(sim)`` constructs the network and returns a
  :class:`Topology` — the network plus *named handles*: which nodes are
  senders/receivers and which links are the engineered bottlenecks;
* ``spec.endpoints()`` answers the same sender/receiver question
  *without* building anything (the workload generator draws endpoints
  for millions of flows and must not pay for a network per query);
* a ``kind`` registry round-trips any spec through JSON
  (:func:`topology_to_jsonable` / :func:`topology_from_jsonable`).

Figure experiments and the scale-out scenario generator both construct
networks through this protocol; see ``docs/SCENARIOS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass, replace
from typing import (
    Any,
    ClassVar,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    Type,
    cast,
    runtime_checkable,
)

from repro.net.link import Link
from repro.net.network import Network
from repro.sim import Simulator


@dataclass
class Topology:
    """A built network plus the named handles consumers need.

    Attributes:
        network: The constructed :class:`~repro.net.network.Network`
            (routes installed, ready for agents).
        kind: The spec's registry kind (``"dumbbell"``, ``"fat-tree"``...).
        senders: Node names intended as traffic sources.
        receivers: Node names intended as traffic sinks.
        bottlenecks: ``"src->dst"`` names of the engineered bottleneck
            links (empty when the shape has no designated bottleneck).
    """

    network: Network
    kind: str
    senders: Tuple[str, ...]
    receivers: Tuple[str, ...]
    bottlenecks: Tuple[str, ...] = ()

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    def bottleneck_links(self) -> List[Link]:
        """Resolve :attr:`bottlenecks` to :class:`Link` objects."""
        links: List[Link] = []
        for name in self.bottlenecks:
            src, _, dst = name.partition("->")
            links.append(self.network.link(src, dst))
        return links


@runtime_checkable
class TopologySpec(Protocol):
    """Protocol every topology spec implements.

    A conforming spec is a dataclass of JSON scalars with a class-level
    ``kind`` (its registry name) and a ``seed`` field (the simulator
    master seed; any internal randomness — delay jitter, chord
    placement — derives from it via
    :class:`~repro.sim.rng.RngRegistry` streams).
    """

    kind: ClassVar[str]
    seed: int

    def build(self, sim: Optional[Simulator] = None) -> Topology:
        """Construct the network (on ``sim`` if given) with routes installed."""
        ...

    def endpoints(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """``(senders, receivers)`` node names, computed without building."""
        ...


# ----------------------------------------------------------------------
# Kind registry / JSON round-tripping
# ----------------------------------------------------------------------

_TOPOLOGY_KINDS: Dict[str, Type[Any]] = {}


def register_topology(cls: Type[Any]) -> Type[Any]:
    """Class decorator: register a spec class under its ``kind``."""
    kind = cls.kind
    existing = _TOPOLOGY_KINDS.get(kind)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"topology kind {kind!r} already registered by {existing.__name__}"
        )
    _TOPOLOGY_KINDS[kind] = cls
    return cls


def topology_kinds() -> Tuple[str, ...]:
    """The registered kinds, sorted."""
    return tuple(sorted(_TOPOLOGY_KINDS))


def topology_class(kind: str) -> Type[Any]:
    """The spec class registered under ``kind``."""
    try:
        return _TOPOLOGY_KINDS[kind]
    except KeyError:
        known = ", ".join(topology_kinds()) or "none"
        raise ValueError(
            f"unknown topology kind {kind!r} (known: {known})"
        ) from None


def topology_to_jsonable(spec: TopologySpec) -> Dict[str, Any]:
    """A spec as a flat JSON object: ``{"kind": ..., <fields>}``."""
    if not is_dataclass(spec):
        raise TypeError(f"topology spec must be a dataclass, got {spec!r}")
    payload: Dict[str, Any] = {"kind": spec.kind}
    for field_info in fields(spec):
        payload[field_info.name] = getattr(spec, field_info.name)
    return payload


def topology_from_jsonable(data: Dict[str, Any]) -> TopologySpec:
    """Rebuild a spec from its :func:`topology_to_jsonable` form."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    if not isinstance(kind, str):
        raise ValueError(f"topology payload needs a string 'kind': {data!r}")
    cls = topology_class(kind)
    return cast(TopologySpec, cls(**payload))


def topology_with_seed(spec: TopologySpec, seed: int) -> TopologySpec:
    """A copy of ``spec`` with its ``seed`` field replaced."""
    return cast(TopologySpec, replace(cast(Any, spec), seed=seed))

"""Sharded scale-out execution of one large :class:`ScenarioSpec`.

A :class:`ShardPlan` partitions a scenario's flow population into
``num_shards`` residue classes (``flow_id % num_shards``) and runs each
class as an independent :class:`~repro.exec.spec.SweepCell` on the
existing :mod:`repro.exec` process pool — inheriting its caching,
timeout/retry/keep-going failure policy, journal, and bit-identical
serial/parallel guarantee for free.

Semantics (documented in ``docs/SCENARIOS.md``): a shard is its own
simulation — flows in different shards do not share queues, so sharding
is an *approximation* that trades cross-shard contention for
parallelism.  What is exact: every shard regenerates the identical flow
population from the scenario seed (see
:mod:`repro.scenarios.workload`) and builds the identical network
structure from the topology's own seed (only the *simulator* runs under
the per-shard seed — see :func:`build_shard_network`), the partition is
a disjoint cover of the population, and for a fixed ``num_shards`` the
merged result is bit-identical whether the shards run serially or
across workers.

Bounded memory is the other contract.  Inside a shard, flows are
*admitted* lazily from the workload generator at their start times and
*retired* by a periodic sim-time reaper once fully delivered (their
per-flow record is streamed to the shard's
:class:`~repro.obs.export.JsonlAppender` and the agents are
deregistered), so resident state tracks the live population — not
everything that ever ran — and per-flow results are never assembled in
memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, ClassVar, Dict, Iterator, List, Mapping, Optional

from repro.app.bulk import BulkTransfer
from repro.core.pr import PrConfig
from repro.exec.runner import ResultCache, run_sweep
from repro.exec.spec import ExperimentSpec, Scale, SweepCell
from repro.net.network import Network
from repro.obs import maybe_observe
from repro.obs.export import JsonlAppender
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.workload import FlowSpec
from repro.sim import Simulator
from repro.sim.rng import derive_child_seed
from repro.tcp.base import TcpConfig
from repro.topologies.base import Topology
from repro.util.units import MBPS

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

#: Importable path of the shard cell function (see :class:`SweepCell`).
CELL_FUNC = "repro.scenarios.shard:run_shard_cell"

#: Slow-start cap applied to every scenario flow (segments); without it
#: the first slow-start of a long flow on a fat path overshoots by
#: hundreds of segments (see fig6's DEFAULT_INITIAL_SSTHRESH).
SCENARIO_INITIAL_SSTHRESH = 128.0


def _max_rss_kb() -> int:
    """This process's peak RSS in KiB (0 where rusage is unavailable)."""
    if resource is None:
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class _ShardDriver:
    """Lazy admission + reaping of one shard's flows inside a simulation.

    Holds the shard's slice of the workload generator; an admission
    event chain constructs each :class:`BulkTransfer` at its start time
    and a periodic reaper retires completed flows (streams their record,
    deregisters their agents) so live state stays bounded.
    """

    def __init__(
        self,
        network: Network,
        flows: Iterator[FlowSpec],
        appender: Optional[JsonlAppender],
        cell: str,
        reap_interval: float,
    ) -> None:
        self.network = network
        self.sim = network.sim
        self.cell = cell
        self.reap_interval = reap_interval
        self._flows = flows
        self._pending: Optional[FlowSpec] = next(flows, None)
        self._appender = appender
        self.active: Dict[int, BulkTransfer] = {}
        self._sizes: Dict[int, Optional[int]] = {}
        self._starts: Dict[int, float] = {}
        self._admitted: Dict[int, float] = {}
        self.admitted = 0
        self.completed = 0
        self.delivered_segments = 0
        self.delivered_bytes = 0
        self.per_variant: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the admission chain and the reaper.

        Both arms are posted as one batch.  The admission chain stays
        lazy on purpose — one pending event per distinct start time, so
        the flow iterator is never drained ahead of the clock and live
        heap state stays bounded; the genuinely block-shaped schedules
        (trace-replay injection) use :meth:`Simulator.post_batch` with
        their full event list instead.
        """
        events = []
        if self._pending is not None:
            events.append((self._pending.start, self._admit, None, ""))
        if self.reap_interval > 0:
            events.append(
                (self.sim.now + self.reap_interval, self._reap_tick, None, "")
            )
        if events:
            self.sim.post_batch(events)

    def _admit(self) -> None:
        now = self.sim.now
        while self._pending is not None and self._pending.start <= now:
            flow_spec = self._pending
            self._pending = next(self._flows, None)
            if (
                self._pending is not None
                and self._pending.start < flow_spec.start
            ):
                # The admission chain schedules one event per distinct
                # start time, so an unsorted stream would silently admit
                # flows late; generate_flows guarantees sorted order in
                # both arrival modes — fail loudly if that breaks.
                raise ValueError(
                    f"flow stream not sorted by start time: flow "
                    f"{self._pending.flow_id} starts at "
                    f"{self._pending.start} after flow "
                    f"{flow_spec.flow_id} at {flow_spec.start}"
                )
            size = flow_spec.size_segments
            flow = BulkTransfer(
                self.network,
                flow_spec.variant,
                flow_spec.src,
                flow_spec.dst,
                flow_id=flow_spec.flow_id,
                start_at=now,
                tcp_config=TcpConfig(
                    total_segments=size,
                    initial_ssthresh=SCENARIO_INITIAL_SSTHRESH,
                ),
                pr_config=PrConfig(
                    total_segments=size,
                    initial_ssthresh=SCENARIO_INITIAL_SSTHRESH,
                ),
            )
            maybe_observe(flow)
            self.active[flow_spec.flow_id] = flow
            self._sizes[flow_spec.flow_id] = size
            self._starts[flow_spec.flow_id] = flow_spec.start
            self._admitted[flow_spec.flow_id] = now
            self.admitted += 1
            stats = self.per_variant.setdefault(
                flow.variant,
                {"flows": 0, "completed": 0, "delivered_segments": 0},
            )
            stats["flows"] += 1
        if self._pending is not None:
            self.sim.post(self._pending.start, self._admit)

    # ------------------------------------------------------------------
    def _reap_tick(self) -> None:
        done = [
            flow_id
            for flow_id, flow in self.active.items()
            if flow.sender.done
        ]
        for flow_id in done:
            self._retire(flow_id)
        if self.active or self._pending is not None:
            self.sim.post_in(self.reap_interval, self._reap_tick)

    def _retire(self, flow_id: int) -> None:
        """Record and release one flow (its agents leave every registry)."""
        flow = self.active.pop(flow_id)
        completed = bool(flow.sender.done)
        delivered = flow.delivered_segments
        self.delivered_segments += delivered
        self.delivered_bytes += flow.delivered_bytes()
        stats = self.per_variant[flow.variant]
        stats["delivered_segments"] += delivered
        if completed:
            self.completed += 1
            stats["completed"] += 1
        if self._appender is not None:
            self._appender.write(
                {
                    "record": "flow",
                    "cell": self.cell,
                    "flow_id": flow_id,
                    "variant": flow.variant,
                    "src": flow.src,
                    "dst": flow.dst,
                    "start": self._starts.pop(flow_id),
                    "admitted": self._admitted.pop(flow_id),
                    "size_segments": self._sizes.pop(flow_id),
                    "delivered_segments": delivered,
                    "completed": completed,
                    "finish_time": self.sim.now,
                }
            )
        else:
            self._starts.pop(flow_id)
            self._admitted.pop(flow_id)
            self._sizes.pop(flow_id)
        for agent in (flow.sender, flow.receiver):
            agent.node.agents.pop(flow_id, None)
            self.sim.deregister_component(
                f"agent:{agent.node.name}/f{flow_id}"
            )

    def finish(self) -> None:
        """Retire whatever is still live at the end of the horizon."""
        for flow_id in sorted(self.active):
            self._retire(flow_id)


def build_shard_network(spec: ScenarioSpec, sim_seed: int) -> Topology:
    """Build a shard's network: spec-seeded structure, shard-seeded sim.

    The topology is built from ``spec.topology`` *unchanged*, so its
    structural randomness (chord placement, per-link delay draws) comes
    from the spec's own seed and every shard — and every ``num_shards``
    setting — simulates the identical graph the spec describes.  Only
    the :class:`~repro.sim.Simulator` (runtime streams: loss, multipath
    hashing, jitter) runs under the per-shard ``sim_seed``.
    """
    return spec.topology.build(Simulator(seed=sim_seed))


def run_shard_cell(
    *,
    scenario: Dict[str, Any],
    shard_index: int,
    num_shards: int,
    stream_path: Optional[str] = None,
    reap_interval: float = 1.0,
    seed: int,
) -> Dict[str, Any]:
    """One shard of a scenario: build, admit, run, stream, summarize.

    ``scenario`` arrives in its JSON form (cells are plain data for the
    cache and the process boundary).  The flow population is regenerated
    from the *scenario* seed and filtered to ``flow_id % num_shards ==
    shard_index``; the simulator itself runs under the per-shard
    ``seed`` the plan derived, while the topology's *structural* streams
    (wan-mesh chords and delay draws, fat-tree jitter) stay under the
    spec's own seed — every shard simulates the identical graph the
    saved scenario describes.  Returns a JSON-able shard summary.

    Note: a cache hit on this cell returns the summary *without*
    re-writing the per-flow stream — run with caching disabled when the
    stream file is the product.  Per-flow records stream as the shard
    runs, so a shard that dies and is *retried* re-appends the records
    it already wrote (dedupe on ``(cell, flow_id)`` keeping the last
    occurrence, or run with ``retries=0`` when the stream is the
    product).
    """
    spec = ScenarioSpec.from_jsonable(scenario)
    if not 0 <= shard_index < num_shards:
        raise ValueError(
            f"shard_index {shard_index} out of range for {num_shards} shards"
        )
    topology = build_shard_network(spec, seed)
    network = topology.network
    maybe_observe(network)

    cell = f"shard/{shard_index}"
    flows = (
        flow for flow in spec.flows() if flow.flow_id % num_shards == shard_index
    )
    appender = (
        JsonlAppender(
            stream_path,
            scenario=spec.name,
            command="scale",
        )
        if stream_path
        else None
    )
    try:
        driver = _ShardDriver(
            network, flows, appender, cell, reap_interval=reap_interval
        )
        driver.start()
        network.run(until=spec.duration)
        driver.finish()
        summary: Dict[str, Any] = {
            "shard_index": shard_index,
            "num_shards": num_shards,
            "flows": driver.admitted,
            "completed": driver.completed,
            "delivered_segments": driver.delivered_segments,
            "delivered_bytes": driver.delivered_bytes,
            "goodput_mbps": (
                driver.delivered_bytes * 8.0 / spec.duration / MBPS
            ),
            "per_variant": driver.per_variant,
            "drops": network.total_drops(),
            "dead_letters": network.dead_letters(),
            "live_agents": sum(
                len(node.agents) for node in network.nodes.values()
            ),
            "max_rss_kb": _max_rss_kb(),
        }
        if appender is not None:
            appender.write({"record": "shard", "cell": cell, **summary})
        return summary
    finally:
        if appender is not None:
            appender.close()


@dataclass
class ScenarioReport:
    """Merged outcome of a sharded scenario run."""

    scenario: str
    num_shards: int
    duration: float
    flows: int
    completed: int
    delivered_segments: int
    delivered_bytes: int
    goodput_mbps: float
    per_variant: Dict[str, Dict[str, int]]
    drops: int
    dead_letters: int
    max_rss_kb: int
    failed_shards: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.failed_shards

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "num_shards": self.num_shards,
            "duration": self.duration,
            "flows": self.flows,
            "completed": self.completed,
            "delivered_segments": self.delivered_segments,
            "delivered_bytes": self.delivered_bytes,
            "goodput_mbps": self.goodput_mbps,
            "per_variant": self.per_variant,
            "drops": self.drops,
            "dead_letters": self.dead_letters,
            "max_rss_kb": self.max_rss_kb,
            "failed_shards": list(self.failed_shards),
        }


@dataclass(frozen=True)
class ShardPlan(ExperimentSpec):
    """A scenario exploded into per-flow-group shard cells.

    ``stream_path`` (optional) is where every shard appends its
    ``repro.obs/v1`` flow records; concurrent shards share the file
    safely through :class:`~repro.obs.export.JsonlAppender`'s atomic
    appends.  ``reap_interval`` is the sim-time period of the in-shard
    flow reaper.

    Two stream caveats under the executor's failure policy (see
    ``docs/SCENARIOS.md``): a shard killed mid-append can leave one torn
    partial line that a *concurrent* live writer then extends into a
    corrupt mid-file record (``recover_jsonl_tail`` only repairs the
    tail — read such streams with ``read_jsonl(path,
    on_invalid="skip")``), and a retried shard re-appends the flow
    records it streamed before dying (dedupe on ``(cell, flow_id)``, or
    run with ``retries=0`` when the stream is the product).
    """

    name: ClassVar[str] = "scale"
    SCALE_PRESETS: ClassVar[Mapping[Scale, Mapping[str, Any]]] = {}

    scenario: ScenarioSpec = field(
        default_factory=lambda: ScenarioSpec(
            topology=_default_topology(), workload=_default_workload()
        )
    )
    num_shards: int = 1
    stream_path: Optional[str] = None
    reap_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.reap_interval <= 0:
            raise ValueError(
                f"reap_interval must be positive, got {self.reap_interval}"
            )

    @property
    def seed(self) -> int:
        """The master seed is the scenario's (one source of truth)."""
        return self.scenario.seed

    def with_seed(self, seed: "int | None") -> "ShardPlan":
        if seed is None:
            return self
        return replace(self, scenario=self.scenario.with_seed(seed))

    def shard_seed(self, index: int) -> int:
        """Deterministic per-shard simulator seed."""
        return derive_child_seed(self.scenario.seed, f"{self.name}/shard/{index}")

    def cells(self) -> List[SweepCell]:
        payload = self.scenario.to_jsonable()
        return [
            SweepCell(
                key=f"shard/{index}",
                func=CELL_FUNC,
                params={
                    "scenario": payload,
                    "shard_index": index,
                    "num_shards": self.num_shards,
                    "stream_path": self.stream_path,
                    "reap_interval": self.reap_interval,
                },
                seed=self.shard_seed(index),
            )
            for index in range(self.num_shards)
        ]

    def assemble(self, results: Mapping[Any, Any]) -> ScenarioReport:
        return self.assemble_partial(results, {})

    def assemble_partial(
        self, results: Mapping[Any, Any], errors: Mapping[Any, Any]
    ) -> ScenarioReport:
        """Merge shard summaries; failed shards become report holes."""
        per_variant: Dict[str, Dict[str, int]] = {}
        flows = completed = segments = delivered = drops = dead = 0
        max_rss = 0
        for key in sorted(results, key=str):
            summary = results[key]
            flows += int(summary["flows"])
            completed += int(summary["completed"])
            segments += int(summary["delivered_segments"])
            delivered += int(summary["delivered_bytes"])
            drops += int(summary["drops"])
            dead += int(summary["dead_letters"])
            max_rss = max(max_rss, int(summary.get("max_rss_kb", 0)))
            for variant, stats in summary["per_variant"].items():
                merged = per_variant.setdefault(
                    variant,
                    {"flows": 0, "completed": 0, "delivered_segments": 0},
                )
                for field_name, value in stats.items():
                    merged[field_name] = merged.get(field_name, 0) + int(value)
        return ScenarioReport(
            scenario=self.scenario.name,
            num_shards=self.num_shards,
            duration=self.scenario.duration,
            flows=flows,
            completed=completed,
            delivered_segments=segments,
            delivered_bytes=delivered,
            goodput_mbps=delivered * 8.0 / self.scenario.duration / MBPS,
            per_variant=per_variant,
            drops=drops,
            dead_letters=dead,
            max_rss_kb=max_rss,
            failed_shards=sorted(str(key) for key in errors),
        )


def _default_topology() -> Any:
    from repro.topologies.dumbbell import DumbbellSpec

    return DumbbellSpec(num_pairs=1)


def _default_workload() -> Any:
    from repro.scenarios.workload import WorkloadSpec

    return WorkloadSpec(arrival="fixed", flow_count=4, size="fixed",
                        mean_size_segments=50.0)


def run_scale(
    plan: ShardPlan,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    seed: Optional[int] = None,
    **exec_options: Any,
) -> ScenarioReport:
    """Run a sharded scenario through the sweep executor.

    When the plan streams per-flow records, the target file is created
    (with its header) before the fan-out so concurrent shards only ever
    append.  Extra keyword arguments (``runner``, ``timeout``,
    ``retries``, ``keep_going``) forward to
    :func:`~repro.exec.runner.run_sweep`.
    """
    if plan.stream_path:
        JsonlAppender(
            plan.stream_path, scenario=plan.scenario.name, command="scale"
        ).close()
    report = run_sweep(plan, jobs=jobs, cache=cache, seed=seed, **exec_options)
    assert isinstance(report, ScenarioReport)
    return report


def format_scale(report: ScenarioReport) -> str:
    """Human-readable summary of a :class:`ScenarioReport`."""
    lines = [
        f"Scenario {report.scenario!r}: {report.flows} flows over "
        f"{report.num_shards} shard(s), {report.duration:g} s horizon",
        f"  completed {report.completed}/{report.flows} flows, "
        f"delivered {report.delivered_segments} segments "
        f"({report.goodput_mbps:.2f} Mbps aggregate)",
        f"  drops {report.drops}, dead letters {report.dead_letters}, "
        f"peak worker RSS {report.max_rss_kb} KiB",
    ]
    for variant in sorted(report.per_variant):
        stats = report.per_variant[variant]
        lines.append(
            f"  {variant:>9}: flows={stats['flows']} "
            f"completed={stats['completed']} "
            f"segments={stats['delivered_segments']}"
        )
    if report.failed_shards:
        lines.append(f"  FAILED shards: {', '.join(report.failed_shards)}")
    return "\n".join(lines)

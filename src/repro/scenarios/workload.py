"""Declarative workload generation: flow arrivals, sizes, variant mix.

A :class:`WorkloadSpec` describes a *population* of flows — how they
arrive (Poisson churn or a fixed staggered batch), how big they are
(Pareto heavy tail, lognormal, fixed, or infinite bulk), and which TCP
variant each one runs — without naming any endpoints.
:func:`generate_flows` materializes the population against a topology's
``(senders, receivers)`` endpoint lists as a *lazy* stream of
:class:`FlowSpec` records.

Determinism is the whole point: every draw comes from named
:class:`~repro.sim.rng.RngRegistry` streams of one master seed, so the
same ``(spec, endpoints, duration, seed)`` always yields the identical
flow sequence — in any process, on any worker.  Shards regenerate the
full sequence and keep only their residue class of ``flow_id``
(see :mod:`repro.scenarios.shard`), which guarantees every shard agrees
on the global population without ever shipping it across a boundary.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from repro.sim.rng import RngRegistry
from repro.tcp.registry import canonical_name

#: Supported arrival processes.
ARRIVAL_MODES: Tuple[str, ...] = ("poisson", "fixed")
#: Supported flow-size distributions (``"bulk"`` = infinite flows).
SIZE_DISTRIBUTIONS: Tuple[str, ...] = ("pareto", "lognormal", "fixed", "bulk")


@dataclass(frozen=True)
class FlowSpec:
    """One generated flow: identity, endpoints, variant, start, size.

    ``size_segments`` is ``None`` for an infinite bulk flow (it sends
    until the scenario ends).
    """

    flow_id: int
    src: str
    dst: str
    variant: str
    start: float
    size_segments: Optional[int]

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "flow_id": self.flow_id,
            "src": self.src,
            "dst": self.dst,
            "variant": self.variant,
            "start": self.start,
            "size_segments": self.size_segments,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "FlowSpec":
        return cls(
            flow_id=int(data["flow_id"]),
            src=str(data["src"]),
            dst=str(data["dst"]),
            variant=str(data["variant"]),
            start=float(data["start"]),
            size_segments=(
                None
                if data.get("size_segments") is None
                else int(data["size_segments"])
            ),
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a flow population (pure data, JSON-round-trippable).

    Attributes:
        arrival: ``"poisson"`` (open-loop churn at ``arrival_rate``
            flows/second for the scenario duration) or ``"fixed"``
            (exactly ``flow_count`` flows, starts uniform over
            ``start_stagger`` seconds).
        arrival_rate: Poisson arrival intensity (flows/second).
        flow_count: Population size in ``"fixed"`` mode.
        start_stagger: Start-time spread in ``"fixed"`` mode (seconds);
            must not exceed the scenario duration the population is
            generated against.
        max_flows: Hard cap on generated flows (``None`` = unlimited;
            Poisson mode otherwise generates ``rate * duration`` in
            expectation).
        size: Flow-size distribution — ``"pareto"`` (heavy tail),
            ``"lognormal"``, ``"fixed"``, or ``"bulk"`` (every flow
            infinite, size ``None``).
        mean_size_segments: Target mean flow size (segments).
        pareto_shape: Pareto tail index (> 1 so the mean exists;
            web-like workloads use 1.1-1.5).
        lognormal_sigma: Lognormal shape parameter.
        min_size_segments: Floor applied to every drawn size.
        variant_mix: ``((variant, weight), ...)`` — each flow's TCP
            variant is drawn from this (normalized) distribution.
    """

    arrival: str = "poisson"
    arrival_rate: float = 10.0
    flow_count: int = 8
    start_stagger: float = 2.0
    max_flows: Optional[int] = None
    size: str = "pareto"
    mean_size_segments: float = 100.0
    pareto_shape: float = 1.3
    lognormal_sigma: float = 1.0
    min_size_segments: int = 1
    variant_mix: Tuple[Tuple[str, float], ...] = (("tcp-pr", 1.0),)

    def __post_init__(self) -> None:
        # JSON round-trips deliver lists; freeze back to tuples so specs
        # stay hashable/comparable.
        object.__setattr__(
            self,
            "variant_mix",
            tuple((str(name), float(weight)) for name, weight in self.variant_mix),
        )
        self.validate()

    def validate(self) -> None:
        if self.arrival not in ARRIVAL_MODES:
            raise ValueError(
                f"arrival must be one of {ARRIVAL_MODES}, got {self.arrival!r}"
            )
        if self.size not in SIZE_DISTRIBUTIONS:
            raise ValueError(
                f"size must be one of {SIZE_DISTRIBUTIONS}, got {self.size!r}"
            )
        if self.arrival == "poisson" and self.arrival_rate <= 0:
            raise ValueError(
                f"arrival_rate must be positive, got {self.arrival_rate}"
            )
        if self.arrival == "fixed" and self.flow_count < 1:
            raise ValueError(f"flow_count must be >= 1, got {self.flow_count}")
        if self.start_stagger < 0:
            raise ValueError(
                f"start_stagger must be >= 0, got {self.start_stagger}"
            )
        if self.max_flows is not None and self.max_flows < 0:
            raise ValueError(f"max_flows must be >= 0, got {self.max_flows}")
        if self.size in ("pareto", "lognormal", "fixed"):
            if self.mean_size_segments < 1:
                raise ValueError(
                    f"mean_size_segments must be >= 1, got "
                    f"{self.mean_size_segments}"
                )
        if self.size == "pareto" and self.pareto_shape <= 1.0:
            raise ValueError(
                f"pareto_shape must be > 1 (finite mean), got "
                f"{self.pareto_shape}"
            )
        if self.lognormal_sigma <= 0:
            raise ValueError(
                f"lognormal_sigma must be positive, got {self.lognormal_sigma}"
            )
        if self.min_size_segments < 1:
            raise ValueError(
                f"min_size_segments must be >= 1, got {self.min_size_segments}"
            )
        if not self.variant_mix:
            raise ValueError("variant_mix must name at least one variant")
        for name, weight in self.variant_mix:
            canonical_name(name)  # raises on unknown variants
            if weight < 0:
                raise ValueError(f"negative weight for variant {name!r}")
        if not any(weight > 0 for _, weight in self.variant_mix):
            raise ValueError("variant_mix weights sum to zero")

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "arrival": self.arrival,
            "arrival_rate": self.arrival_rate,
            "flow_count": self.flow_count,
            "start_stagger": self.start_stagger,
            "max_flows": self.max_flows,
            "size": self.size,
            "mean_size_segments": self.mean_size_segments,
            "pareto_shape": self.pareto_shape,
            "lognormal_sigma": self.lognormal_sigma,
            "min_size_segments": self.min_size_segments,
            "variant_mix": [list(pair) for pair in self.variant_mix],
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "WorkloadSpec":
        payload = dict(data)
        payload["variant_mix"] = tuple(
            (str(name), float(weight)) for name, weight in payload["variant_mix"]
        )
        if payload.get("max_flows") is not None:
            payload["max_flows"] = int(payload["max_flows"])
        return cls(**payload)


@dataclass
class _FlowDraws:
    """The per-flow RNG streams, in one place so draw order is fixed."""

    arrivals: random.Random
    sizes: random.Random
    variants: random.Random
    endpoints: random.Random
    cumulative_mix: Tuple[Tuple[str, float], ...] = field(default=())


def _cumulative_mix(spec: WorkloadSpec) -> Tuple[Tuple[str, float], ...]:
    total = sum(weight for _, weight in spec.variant_mix)
    out = []
    running = 0.0
    for name, weight in spec.variant_mix:
        running += weight / total
        out.append((canonical_name(name), running))
    return tuple(out)


def _draw_variant(draws: _FlowDraws) -> str:
    u = draws.variants.random()
    for name, boundary in draws.cumulative_mix:
        if u <= boundary:
            return name
    return draws.cumulative_mix[-1][0]


def _draw_size(spec: WorkloadSpec, draws: _FlowDraws) -> Optional[int]:
    if spec.size == "bulk":
        return None
    if spec.size == "fixed":
        return max(spec.min_size_segments, round(spec.mean_size_segments))
    if spec.size == "pareto":
        # Scale xm so the distribution's mean is mean_size_segments:
        # E[xm * Pareto(shape)] = xm * shape / (shape - 1).
        xm = spec.mean_size_segments * (spec.pareto_shape - 1) / spec.pareto_shape
        value = xm * draws.sizes.paretovariate(spec.pareto_shape)
    else:  # lognormal
        mu = (
            math.log(spec.mean_size_segments)
            - spec.lognormal_sigma * spec.lognormal_sigma / 2.0
        )
        value = draws.sizes.lognormvariate(mu, spec.lognormal_sigma)
    return max(spec.min_size_segments, round(value))


def _draw_endpoints(
    senders: Sequence[str], receivers: Sequence[str], draws: _FlowDraws
) -> Tuple[str, str]:
    src = senders[draws.endpoints.randrange(len(senders))]
    dst = receivers[draws.endpoints.randrange(len(receivers))]
    if dst == src and len(receivers) > 1:
        while dst == src:
            dst = receivers[draws.endpoints.randrange(len(receivers))]
    return src, dst


def generate_flows(
    spec: WorkloadSpec,
    senders: Sequence[str],
    receivers: Sequence[str],
    duration: float,
    seed: int,
    first_flow_id: int = 1,
) -> Iterator[FlowSpec]:
    """Lazily yield the deterministic flow population.

    Flow ids are assigned sequentially from ``first_flow_id`` in arrival
    order; shard partitioning keys off them.  In *both* arrival modes
    flows are yielded with non-decreasing ``start`` times (Poisson by
    construction, fixed by sorting the drawn starts) — the shard
    driver's lazy admission chain depends on this.  All randomness comes
    from named streams of ``RngRegistry(seed)``, so the sequence is
    identical across processes.  The only degenerate endpoint case — a
    single node that is both the sole sender and sole receiver — is
    rejected, as is a fixed-mode ``start_stagger`` beyond ``duration``
    (such flows would fall outside the simulated horizon).
    """
    spec.validate()
    if spec.arrival == "fixed" and spec.start_stagger > duration:
        raise ValueError(
            f"start_stagger ({spec.start_stagger}) exceeds the scenario "
            f"duration ({duration}): flows starting past the horizon "
            f"would never run"
        )
    if not senders or not receivers:
        raise ValueError("topology has no endpoints to generate flows over")
    if len(senders) == 1 and len(receivers) == 1 and senders[0] == receivers[0]:
        raise ValueError(
            f"sole sender and receiver are the same node {senders[0]!r}"
        )
    registry = RngRegistry(seed)
    draws = _FlowDraws(
        arrivals=registry.stream("workload/arrivals"),
        sizes=registry.stream("workload/sizes"),
        variants=registry.stream("workload/variants"),
        endpoints=registry.stream("workload/endpoints"),
        cumulative_mix=_cumulative_mix(spec),
    )

    def make_flow(flow_id: int, start: float) -> FlowSpec:
        src, dst = _draw_endpoints(senders, receivers, draws)
        return FlowSpec(
            flow_id=flow_id,
            src=src,
            dst=dst,
            variant=_draw_variant(draws),
            start=start,
            size_segments=_draw_size(spec, draws),
        )

    if spec.arrival == "fixed":
        count = spec.flow_count
        if spec.max_flows is not None:
            count = min(count, spec.max_flows)
        # Draw every start, then yield in sorted-start order: consumers
        # (the shard driver's admission chain) rely on a non-decreasing
        # start sequence, and ids stay sequential in arrival order.
        starts = sorted(
            draws.arrivals.uniform(0.0, spec.start_stagger)
            if spec.start_stagger > 0
            else 0.0
            for _ in range(count)
        )
        for i, start in enumerate(starts):
            yield make_flow(first_flow_id + i, start)
        return

    # Poisson arrivals over [0, duration).
    flow_id = first_flow_id
    now = 0.0
    while True:
        if spec.max_flows is not None and flow_id - first_flow_id >= spec.max_flows:
            return
        now += draws.arrivals.expovariate(spec.arrival_rate)
        if now >= duration:
            return
        yield make_flow(flow_id, now)
        flow_id += 1


def count_flows(
    spec: WorkloadSpec,
    senders: Sequence[str],
    receivers: Sequence[str],
    duration: float,
    seed: int,
) -> int:
    """The exact population size (walks the generator; O(n) draws)."""
    return sum(
        1 for _ in generate_flows(spec, senders, receivers, duration, seed)
    )

"""Declarative scale-out scenarios: topology × workload → sharded runs.

``repro.scenarios`` is the scale-out layer on top of the figure
harness: a :class:`ScenarioSpec` declares *what* to simulate (any
registered :class:`~repro.topologies.base.TopologySpec` plus a
:class:`WorkloadSpec` flow population) as pure JSON-able data, and a
:class:`ShardPlan` declares *how* to run it — partitioned into
per-flow-group shards across the :mod:`repro.exec` worker pool, with
per-flow results streamed incrementally as ``repro.obs/v1`` JSONL so
memory stays bounded by the live flow population.

See ``docs/SCENARIOS.md`` for the spec schema, the seed-derivation
table, and the exact semantics (and caveats) of sharding.
"""

from repro.scenarios.shard import (
    CELL_FUNC,
    ScenarioReport,
    ShardPlan,
    format_scale,
    run_scale,
    run_shard_cell,
)
from repro.scenarios.spec import SCENARIO_SCHEMA, ScenarioSpec
from repro.scenarios.workload import (
    ARRIVAL_MODES,
    SIZE_DISTRIBUTIONS,
    FlowSpec,
    WorkloadSpec,
    count_flows,
    generate_flows,
)

__all__ = [
    "ARRIVAL_MODES",
    "CELL_FUNC",
    "FlowSpec",
    "SCENARIO_SCHEMA",
    "SIZE_DISTRIBUTIONS",
    "ScenarioReport",
    "ScenarioSpec",
    "ShardPlan",
    "WorkloadSpec",
    "count_flows",
    "format_scale",
    "generate_flows",
    "run_scale",
    "run_shard_cell",
]

"""The declarative :class:`ScenarioSpec`: topology × workload × horizon.

One JSON-round-trippable object describes an entire experiment
population: which network to build (any registered
:class:`~repro.topologies.base.TopologySpec` kind), which flows to run
over it (a :class:`~repro.scenarios.workload.WorkloadSpec`), for how
long, under which master seed.  Everything downstream — figure
experiments, the sharded scale-out executor, traces, checkpoints —
speaks this one vocabulary.

Seed derivation (see ``docs/SCENARIOS.md`` for the full table): the
flow population is drawn from ``derive_child_seed(seed,
"scenario/workload")`` — a function of the *scenario* seed only, so
every shard of a sharded run agrees on the identical population — while
each shard's simulator runs under its own
``derive_child_seed(seed, "scale/shard/{i}")``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, Iterator, Union

from repro.scenarios.workload import (
    FlowSpec,
    WorkloadSpec,
    count_flows,
    generate_flows,
)
from repro.sim.rng import derive_child_seed
from repro.topologies.base import (
    TopologySpec,
    topology_from_jsonable,
    topology_to_jsonable,
)

#: Schema identifier written into saved scenario files.
SCENARIO_SCHEMA = "repro.scenario/v1"

#: The stream label the flow population is derived under.
WORKLOAD_SEED_LABEL = "scenario/workload"


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, self-describing experiment population (pure data)."""

    topology: TopologySpec
    workload: WorkloadSpec
    duration: float = 30.0
    seed: int = 0
    name: str = "scenario"

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if (
            self.workload.arrival == "fixed"
            and self.workload.start_stagger > self.duration
        ):
            raise ValueError(
                f"workload start_stagger ({self.workload.start_stagger}) "
                f"exceeds the scenario duration ({self.duration}): flows "
                f"starting past the horizon would never run"
            )

    # ------------------------------------------------------------------
    # The flow population
    # ------------------------------------------------------------------
    def workload_seed(self) -> int:
        """The derived seed the flow population is generated under."""
        return derive_child_seed(self.seed, WORKLOAD_SEED_LABEL)

    def flows(self) -> Iterator[FlowSpec]:
        """Lazily yield the full deterministic flow population."""
        senders, receivers = self.topology.endpoints()
        return generate_flows(
            self.workload,
            senders,
            receivers,
            self.duration,
            self.workload_seed(),
        )

    def flow_count(self) -> int:
        """Exact population size (walks the generator once)."""
        senders, receivers = self.topology.endpoints()
        return count_flows(
            self.workload,
            senders,
            receivers,
            self.duration,
            self.workload_seed(),
        )

    def with_seed(self, seed: int) -> "ScenarioSpec":
        return replace(self, seed=seed)

    # ------------------------------------------------------------------
    # JSON round-tripping
    # ------------------------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "schema": SCENARIO_SCHEMA,
            "name": self.name,
            "seed": self.seed,
            "duration": self.duration,
            "topology": topology_to_jsonable(self.topology),
            "workload": self.workload.to_jsonable(),
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        schema = data.get("schema", SCENARIO_SCHEMA)
        if schema != SCENARIO_SCHEMA:
            raise ValueError(
                f"unsupported scenario schema {schema!r} "
                f"(expected {SCENARIO_SCHEMA!r})"
            )
        return cls(
            topology=topology_from_jsonable(data["topology"]),
            workload=WorkloadSpec.from_jsonable(data["workload"]),
            duration=float(data.get("duration", 30.0)),
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "scenario")),
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the spec as indented JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_jsonable(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ScenarioSpec":
        """Read a spec saved by :meth:`save`."""
        return cls.from_jsonable(json.loads(Path(path).read_text()))

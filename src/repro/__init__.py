"""Reproduction of "TCP-PR: TCP for Persistent Packet Reordering"
(Bohacek, Hespanha, Lee, Lim, Obraczka — ICDCS 2003).

The package bundles:

* a packet-level discrete-event network simulator (:mod:`repro.sim`,
  :mod:`repro.net`) standing in for ns-2;
* the ε-parameterized multipath routing family and route-flap models
  that generate persistent reordering (:mod:`repro.routing`);
* TCP-PR itself (:mod:`repro.core`) plus every baseline the paper
  compares against — Reno, NewReno, SACK, TD-FR, and the DSACK-based
  dupthresh-mitigation variants (:mod:`repro.tcp`);
* topology builders, traffic sources, metrics, the unified
  observability layer, and the experiment harness that regenerates each
  of the paper's figures (:mod:`repro.topologies`, :mod:`repro.app`,
  :mod:`repro.analysis`, :mod:`repro.obs`, :mod:`repro.experiments`).

Quickstart::

    from repro import BulkTransfer, Network, install_shortest_path_routes

    net = Network(seed=1)
    net.add_nodes("a", "b")
    net.add_duplex_link("a", "b", bandwidth=10e6, delay=0.01)
    install_shortest_path_routes(net)
    flow = BulkTransfer(net, "tcp-pr", "a", "b", flow_id=1)
    net.run(until=10.0)
    print(flow.throughput_bps(10.0) / 1e6, "Mbps")
"""

from repro.analysis import (
    coefficient_of_variation,
    jain_index,
    mean_normalized_throughput,
    normalized_throughputs,
)
from repro.app import BulkTransfer, OnOffSource
from repro.core import MaxRttEstimator, PrConfig, TcpPrSender
from repro.net import Network, Packet
from repro.routing import (
    EpsilonMultipathPolicy,
    RouteFlapper,
    discover_paths,
    install_shortest_path_routes,
)
from repro.sim import Simulator
from repro.tcp import (
    TcpConfig,
    TcpReceiver,
    available_variants,
    make_sender,
)
from repro.topologies import (
    DumbbellSpec,
    FatTreeSpec,
    MultipathMeshSpec,
    ParkingLotSpec,
    Topology,
    TopologySpec,
    WanMeshSpec,
    build_dumbbell,
    build_multipath_mesh,
    build_parking_lot,
)
from repro.obs import (
    CwndMonitor,
    FlowThroughputMonitor,
    Instrumentation,
    MetricsRegistry,
    PacketTracer,
    QueueMonitor,
    observe,
)

__version__ = "1.0.0"

__all__ = [
    "BulkTransfer",
    "CwndMonitor",
    "DumbbellSpec",
    "EpsilonMultipathPolicy",
    "FatTreeSpec",
    "FlowThroughputMonitor",
    "Instrumentation",
    "MaxRttEstimator",
    "MetricsRegistry",
    "MultipathMeshSpec",
    "Network",
    "OnOffSource",
    "Packet",
    "PacketTracer",
    "ParkingLotSpec",
    "PrConfig",
    "QueueMonitor",
    "RouteFlapper",
    "Simulator",
    "TcpConfig",
    "TcpPrSender",
    "TcpReceiver",
    "Topology",
    "TopologySpec",
    "WanMeshSpec",
    "available_variants",
    "build_dumbbell",
    "build_multipath_mesh",
    "build_parking_lot",
    "coefficient_of_variation",
    "discover_paths",
    "install_shortest_path_routes",
    "jain_index",
    "make_sender",
    "mean_normalized_throughput",
    "normalized_throughputs",
    "observe",
    "__version__",
]

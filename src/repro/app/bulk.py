"""Bulk-transfer (FTP-like) flows: a sender/receiver pair in one object.

Every experiment in the paper uses long-lived bulk TCP flows; this helper
wires a sender variant and a receiver together over a network and exposes
the throughput accounting the analysis layer needs.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.pr import PrConfig, TcpPrSender
from repro.net.network import Network
from repro.tcp.base import TcpConfig, TcpSenderBase
from repro.tcp.receiver import TcpReceiver
from repro.tcp.registry import canonical_name, make_sender

Sender = Union[TcpSenderBase, TcpPrSender]


class BulkTransfer:
    """A one-directional bulk TCP flow between two nodes.

    Args:
        network: The network to attach to.
        variant: TCP variant name (see :func:`repro.tcp.registry.make_sender`).
        src: Sender node name.
        dst: Receiver node name.
        flow_id: Unique flow identifier.
        start_at: Simulation time at which the sender starts.
        tcp_config / pr_config: Variant configuration.
        receiver_sack / receiver_dsack: Receiver option switches.

    Attributes:
        sender: The sender agent.
        receiver: The receiver agent.
    """

    def __init__(
        self,
        network: Network,
        variant: str,
        src: str,
        dst: str,
        flow_id: int,
        start_at: float = 0.0,
        tcp_config: Optional[TcpConfig] = None,
        pr_config: Optional[PrConfig] = None,
        receiver_sack: bool = True,
        receiver_dsack: bool = True,
        receiver_delayed_ack: bool = False,
    ) -> None:
        self.network = network
        self.variant = canonical_name(variant)
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.start_at = start_at
        self.sender: Sender = make_sender(
            variant,
            network.sim,
            network.node(src),
            flow_id,
            dst,
            tcp_config=tcp_config,
            pr_config=pr_config,
        )
        self.receiver = TcpReceiver(
            network.sim,
            network.node(dst),
            flow_id,
            src,
            sack=receiver_sack,
            dsack=receiver_dsack,
            delayed_ack=receiver_delayed_ack,
        )
        self.sender.start(start_at)

    # ------------------------------------------------------------------
    @property
    def mss_bytes(self) -> int:
        return self.sender.config.mss_bytes

    @property
    def delivered_segments(self) -> int:
        """Segments delivered in order at the receiver."""
        return self.receiver.delivered

    def delivered_bytes(self) -> int:
        return self.receiver.delivered * self.mss_bytes

    def throughput_bps(self, interval: float) -> float:
        """Average goodput over the whole run, given its duration."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        return self.delivered_bytes() * 8.0 / interval

    def __repr__(self) -> str:
        return (
            f"<BulkTransfer {self.variant} flow={self.flow_id} "
            f"{self.src}->{self.dst} delivered={self.delivered_segments}>"
        )

"""Application-layer traffic models."""

from repro.app.bulk import BulkTransfer
from repro.app.onoff import OnOffSource

__all__ = ["BulkTransfer", "OnOffSource"]

"""On/off constant-bit-rate source (background/cross traffic).

Sends UDP-like datagrams (no congestion control, no retransmission)
toward a sink node, alternating exponentially distributed ON and OFF
periods — the classic ns-2 background-traffic generator.  Useful for the
"different levels of background traffic" robustness checks of Section 4.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.node import Agent
from repro.net.packet import Packet

if TYPE_CHECKING:
    from repro.net.node import Node
    from repro.sim.engine import Simulator


class OnOffSource(Agent):
    """Exponential on/off CBR datagram source.

    Args:
        sim: Owning simulator.
        node: Source node.
        flow_id: Flow identifier (use a range disjoint from TCP flows).
        peer: Destination node name.
        rate_bps: Sending rate while ON.
        packet_bytes: Datagram size.
        mean_on / mean_off: Mean durations of the ON and OFF periods.
            ``mean_off=0`` yields plain CBR.
    """

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        flow_id: int,
        peer: str,
        rate_bps: float,
        packet_bytes: int = 1000,
        mean_on: float = 1.0,
        mean_off: float = 0.0,
    ) -> None:
        super().__init__(sim, node, flow_id)
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if mean_on <= 0:
            raise ValueError(f"mean_on must be positive, got {mean_on}")
        if mean_off < 0:
            raise ValueError(f"mean_off must be non-negative, got {mean_off}")
        self.peer = peer
        self.rate_bps = rate_bps
        self.packet_bytes = packet_bytes
        self.mean_on = mean_on
        self.mean_off = mean_off
        self._interval = packet_bytes * 8.0 / rate_bps
        self._rng = sim.rng.stream(f"onoff:{node.name}:{flow_id}")
        self._on = False
        self._off_until = 0.0
        self._seq = 0
        self.packets_sent = 0
        self._started = False

    def start(self, at: float = 0.0) -> None:
        if self._started:
            return
        self._started = True
        self.sim.post(at, self._begin_on_period, None, f"onoff f{self.flow_id}")

    def receive(self, packet: Packet) -> None:
        """Sources ignore inbound traffic (datagrams are one-way)."""

    # ------------------------------------------------------------------
    def _begin_on_period(self) -> None:
        self._on = True
        duration = self._rng.expovariate(1.0 / self.mean_on)
        self._off_until = self.sim.now + duration
        self._tick(self._off_until)

    def _tick(self, on_end: float) -> None:
        if self.sim.now >= on_end:
            self._end_on_period()
            return
        packet = Packet(
            "data",
            src=self.node.name,
            dst=self.peer,
            flow_id=self.flow_id,
            seq=self._seq,
            size_bytes=self.packet_bytes,
        )
        self._seq += 1
        self.packets_sent += 1
        self.inject(packet)
        self.sim.post_in(self._interval, self._tick, (on_end,), "onoff tick")

    def _end_on_period(self) -> None:
        self._on = False
        if self.mean_off <= 0:
            self._begin_on_period()
            return
        off = self._rng.expovariate(1.0 / self.mean_off)
        self.sim.post_in(off, self._begin_on_period, None, "onoff off")


class DatagramSink(Agent):
    """Counts datagrams from an :class:`OnOffSource` (drops them otherwise)."""

    def __init__(self, sim: "Simulator", node: "Node", flow_id: int) -> None:
        super().__init__(sim, node, flow_id)
        self.packets_received = 0
        self.bytes_received = 0

    def receive(self, packet: Packet) -> None:
        self.packets_received += 1
        self.bytes_received += packet.size_bytes

"""Saving, loading, inspecting, and resuming simulator checkpoints.

A checkpoint is a ``repro.ckpt/v1`` container (see
:mod:`repro.checkpoint.format`) with four sections:

``meta``
    JSON header: schema version, package version, engine counters
    (clock, event seq, dispatched/pending events), registered component
    names, RNG stream names, the next packet uid.  Readable without
    unpickling anything — this is what ``repro ckpt inspect`` shows.
``globals``
    Process-global counters (today: the packet uid counter) that a
    resume in a *fresh process* must restore before dispatching.
``rng``
    The :class:`~repro.sim.rng.RngRegistry` stream states, standalone.
    Redundant with ``graph`` (the registry rides the object graph) but
    independently CRC'd and decodable, so corruption in the big graph
    section never masquerades as silent RNG divergence.
``graph``
    The entire :class:`~repro.sim.engine.Simulator` object graph —
    heap, seq counter, RNG registry, and every registered component —
    in one :mod:`repro.checkpoint.codec` payload, preserving shared
    references (see the codec docstring for why one pass matters).

The resume contract is **bit-identical continuation**: running to time
T, checkpointing, and resuming in a new process must produce byte-wise
the same obs/trace output as the uninterrupted run (pinned by
``tests/test_checkpoint_resume.py``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.checkpoint import codec
from repro.checkpoint.errors import CheckpointCorruptError, CheckpointError
from repro.checkpoint.format import read_container, write_container
from repro.checkpoint.state import restore_globals, snapshot_globals
from repro.sim.engine import Simulator

PathLike = Union[str, Path]

#: Version of the section *payload* schema (the container frames its own
#: version in the magic line).
SCHEMA_VERSION = 1

_REQUIRED_SECTIONS = ("meta", "globals", "rng", "graph")


class Checkpoint:
    """A loaded checkpoint: parsed meta plus the restored object graph."""

    __slots__ = ("path", "meta", "simulator", "_globals_state", "_resumed")

    def __init__(
        self,
        path: Optional[Path],
        meta: Dict[str, Any],
        simulator: Simulator,
        globals_state: Mapping[str, Any],
    ) -> None:
        self.path = path
        self.meta = meta
        self.simulator = simulator
        self._globals_state = globals_state
        self._resumed = False

    def resume(self) -> Simulator:
        """Arm the restored simulator for continuation and return it.

        Restores the process-global counters captured at save time and,
        when the restored simulator has ``sanitize=True``, audits the
        restored heap (times >= restored clock, live counter matches),
        raising :class:`~repro.sim.errors.InvariantViolation` on damage.
        """
        restore_globals(self._globals_state)
        if self.simulator.sanitize:
            self.simulator._audit_resume()
        self._resumed = True
        return self.simulator

    def __repr__(self) -> str:
        return (
            f"<Checkpoint t={self.meta.get('now')!r} "
            f"components={len(self.meta.get('components', []))} "
            f"path={str(self.path)!r}>"
        )


def save_checkpoint(
    sim: Simulator, path: PathLike, user_meta: Optional[Mapping[str, Any]] = None
) -> None:
    """Atomically snapshot ``sim`` (and its registered components) to ``path``."""
    from repro.core.engine_select import EXTENSION_MODULE

    meta: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "package_version": _package_version(),
        # Provenance only: checkpoints are engine-portable (the pickled
        # graph rebuilds on whatever build loads it; docs/COMPILED.md),
        # but knowing which build *wrote* one helps debug perf reports.
        # Classified from the instance, not the global selection — the
        # two can differ under use_engine().
        "engine": (
            "compiled"
            if type(sim).__module__ == EXTENSION_MODULE
            else "pure"
        ),
        "now": sim.now,
        "event_seq": sim.event_seq,
        "dispatched_events": sim.dispatched_events,
        "pending_events": sim.pending_events,
        "components": list(sim.components),
        "rng_streams": sim.rng.names(),
        "globals": dict(snapshot_globals()),
        "user_meta": dict(user_meta) if user_meta else {},
    }
    sections = {
        "meta": json.dumps(meta, sort_keys=True).encode("utf-8"),
        "globals": codec.encode(snapshot_globals()),
        "rng": codec.encode(sim.rng.snapshot_state()),
        "graph": codec.encode(sim),
    }
    write_container(path, sections)


def load_checkpoint(path: PathLike) -> Checkpoint:
    """Read, verify, and fully decode a checkpoint file.

    Raises:
        CheckpointFormatError: not a checkpoint file at all.
        CheckpointCorruptError: framing/CRC/unpickle damage (names the
            failing section) or cross-section disagreement.
        CheckpointError: valid file, unsupported schema version.
    """
    path = Path(path)
    sections = read_container(path)
    for name in _REQUIRED_SECTIONS:
        if name not in sections:
            raise CheckpointCorruptError(
                name, "required section is missing", str(path)
            )
    meta = _parse_meta(sections["meta"], path)
    simulator = codec.decode(sections["graph"], section="graph")
    if not isinstance(simulator, Simulator):
        raise CheckpointCorruptError(
            "graph",
            f"graph decodes to {type(simulator).__name__}, not Simulator",
            str(path),
        )
    globals_state = codec.decode(sections["globals"], section="globals")
    codec.decode(sections["rng"], section="rng")  # integrity only
    # Cross-checks: the cheap meta counters must agree with the decoded
    # graph, otherwise sections were mixed from different snapshots.
    # lint: allow-float-time-eq(integrity cross-check: both values are the same float round-tripped losslessly, not accumulated arithmetic)
    if meta["now"] != simulator.now:
        raise CheckpointCorruptError(
            "graph",
            f"meta says t={meta['now']!r} but graph restored t={simulator.now!r}",
            str(path),
        )
    if meta["pending_events"] != simulator.pending_events:
        raise CheckpointCorruptError(
            "graph",
            f"meta says {meta['pending_events']} pending events but graph "
            f"restored {simulator.pending_events}",
            str(path),
        )
    return Checkpoint(path, meta, simulator, globals_state)


def inspect_checkpoint(path: PathLike) -> Dict[str, Any]:
    """Verify integrity and summarize a checkpoint *without* unpickling.

    Returns a JSON-able dict: the parsed ``meta`` header plus per-section
    payload sizes.  Safe to run on untrusted files — only the CRC scan
    and the JSON header are touched.
    """
    path = Path(path)
    sections = read_container(path)
    meta = _parse_meta(sections["meta"], path) if "meta" in sections else {}
    return {
        "path": str(path),
        "sections": {name: len(payload) for name, payload in sections.items()},
        "meta": meta,
    }


# ----------------------------------------------------------------------
def _parse_meta(payload: bytes, path: Path) -> Dict[str, Any]:
    try:
        meta = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptError(
            "meta", f"header is not JSON: {exc}", str(path)
        ) from exc
    if not isinstance(meta, dict):
        raise CheckpointCorruptError(
            "meta", f"header is {type(meta).__name__}, not an object", str(path)
        )
    schema = meta.get("schema")
    if schema != SCHEMA_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint schema {schema!r} "
            f"(this build reads schema {SCHEMA_VERSION})"
        )
    return meta


def _package_version() -> str:
    try:
        import repro

        return str(getattr(repro, "__version__", "unknown"))
    except ImportError:  # pragma: no cover - repro is always importable here
        return "unknown"

"""Typed errors for the checkpoint subsystem.

Every failure mode a caller can act on gets its own class: a corrupt
file names the failing section (so ``repro ckpt inspect`` and resume
paths can report *which* CRC failed), a format error means the file is
not a ``repro.ckpt`` container at all, and the base class covers
logical misuse (missing components, incompatible schema versions).
"""

from __future__ import annotations

from typing import Optional


class CheckpointError(Exception):
    """Base class for all checkpoint failures."""


class CheckpointFormatError(CheckpointError):
    """The file is not a ``repro.ckpt`` container (bad magic / framing)."""


class CheckpointCorruptError(CheckpointError):
    """A section failed its integrity check.

    Attributes:
        section: Name of the failing section (``"meta"``, ``"rng"``,
            ``"graph"``, ...) or ``"container"`` when the damage is in
            the framing itself (truncation, missing end marker).
        detail: Human-readable description of the failure.
    """

    def __init__(self, section: str, detail: str, path: Optional[str] = None) -> None:
        self.section = section
        self.detail = detail
        self.path = path
        where = f" in {path}" if path else ""
        super().__init__(f"corrupt checkpoint section {section!r}{where}: {detail}")

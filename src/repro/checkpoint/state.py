"""The :class:`StatefulComponent` protocol and generic snapshot helpers.

Components that carry simulation state (TCP senders/receivers, links,
queues, RNG registries, monitors) implement ``snapshot_state()`` /
``restore_state(state)``.  The contract:

* ``snapshot_state`` returns a dict of *logical* state only — counters,
  windows, buffers, RNG states — deep-copied so later simulation cannot
  mutate the snapshot.  Engine wiring (the simulator, nodes, cached
  bound methods, live :class:`~repro.sim.engine.EventHandle`\\ s) is
  excluded: the whole-graph codec captures those, and a snapshot must
  be comparable/transportable on its own.
* ``restore_state(snapshot_state())`` on an equivalently-wired component
  reproduces its behavior exactly (the Hypothesis round-trip tests pin
  this per component).

Most implementations are two lines over :func:`snapshot_object` /
:func:`restore_object`, with a per-class ``_SNAPSHOT_EXCLUDE`` frozenset
naming the wiring attributes to skip.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, FrozenSet, Iterator, Mapping, Protocol, runtime_checkable


@runtime_checkable
class StatefulComponent(Protocol):
    """Anything whose logical state can be snapshotted and restored."""

    def snapshot_state(self) -> Dict[str, Any]:
        """Deep-copied logical state, excluding engine wiring."""

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Overwrite logical state from a prior :meth:`snapshot_state`."""


def iter_state_attrs(obj: Any) -> Iterator[str]:
    """All data attribute names of ``obj``: every ``__slots__`` entry up
    the MRO plus the instance dict, deduplicated, in a stable order."""
    seen = set()
    for klass in type(obj).__mro__:
        for name in getattr(klass, "__slots__", ()):
            if name in ("__dict__", "__weakref__") or name in seen:
                continue
            seen.add(name)
            yield name
    for name in getattr(obj, "__dict__", {}):
        if name not in seen:
            seen.add(name)
            yield name


def snapshot_object(obj: Any, exclude: FrozenSet[str] = frozenset()) -> Dict[str, Any]:
    """Generic :meth:`StatefulComponent.snapshot_state` implementation."""
    state: Dict[str, Any] = {}
    for name in iter_state_attrs(obj):
        if name in exclude or not hasattr(obj, name):
            continue
        state[name] = copy.deepcopy(getattr(obj, name))
    return state


def restore_object(obj: Any, state: Mapping[str, Any]) -> None:
    """Generic :meth:`StatefulComponent.restore_state` implementation."""
    for name, value in state.items():
        setattr(obj, name, copy.deepcopy(value))


#: Constructor-parameter names that conventionally carry engine wiring
#: (a simulator, a peer component, an obs sink).  An attribute assigned
#: straight from one of these is wiring, not logical state — it must
#: appear in the class's ``_SNAPSHOT_EXCLUDE`` or a checkpoint will try
#: to deep-copy half the object graph.  The static checker
#: (``repro lint --deep``, REP402) enforces exactly this contract, so
#: the vocabulary lives here next to the protocol it protects.
WIRING_PARAM_NAMES: FrozenSet[str] = frozenset(
    {
        "sim", "simulator", "link", "node", "queue", "sender", "receiver",
        "agent", "network", "obs", "probe", "src", "dst",
    }
)


# ----------------------------------------------------------------------
# Process-global counters that must survive a resume in a new process.
# ----------------------------------------------------------------------
def snapshot_globals() -> Dict[str, Any]:
    """Capture process-global counters a resumed run depends on.

    Today that is one thing: the packet uid counter
    (:mod:`repro.net.packet`), which keys trace records — a resumed run
    in a fresh process must hand out uids exactly where the snapshot
    left off or trace output diverges from the uninterrupted run.
    """
    from repro.net import packet

    return {"packet_uid": packet.peek_next_uid()}


def restore_globals(state: Mapping[str, Any]) -> None:
    """Restore the counters captured by :func:`snapshot_globals`."""
    from repro.net import packet

    packet.reset_uid_counter(int(state["packet_uid"]))

"""Crash-safe simulator checkpoint/resume (``repro.ckpt/v1``).

Public surface:

* :func:`save_checkpoint` / :func:`load_checkpoint` /
  :func:`inspect_checkpoint` and the :class:`Checkpoint` handle —
  whole-simulator snapshots with atomic writes, per-section CRCs, and a
  bit-identical continuation contract (:mod:`repro.checkpoint.snapshot`).
* The :class:`StatefulComponent` protocol and generic helpers for
  component-level snapshot/restore (:mod:`repro.checkpoint.state`).
* :class:`CellPlan` / :func:`cell_plan` / :func:`checkpointable` — the
  cooperative opt-in that makes sweep cell functions resumable across
  process death (:mod:`repro.checkpoint.cell`).
* Typed errors (:mod:`repro.checkpoint.errors`).

See ``docs/CHECKPOINT.md`` for the file format, the atomicity story,
and the resume contract's caveats.
"""

from repro.checkpoint.cell import (
    CellPlan,
    CellScope,
    cell_plan,
    checkpointable,
    get_plan,
    set_plan,
)
from repro.checkpoint.errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointFormatError,
)
from repro.checkpoint.snapshot import (
    SCHEMA_VERSION,
    Checkpoint,
    inspect_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.checkpoint.state import (
    StatefulComponent,
    restore_globals,
    restore_object,
    snapshot_globals,
    snapshot_object,
)

__all__ = [
    "CellPlan",
    "CellScope",
    "Checkpoint",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointFormatError",
    "SCHEMA_VERSION",
    "StatefulComponent",
    "cell_plan",
    "checkpointable",
    "get_plan",
    "inspect_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "set_plan",
    "snapshot_globals",
    "snapshot_object",
    "restore_globals",
    "restore_object",
]

"""The one sanctioned pickle site for simulator snapshots.

All checkpoint payloads go through :func:`encode`/:func:`decode` with a
*pinned* pickle protocol, so files written by one interpreter resume on
another and lint rule REP105 can forbid ad-hoc ``pickle`` use elsewhere
(serialization that bypasses the versioned ``repro.ckpt`` container and
its CRCs is exactly the corruption vector this subsystem exists to
close).

Why whole-graph pickling: bit-identical continuation requires that
shared references survive the round trip — a sender's ``peer`` string,
a link's queue, the packets sitting both in a queue *and* in a heap
event must come back as the *same* objects, not equal copies.  Pickling
the entire :class:`~repro.sim.engine.Simulator` graph in one pass gives
exactly that via the pickle memo; per-component serialization would
silently sever those identities.
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.checkpoint.errors import CheckpointCorruptError

#: Pinned so checkpoints are portable across the supported interpreters
#: (protocol 4 is the py3.8+ default and readable everywhere we run).
PICKLE_PROTOCOL = 4


def encode(obj: Any) -> bytes:
    """Serialize ``obj`` with the pinned checkpoint protocol."""
    return pickle.dumps(obj, protocol=PICKLE_PROTOCOL)


def decode(data: bytes, *, section: str = "payload") -> Any:
    """Deserialize a checkpoint payload.

    Raises:
        CheckpointCorruptError: naming ``section`` when the payload does
            not unpickle (CRCs catch bit rot; this catches truncated
            writes of a *valid* CRC'd section and version skew in the
            pickled class layout).
    """
    try:
        return pickle.loads(data)
    except Exception as exc:  # lint: allow-broad-except(unpickling raises arbitrary errors from reconstructed __setstate__; all become CheckpointCorruptError)
        raise CheckpointCorruptError(section, f"payload does not unpickle: {exc!r}") from exc

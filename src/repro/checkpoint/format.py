"""The ``repro.ckpt/v1`` on-disk container: named, CRC'd sections.

Layout (all framing is ASCII so ``head -c`` on a checkpoint is
self-describing)::

    repro.ckpt/v1\\n
    @<name> <length> <crc32>\\n
    <length payload bytes>\\n
    @<name> <length> <crc32>\\n
    <length payload bytes>\\n
    @end\\n

Guarantees:

* **Atomicity** — :func:`write_container` writes to a temp file in the
  destination directory, flushes and fsyncs it, then ``os.replace``\\ s
  it over the target.  A crash mid-write leaves either the old file or
  no file, never a torn one.
* **Integrity** — every section carries its own CRC32; a mismatch (or
  truncation, or a missing end marker) raises
  :class:`~repro.checkpoint.errors.CheckpointCorruptError` naming the
  failing section, so callers can distinguish "link section rotted"
  from "file half-written".
"""

from __future__ import annotations

import os
import tempfile
import zlib
from pathlib import Path
from typing import Dict, List, Mapping, Tuple, Union

from repro.checkpoint.errors import CheckpointCorruptError, CheckpointFormatError

PathLike = Union[str, Path]

#: First line of every checkpoint file; bump the suffix on breaking
#: container changes (section payload schemas version independently via
#: the ``meta`` section).
MAGIC = b"repro.ckpt/v1\n"
_END = b"@end\n"


def write_container(path: PathLike, sections: Mapping[str, bytes]) -> None:
    """Atomically write ``sections`` to ``path`` (temp + fsync + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(MAGIC)
            for name, payload in sections.items():
                _check_section_name(name)
                crc = zlib.crc32(payload)
                handle.write(f"@{name} {len(payload)} {crc}\n".encode("ascii"))
                handle.write(payload)
                handle.write(b"\n")
            handle.write(_END)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)


def read_container(path: PathLike) -> Dict[str, bytes]:
    """Read and verify every section of a checkpoint file.

    Raises:
        CheckpointFormatError: not a ``repro.ckpt/v1`` file.
        CheckpointCorruptError: truncated file, framing damage, or a
            section whose payload fails its CRC (the error names the
            section).
    """
    path = Path(path)
    with path.open("rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise CheckpointFormatError(
                f"{path}: not a repro.ckpt/v1 file (magic {magic!r})"
            )
        sections: Dict[str, bytes] = {}
        while True:
            header = handle.readline()
            if not header:
                raise CheckpointCorruptError(
                    "container", "missing @end marker (truncated file)", str(path)
                )
            if header == _END:
                return sections
            name, length, crc = _parse_header(header, path)
            payload = handle.read(length)
            if len(payload) != length:
                raise CheckpointCorruptError(
                    name,
                    f"truncated payload: expected {length} bytes, got {len(payload)}",
                    str(path),
                )
            if handle.read(1) != b"\n":
                raise CheckpointCorruptError(
                    name, "missing section terminator", str(path)
                )
            actual = zlib.crc32(payload)
            if actual != crc:
                raise CheckpointCorruptError(
                    name, f"CRC mismatch: header {crc}, payload {actual}", str(path)
                )
            if name in sections:
                raise CheckpointCorruptError(
                    name, "duplicate section", str(path)
                )
            sections[name] = payload


def list_sections(path: PathLike) -> List[Tuple[str, int]]:
    """Section names and payload sizes, verifying integrity as a side effect."""
    return [(name, len(payload)) for name, payload in read_container(path).items()]


# ----------------------------------------------------------------------
def _check_section_name(name: str) -> None:
    if not name or " " in name or "\n" in name or not name.isascii():
        raise ValueError(f"invalid section name {name!r}")
    if name == "end":
        raise ValueError("section name 'end' is reserved for the end marker")


def _parse_header(header: bytes, path: Path) -> Tuple[str, int, int]:
    try:
        text = header.decode("ascii")
    except UnicodeDecodeError as exc:
        raise CheckpointCorruptError(
            "container", f"undecodable section header {header!r}", str(path)
        ) from exc
    if not text.startswith("@") or not text.endswith("\n"):
        raise CheckpointCorruptError(
            "container", f"malformed section header {text!r}", str(path)
        )
    parts = text[1:-1].split(" ")
    if len(parts) != 3:
        raise CheckpointCorruptError(
            "container", f"malformed section header {text!r}", str(path)
        )
    name = parts[0]
    try:
        length = int(parts[1])
        crc = int(parts[2])
    except ValueError as exc:
        raise CheckpointCorruptError(
            name or "container", f"non-numeric header fields in {text!r}", str(path)
        ) from exc
    if length < 0:
        raise CheckpointCorruptError(name, f"negative length {length}", str(path))
    return name, length, crc


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        dir_fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)

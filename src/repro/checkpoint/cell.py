"""Cooperative per-cell checkpointing for sweep cell functions.

A cell function cannot be transparently checkpointed from the outside —
only it knows how to build its scenario.  The contract here mirrors the
ambient :class:`~repro.obs.instrument.Instrumentation` pattern: the
executor (or a test) arms an ambient :class:`CellPlan` (checkpoint path
+ interval); a cell that wraps its scenario in :func:`checkpointable`
then becomes resumable across process death for free:

* no plan armed -> ``build()`` runs and the simulation executes exactly
  as before (zero overhead, zero behavior change);
* plan armed, no checkpoint file -> ``build()`` runs, the returned
  components are registered on the simulator, and the run snapshots
  every ``plan.every`` simulation seconds;
* plan armed, checkpoint file present (a previous attempt died) -> the
  scenario is **not** rebuilt; the simulator and components are restored
  from the file and the run continues bit-identically.

::

    def run_cell(*, duration, seed):
        def build():
            net = make_network(seed)
            flow = BulkTransfer(net, ...)
            maybe_observe(net)
            return {"net": net, "flow": flow}

        with checkpointable(build) as scope:
            scope.run(until=duration)
            return scope["flow"].delivered_bytes()

On clean exit of the ``with`` block the checkpoint file is deleted — the
cell completed, and its result travels through the normal cache/journal
machinery.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Mapping, Optional

from repro.checkpoint.errors import CheckpointError
from repro.checkpoint.snapshot import load_checkpoint
from repro.sim.engine import Simulator

#: Registry-name prefix for components a cell scope registers.
_CELL_PREFIX = "cell:"
#: Registry name under which the ambient instrumentation rides the graph.
_OBS_COMPONENT = "cell:__obs__"


@dataclass(frozen=True)
class CellPlan:
    """Where and how often the current cell should checkpoint."""

    path: Path
    every: float

    def __post_init__(self) -> None:
        if self.every <= 0:
            raise ValueError(f"checkpoint interval must be positive, got {self.every}")


_plan: Optional[CellPlan] = None


def set_plan(plan: Optional[CellPlan]) -> None:
    """Set (or clear, with None) the ambient checkpoint plan."""
    global _plan
    _plan = plan


def get_plan() -> Optional[CellPlan]:
    """The ambient checkpoint plan, if one is armed."""
    return _plan


@contextlib.contextmanager
def cell_plan(plan: Optional[CellPlan]) -> Iterator[Optional[CellPlan]]:
    """Arm ``plan`` as the ambient checkpoint plan for the duration."""
    previous = get_plan()
    set_plan(plan)
    try:
        yield plan
    finally:
        set_plan(previous)


class CellScope:
    """The live scenario of one cell: components plus the run entry point."""

    __slots__ = ("components", "simulator", "resumed", "plan")

    def __init__(
        self,
        components: Dict[str, Any],
        simulator: Simulator,
        resumed: bool,
        plan: Optional[CellPlan],
    ) -> None:
        self.components = components
        self.simulator = simulator
        #: True when the scenario was restored from a checkpoint file
        #: instead of built fresh (``build()`` did not run).
        self.resumed = resumed
        self.plan = plan

    def __getitem__(self, name: str) -> Any:
        try:
            return self.components[name]
        except KeyError:
            raise CheckpointError(
                f"cell component {name!r} not found "
                f"(known: {sorted(self.components)})"
            ) from None

    def run(self, until: Optional[float] = None, **kwargs: Any) -> None:
        """Run the cell's simulator, checkpointing if a plan is armed."""
        if self.plan is None:
            self.simulator.run(until=until, **kwargs)
        else:
            self.simulator.run(
                until=until,
                checkpoint_every=self.plan.every,
                checkpoint_path=self.plan.path,
                **kwargs,
            )


@contextlib.contextmanager
def checkpointable(build: Callable[[], Mapping[str, Any]]) -> Iterator[CellScope]:
    """Make one cell's scenario resumable under the ambient plan.

    ``build`` constructs the scenario from scratch and returns a name ->
    component mapping; at least one component must expose the simulator
    (a ``.sim`` attribute, e.g. a :class:`~repro.net.network.Network`).
    See the module docstring for the three execution modes.
    """
    plan = get_plan()
    if plan is not None and plan.path.exists():
        simulator = load_checkpoint(plan.path).resume()
        components = {
            name[len(_CELL_PREFIX):]: comp
            for name, comp in simulator.components.items()
            if name.startswith(_CELL_PREFIX) and name != _OBS_COMPONENT
        }
        _adopt_restored_instrumentation(simulator)
        scope = CellScope(components, simulator, resumed=True, plan=plan)
    else:
        components = dict(build())
        simulator = _find_simulator(components)
        for name, comp in components.items():
            simulator.register_component(_CELL_PREFIX + name, comp)
        _register_ambient_instrumentation(simulator)
        scope = CellScope(components, simulator, resumed=False, plan=plan)
    yield scope
    # Clean completion: the cell's result is about to be recorded by the
    # caller, so the intermediate snapshot has served its purpose.  (On
    # an exception the file survives for the next attempt to resume.)
    if plan is not None:
        try:
            plan.path.unlink()
        except OSError:
            pass


# ----------------------------------------------------------------------
def _find_simulator(components: Mapping[str, Any]) -> Simulator:
    for comp in components.values():
        if isinstance(comp, Simulator):
            return comp
        sim = getattr(comp, "sim", None)
        if isinstance(sim, Simulator):
            return sim
    raise CheckpointError(
        "checkpointable build() returned no component exposing the "
        "simulator (need a Simulator or an object with a .sim attribute)"
    )


def _register_ambient_instrumentation(simulator: Simulator) -> None:
    """Put the ambient Instrumentation (if any) on the checkpointed graph.

    The executor's metrics/trace collection lives in an ambient
    :class:`~repro.obs.instrument.Instrumentation`; registering it as a
    component means its registry, tracer, and monitors are snapshotted
    with everything else, so a resumed cell still exports the complete
    observation stream.
    """
    from repro.obs.instrument import get_ambient

    ambient = get_ambient()
    if ambient is not None:
        simulator.register_component(_OBS_COMPONENT, ambient)


def _adopt_restored_instrumentation(simulator: Simulator) -> None:
    """Graft restored observation state onto the fresh ambient instance.

    After a resume the executor holds a *new* ambient Instrumentation
    (created in the new process) while the restored graph carries the
    one that actually observed the run so far.  The fresh instance
    adopts the restored registry/tracer/monitors so ``to_records()`` in
    the executor sees the full history.
    """
    from repro.obs.instrument import get_ambient

    ambient = get_ambient()
    restored = simulator.components.get(_OBS_COMPONENT)
    if ambient is None or restored is None or restored is ambient:
        return
    ambient.registry = restored.registry
    ambient.trace_enabled = restored.trace_enabled
    ambient._tracer = restored._tracer
    ambient._fault_monitor = restored._fault_monitor
    ambient.monitors = restored.monitors

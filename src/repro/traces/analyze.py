"""Pcap-style trace analytics: what a tcpdump analyst would compute.

Consumes a :class:`~repro.traces.stream.TraceStream` (or raw
``repro.obs/v1`` records) and produces a typed :class:`TraceReport` with
one :class:`FlowReport` per flow:

* **Reordering** (RFC 4737 at segment granularity): Type-P-Reordered
  ratio, per-packet *reorder extent* (positions displaced past the
  earliest later-sequence arrival), sequence-space displacement, and
  *late-time offset* (how long after the overtaking arrival the late
  packet landed), each with distribution summaries.  Only original
  transmissions count — a late retransmission is recovery, not
  reordering.
* **Loss vs reordering classification**: out-of-order originals are
  *late originals* (genuine reordering); hole fills carried by segments
  the sender marked ``retransmit`` are *retransmit fills* (loss
  recovery) — the SACK-hole-style distinction the tcpdump analyzers
  under ROADMAP item 1 draw.
* **Duplicate ACKs**: dupack count plus dupack *events* (runs reaching
  the classic threshold of 3), from the sender-side ACK arrivals.
* **Retransmission phases**: bursts of retransmissions separated by
  less than ``phase_gap`` seconds, with spans and segment counts.
* **Connection interruptions**: delivery gaps exceeding an automatic
  (or explicit) threshold — the fault-injection outages of Figure 7
  show up here.
* **Sample streams**: per-segment RTT samples (Karn-filtered: only
  never-retransmitted segments) and a goodput timeseries over fixed
  windows.

The extent computation is O(n log n): the earliest arrival with a
greater sequence number is always a running-maximum arrival, so a
bisect over the running-max index finds each reordered packet's
anchor.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net.packet import DATA_SIZE_BYTES
from repro.traces.stream import FlowKey, FlowTrace, TraceStream

#: Classic fast-retransmit duplicate-ACK threshold.
DUPACK_THRESHOLD = 3


def _summary(values: Sequence[float]) -> Dict[str, float]:
    """min/mean/max/p95 digest of a sample list (empty -> zeros)."""
    if not values:
        return {"n": 0, "min": 0.0, "mean": 0.0, "max": 0.0, "p95": 0.0}
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(0.95 * (len(ordered) - 1) + 0.5))
    return {
        "n": len(ordered),
        "min": ordered[0],
        "mean": sum(ordered) / len(ordered),
        "max": ordered[-1],
        "p95": ordered[index],
    }


@dataclass(frozen=True)
class Phase:
    """One retransmission burst (closed interval, segment count)."""

    start: float
    end: float
    segments: int


@dataclass(frozen=True)
class Interruption:
    """One delivery gap exceeding the interruption threshold."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class FlowReport:
    """Everything the analyzer measured about one flow."""

    key: FlowKey
    # Volume
    segments_sent: int = 0
    retransmits: int = 0
    unique_arrivals: int = 0
    duplicate_arrivals: int = 0
    dropped_packets: int = 0
    acks_seen: int = 0
    first_arrival: float = 0.0
    last_arrival: float = 0.0
    # Reordering (original transmissions only)
    reordered: int = 0
    reorder_ratio: float = 0.0
    extents: List[int] = field(default_factory=list)
    displacements: List[int] = field(default_factory=list)
    late_offsets: List[float] = field(default_factory=list)
    extent_histogram: List[int] = field(default_factory=list)
    # Loss vs reordering classification
    late_originals: int = 0
    retransmit_fills: int = 0
    # Duplicate ACKs
    dupacks: int = 0
    dupack_events: int = 0
    # Phases / interruptions
    phases: List[Phase] = field(default_factory=list)
    interruptions: List[Interruption] = field(default_factory=list)
    interruption_gap: float = 0.0
    # Sample streams
    rtt_samples: List[Tuple[float, float]] = field(default_factory=list)
    throughput_samples: List[Tuple[float, float]] = field(default_factory=list)

    # ------------------------------------------------------------------
    def extent_summary(self) -> Dict[str, float]:
        return _summary([float(value) for value in self.extents])

    def displacement_summary(self) -> Dict[str, float]:
        return _summary([float(value) for value in self.displacements])

    def late_offset_summary(self) -> Dict[str, float]:
        return _summary(self.late_offsets)

    def rtt_summary(self) -> Dict[str, float]:
        return _summary([rtt for _, rtt in self.rtt_samples])

    def goodput_mbps(self) -> float:
        """Unique-delivery goodput over the flow's active span (Mbps)."""
        span = self.last_arrival - self.first_arrival
        if span <= 0.0 or self.unique_arrivals <= 1:
            return 0.0
        return (self.unique_arrivals - 1) * DATA_SIZE_BYTES * 8.0 / span / 1e6

    def reorder_density(self) -> List[float]:
        """Normalized extent histogram (RFC 4737 reorder-density style)."""
        total = sum(self.extent_histogram)
        if total == 0:
            return [1.0]
        return [count / total for count in self.extent_histogram]


@dataclass
class TraceReport:
    """The analyzer's product: per-flow reports plus stream totals."""

    flows: Dict[FlowKey, FlowReport] = field(default_factory=dict)
    total_events: int = 0
    fault_events: int = 0
    time_span: float = 0.0

    def flow(self, flow_id: int, cell: str = "") -> FlowReport:
        return self.flows[FlowKey(cell=cell, flow_id=flow_id)]

    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-dict form for ``--json`` dumps (stable key order)."""
        return {
            "total_events": self.total_events,
            "fault_events": self.fault_events,
            "time_span": self.time_span,
            "flows": {
                str(key): {
                    "segments_sent": report.segments_sent,
                    "retransmits": report.retransmits,
                    "unique_arrivals": report.unique_arrivals,
                    "duplicate_arrivals": report.duplicate_arrivals,
                    "dropped_packets": report.dropped_packets,
                    "reordered": report.reordered,
                    "reorder_ratio": report.reorder_ratio,
                    "extent": report.extent_summary(),
                    "displacement": report.displacement_summary(),
                    "late_offset": report.late_offset_summary(),
                    "extent_histogram": report.extent_histogram,
                    "late_originals": report.late_originals,
                    "retransmit_fills": report.retransmit_fills,
                    "dupacks": report.dupacks,
                    "dupack_events": report.dupack_events,
                    "phases": [
                        {"start": p.start, "end": p.end, "segments": p.segments}
                        for p in report.phases
                    ],
                    "interruptions": [
                        {"start": i.start, "end": i.end, "duration": i.duration}
                        for i in report.interruptions
                    ],
                    "rtt": report.rtt_summary(),
                    "goodput_mbps": report.goodput_mbps(),
                    "throughput_samples": [
                        list(sample) for sample in report.throughput_samples
                    ],
                }
                for key, report in sorted(self.flows.items())
            },
        }


# ----------------------------------------------------------------------
# Per-flow analysis passes
# ----------------------------------------------------------------------
def _analyze_arrivals(report: FlowReport, flow: FlowTrace) -> None:
    """Reordering, duplicates, classification, and interruptions."""
    seen: set = set()
    # Running-max index over *original* arrivals: parallel arrays of
    # (seq, index-in-originals, time), strictly increasing in seq.
    maxima_seqs: List[int] = []
    maxima_indices: List[int] = []
    maxima_times: List[float] = []
    originals = 0
    max_extent = 0
    extent_counts: Dict[int, int] = {}
    arrival_times: List[float] = []
    for event in flow.arrivals:
        duplicate = event.seq in seen
        if duplicate:
            report.duplicate_arrivals += 1
        else:
            seen.add(event.seq)
            arrival_times.append(event.time)
        if event.retransmit:
            if not duplicate:
                report.retransmit_fills += 1
            continue
        index = originals
        originals += 1
        if maxima_seqs and event.seq < maxima_seqs[-1]:
            # Reordered (RFC 4737): a greater sequence number arrived
            # first.  Its earliest such arrival is a running maximum.
            anchor = bisect_right(maxima_seqs, event.seq)
            extent = index - maxima_indices[anchor]
            report.reordered += 1
            report.late_originals += 1
            report.extents.append(extent)
            report.displacements.append(maxima_seqs[-1] - event.seq)
            report.late_offsets.append(event.time - maxima_times[anchor])
            extent_counts[extent] = extent_counts.get(extent, 0) + 1
            max_extent = max(max_extent, extent)
        else:
            maxima_seqs.append(event.seq)
            maxima_indices.append(index)
            maxima_times.append(event.time)
            extent_counts[0] = extent_counts.get(0, 0) + 1
    report.unique_arrivals = len(seen)
    if originals > 1:
        report.reorder_ratio = report.reordered / originals
    if arrival_times:
        report.first_arrival = arrival_times[0]
        report.last_arrival = arrival_times[-1]
    report.extent_histogram = [
        extent_counts.get(extent, 0) for extent in range(max_extent + 1)
    ]
    # Interruptions: delivery gaps far beyond the typical inter-arrival.
    if len(arrival_times) > 2:
        gaps = sorted(
            later - earlier
            for earlier, later in zip(arrival_times, arrival_times[1:])
        )
        median_gap = gaps[len(gaps) // 2]
        if report.interruption_gap <= 0.0:
            report.interruption_gap = max(0.5, 50.0 * median_gap)
        for earlier, later in zip(arrival_times, arrival_times[1:]):
            if later - earlier > report.interruption_gap:
                report.interruptions.append(Interruption(earlier, later))


def _analyze_sends(report: FlowReport, flow: FlowTrace, phase_gap: float) -> None:
    """Volume counters and retransmission-phase detection."""
    report.segments_sent = len(flow.sends)
    phase_start = phase_end = None
    phase_count = 0
    for event in flow.sends:
        if not event.retransmit:
            continue
        report.retransmits += 1
        if phase_start is None or event.time - phase_end > phase_gap:
            if phase_start is not None:
                report.phases.append(Phase(phase_start, phase_end, phase_count))
            phase_start = phase_end = event.time
            phase_count = 1
        else:
            phase_end = event.time
            phase_count += 1
    if phase_start is not None:
        report.phases.append(Phase(phase_start, phase_end, phase_count))


def _analyze_acks(report: FlowReport, flow: FlowTrace) -> None:
    """Duplicate-ACK counting over the sender-side ACK stream."""
    report.acks_seen = len(flow.ack_arrivals)
    previous_ack: Optional[int] = None
    run = 0
    for event in flow.ack_arrivals:
        if previous_ack is not None and event.ack == previous_ack:
            report.dupacks += 1
            run += 1
            if run == DUPACK_THRESHOLD:
                report.dupack_events += 1
        else:
            run = 0
        previous_ack = event.ack if event.ack >= 0 else previous_ack


def _analyze_rtt(report: FlowReport, flow: FlowTrace) -> None:
    """Karn-filtered RTT samples: send of seq -> first ACK covering it."""
    if not flow.sends or not flow.ack_arrivals:
        return
    retransmitted = {
        event.seq for event in flow.sends if event.retransmit
    }
    send_times: Dict[int, float] = {}
    for event in flow.sends:
        if not event.retransmit and event.seq not in retransmitted:
            send_times.setdefault(event.seq, event.time)
    # Walk sends and ACKs in time order; an ACK with value a covers every
    # outstanding seq < a.
    pending: List[Tuple[float, int]] = sorted(
        (time, seq) for seq, time in send_times.items()
    )
    pending.sort(key=lambda item: item[1])  # by seq: ACK coverage order
    cursor = 0
    for ack_event in sorted(flow.ack_arrivals, key=lambda event: event.time):
        while cursor < len(pending) and pending[cursor][1] < ack_event.ack:
            sent_at, _seq = pending[cursor]
            if ack_event.time >= sent_at:
                report.rtt_samples.append(
                    (ack_event.time, ack_event.time - sent_at)
                )
            cursor += 1


def _analyze_throughput(
    report: FlowReport, flow: FlowTrace, window: float
) -> None:
    """Unique-delivery goodput per fixed window, in Mbps."""
    if not flow.arrivals or window <= 0.0:
        return
    seen: set = set()
    bucket_end = flow.arrivals[0].time + window
    delivered = 0
    for event in flow.arrivals:
        while event.time >= bucket_end:
            report.throughput_samples.append(
                (bucket_end, delivered * DATA_SIZE_BYTES * 8.0 / window / 1e6)
            )
            delivered = 0
            bucket_end += window
        if event.seq not in seen:
            seen.add(event.seq)
            delivered += 1
    report.throughput_samples.append(
        (bucket_end, delivered * DATA_SIZE_BYTES * 8.0 / window / 1e6)
    )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def analyze_stream(
    stream: TraceStream,
    phase_gap: float = 1.0,
    interruption_gap: Optional[float] = None,
    throughput_window: float = 0.5,
) -> TraceReport:
    """Analyze a parsed trace stream into a :class:`TraceReport`.

    Args:
        stream: The parsed ``repro.obs/v1`` stream.
        phase_gap: Retransmissions closer than this (seconds) belong to
            one retransmission phase.
        interruption_gap: Delivery gaps longer than this are reported as
            connection interruptions; ``None`` derives a threshold from
            the flow's median inter-arrival (50x, floored at 0.5 s).
        throughput_window: Goodput sample window in seconds.
    """
    report = TraceReport(total_events=len(stream.events))
    report.fault_events = len(stream.faults)
    times = [event.time for event, _ in stream.events]
    if times:
        report.time_span = max(times) - min(times)
    for key, flow in sorted(stream.flows().items()):
        flow_report = FlowReport(key=key)
        if interruption_gap is not None:
            flow_report.interruption_gap = interruption_gap
        _analyze_sends(flow_report, flow, phase_gap)
        _analyze_arrivals(flow_report, flow)
        flow_report.dropped_packets = len(flow.drops)
        _analyze_acks(flow_report, flow)
        _analyze_rtt(flow_report, flow)
        _analyze_throughput(flow_report, flow, throughput_window)
        report.flows[key] = flow_report
    return report


def analyze_records(
    records: Iterable[Dict[str, Any]], **options: Any
) -> TraceReport:
    """Analyze raw ``repro.obs/v1`` records (see :func:`analyze_stream`)."""
    return analyze_stream(TraceStream(records), **options)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def format_report(report: TraceReport) -> str:
    """Human-readable digest, one block per flow."""
    lines = [
        f"trace: {report.total_events} packet events, "
        f"{report.fault_events} fault events, "
        f"{report.time_span:.3f} s span, {len(report.flows)} flow(s)",
    ]
    for key, flow in sorted(report.flows.items()):
        extent = flow.extent_summary()
        late = flow.late_offset_summary()
        rtt = flow.rtt_summary()
        lines.append(f"\nflow {key}:")
        lines.append(
            f"  sent={flow.segments_sent} (retx={flow.retransmits})  "
            f"delivered={flow.unique_arrivals} (dup={flow.duplicate_arrivals})  "
            f"dropped={flow.dropped_packets}  acks={flow.acks_seen}"
        )
        lines.append(
            f"  reordered={flow.reordered} ({flow.reorder_ratio:.2%})  "
            f"extent mean={extent['mean']:.2f} max={extent['max']:.0f}  "
            f"late-offset p95={late['p95'] * 1e3:.1f} ms"
        )
        lines.append(
            f"  classification: late originals={flow.late_originals}, "
            f"retransmit fills={flow.retransmit_fills}; "
            f"dupacks={flow.dupacks} (events>={DUPACK_THRESHOLD}: "
            f"{flow.dupack_events})"
        )
        if flow.phases:
            lines.append(
                f"  retransmission phases: {len(flow.phases)} "
                + ", ".join(
                    f"[{p.start:.2f}-{p.end:.2f}s x{p.segments}]"
                    for p in flow.phases[:5]
                )
                + (" ..." if len(flow.phases) > 5 else "")
            )
        if flow.interruptions:
            lines.append(
                f"  interruptions (> {flow.interruption_gap:.2f} s): "
                + ", ".join(
                    f"[{i.start:.2f}-{i.end:.2f}s]"
                    for i in flow.interruptions[:5]
                )
                + (" ..." if len(flow.interruptions) > 5 else "")
            )
        if rtt["n"]:
            lines.append(
                f"  rtt: n={rtt['n']:.0f} min={rtt['min'] * 1e3:.1f} "
                f"mean={rtt['mean'] * 1e3:.1f} p95={rtt['p95'] * 1e3:.1f} ms"
            )
        lines.append(f"  goodput: {flow.goodput_mbps():.2f} Mbps")
    return "\n".join(lines)

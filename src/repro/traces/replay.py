"""Trace-driven scenario replay: a :class:`ReorderProfile` as a workload.

Two replay modes, both deterministic under a seed (every random draw
comes from a :func:`~repro.sim.rng.derive_child_seed`-derived stream, so
repeated runs are bit-identical):

**Open loop** (:func:`replay_profile`): re-inject the recorded send
schedule through a single link whose :class:`ProfileDelayModel` draws
each packet's one-way delay from the profile's empirical distribution
and whose :class:`ProfileLossModel` applies the measured loss rate.
Because the distilled scenarios choose per-packet delays iid (ε-multipath
picks a path per packet), this reproduces the original reordering
process — the round-trip validation distills a Figure 6 cell and
recovers its reorder extent and density from the replay.

**Closed loop** (:func:`replay_flow_workload`): run a *live* TCP variant
over the profile link.  This is what makes any trace a new workload:
capture reordering once (simulated, or converted from a real capture via
:mod:`repro.traces.adapter`) and evaluate any sender against it.

The replay link's bandwidth is deliberately enormous (default 1 Gbps)
so serialization delay is negligible against the profile's delays — the
profile already embeds the original path's queueing and serialization.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.pr import PrConfig
from repro.net.delays import DelayModel
from repro.net.link import Link
from repro.net.lossgen import LossModel
from repro.net.network import Network, install_static_routes
from repro.net.node import Agent, Node
from repro.net.packet import Packet
from repro.obs.trace import PacketTracer
from repro.sim.rng import derive_child_seed
from repro.tcp.base import TcpConfig
from repro.traces.analyze import FlowReport, analyze_stream
from repro.traces.profile import ReorderProfile
from repro.traces.stream import TraceStream

#: Replay link rate: fast enough that serialization is negligible.
REPLAY_BANDWIDTH = 1e9
#: Flow id used by replayed flows.
REPLAY_FLOW_ID = 1
#: Extra simulated time past the last send to let stragglers land.
REPLAY_DRAIN_MARGIN = 0.5


class ProfileDelayModel(DelayModel):
    """Per-packet delay drawn from a profile's empirical distribution.

    Each packet samples a *path* from the profile's per-path mixture
    (weighted by observed counts — the empirical per-packet path
    distribution ε-multipath induced), then an extra delay from that
    path's empirical distribution.  Delivery is clamped to FIFO order
    *within* each path: in the original network, two packets on the
    same route traverse the same queues and cannot overtake each other,
    and replaying without that constraint systematically over-reorders.
    Profiles without path information fall back to pooled iid draws.
    """

    def __init__(
        self,
        profile: ReorderProfile,
        rng: "random.Random",
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.profile = profile
        self._rng = rng
        self._clock = clock
        self._last_arrival: Dict[str, float] = {}

    def delay_for(self, packet: Packet) -> float:
        path, extra = self.profile.sample_path_delay(self._rng)
        delay = self.profile.base_delay + extra
        if self._clock is None:
            return delay
        now = self._clock()
        arrival = now + delay
        previous = self._last_arrival.get(path)
        if previous is not None and arrival < previous:
            arrival = previous
            delay = arrival - now
        self._last_arrival[path] = arrival
        return delay


class ProfileLossModel(LossModel):
    """Bernoulli loss at the profile's measured rate."""

    def __init__(self, profile: ReorderProfile, rng: "random.Random") -> None:
        self.rate = profile.loss_rate
        self._rng = rng

    def should_drop(self, packet: Packet) -> bool:
        if self.rate <= 0.0:
            return False
        return self._rng.random() < self.rate


class ReplaySource(Agent):
    """Open-loop injector: replays a profile's recorded send schedule."""

    def __init__(
        self,
        sim: "object",
        node: Node,
        flow_id: int,
        peer: str,
        profile: ReorderProfile,
    ) -> None:
        super().__init__(sim, node, flow_id)  # type: ignore[arg-type]
        self.peer = peer
        self.profile = profile
        self.injected = 0

    def start(self, at: float = 0.0) -> None:
        # The whole send schedule is known up front — post it as one
        # block (one heapify) instead of per-event heap pushes.
        emit = self._emit
        self.sim.post_batch(
            [
                (at + offset, emit, (seq,), "replay.send")
                for offset, seq in zip(
                    self.profile.send_times, self.profile.send_seqs
                )
            ]
        )

    def _emit(self, seq: int) -> None:
        self.injected += 1
        self.inject(
            Packet("data", self.node.name, self.peer, self.flow_id, seq=seq)
        )

    def receive(self, packet: Packet) -> None:  # ACKs, if any; ignored.
        pass


class _Sink(Agent):
    """Counts deliveries; the tracer wrapped around the node sees them."""

    def __init__(self, sim: "object", node: Node, flow_id: int) -> None:
        super().__init__(sim, node, flow_id)  # type: ignore[arg-type]
        self.received = 0

    def receive(self, packet: Packet) -> None:
        self.received += 1


@dataclass
class ReplayResult:
    """Outcome of an open-loop profile replay.

    Attributes:
        profile: The replayed profile.
        report: The analyzer's view of the replayed flow — compare its
            reordering metrics against the source trace's.
        injected: Segments injected by the replay source.
        delivered: Unique segments that arrived.
        dropped: Segments the loss model removed.
    """

    profile: ReorderProfile
    report: FlowReport
    injected: int
    delivered: int
    dropped: int

    @property
    def reorder_ratio(self) -> float:
        return self.report.reorder_ratio

    @property
    def reorder_density(self) -> List[float]:
        return self.report.reorder_density()

    def mean_extent(self) -> float:
        return self.report.extent_summary()["mean"]


def build_replay_network(
    profile: ReorderProfile,
    seed: int = 0,
    bandwidth: float = REPLAY_BANDWIDTH,
) -> Tuple[Network, Link]:
    """A two-node network whose forward link embodies the profile.

    Returns the network and the profile-driven ``src -> dst`` link.  The
    reverse (ACK) path is clean: the profiles distilled from Figure 6
    runs describe the data path; closed-loop callers wanting a noisy ACK
    path can attach a second profile to the returned network's reverse
    link themselves.
    """
    net = Network(seed=seed)
    net.add_nodes("src", "dst")
    delay_rng = net.sim.rng.stream("replay.delay")
    loss_rng = net.sim.rng.stream("replay.loss")
    forward = net.add_link(
        "src",
        "dst",
        bandwidth=bandwidth,
        delay=profile.base_delay,
        queue=10_000,
        loss_model=ProfileLossModel(profile, loss_rng),
        delay_model=ProfileDelayModel(
            profile, delay_rng, clock=lambda: net.sim.now
        ),
    )
    net.add_link(
        "dst",
        "src",
        bandwidth=bandwidth,
        delay=profile.base_delay,
        queue=10_000,
    )
    install_static_routes(net)
    return net, forward


def replay_profile(
    profile: ReorderProfile,
    seed: int = 0,
    tracer: Optional[PacketTracer] = None,
) -> ReplayResult:
    """Open-loop replay: re-inject the recorded sends, measure reordering.

    Deterministic under ``seed``: the delay and loss streams are derived
    from the network's seed, and the send schedule is fixed by the
    profile — two calls with equal arguments produce identical results.

    Args:
        profile: The distilled scenario.
        seed: Master seed for the replay's random streams.
        tracer: Optional pre-built tracer (e.g. to keep the raw events);
            one is created when omitted.
    """
    if not profile.send_times:
        raise ValueError(
            f"profile {profile.name!r} has no recorded send schedule; "
            "open-loop replay needs one (was it built from_record with "
            "send_times stripped?)"
        )
    net, forward = build_replay_network(profile, seed=seed)
    source = ReplaySource(
        net.sim, net.node("src"), REPLAY_FLOW_ID, "dst", profile
    )
    sink = _Sink(net.sim, net.node("dst"), REPLAY_FLOW_ID)
    if tracer is None:
        tracer = PacketTracer()
    tracer.watch_node_sends(net.node("src"))
    tracer.watch_node(net.node("dst"))
    tracer.watch_link_drops(forward)
    source.start(0.0)
    horizon = (
        profile.duration
        + profile.base_delay
        + profile.max_extra_delay
        + REPLAY_DRAIN_MARGIN
    )
    net.run(until=horizon)
    stream = TraceStream.from_tracer(tracer)
    trace_report = analyze_stream(stream)
    report = trace_report.flow(REPLAY_FLOW_ID)
    return ReplayResult(
        profile=profile,
        report=report,
        injected=source.injected,
        delivered=sink.received,
        dropped=forward.loss_model_drops,
    )


def replay_flow_workload(
    profile: ReorderProfile,
    variant: str = "tcp-pr",
    duration: float = 30.0,
    seed: int = 0,
    tcp_config: Optional[TcpConfig] = None,
    pr_config: Optional[PrConfig] = None,
) -> float:
    """Closed-loop replay: run a live TCP variant over the profile link.

    The trace becomes a workload: the variant's congestion control and
    reordering response face the captured delay/loss process.  Returns
    goodput in Mbps.  Deterministic under ``(profile, variant, seed)``.
    """
    # Import here: repro.app imports the tcp registry, which is heavier
    # than open-loop replay needs.
    from repro.app.bulk import BulkTransfer

    net, _forward = build_replay_network(profile, seed=seed)
    flow = BulkTransfer(
        net,
        variant,
        "src",
        "dst",
        flow_id=REPLAY_FLOW_ID,
        tcp_config=tcp_config,
        pr_config=pr_config,
    )
    net.run(until=duration)
    return flow.delivered_bytes() * 8.0 / duration / 1e6

"""Distilling a trace into a replayable :class:`ReorderProfile`.

The ε-multipath scenarios of Figure 6 choose a path *per packet*,
independently — so the one-way extra delay each packet experiences is an
iid draw from some distribution.  That makes the empirical distribution
itself a faithful generative model: record every matched send→arrival
delay, subtract the propagation floor, and sampling from the resulting
empirical CDF reproduces the same reordering process (extent, density,
late-time offsets) that the original run exhibited.

:func:`distill_profile` performs exactly that distillation from a
:class:`~repro.traces.stream.TraceStream` flow: it joins original
(non-retransmitted) sends to their arrivals by ``packet_uid``, extracts

* ``base_delay`` — the minimum observed one-way delay (propagation floor),
* ``extra_delays`` — the sorted empirical extra-delay distribution,
* ``loss_rate`` — the fraction of matured originals that never arrived,
* ``send_times``/``send_seqs`` — the recorded injection schedule,

and packages them as a frozen, JSON-serializable :class:`ReorderProfile`.
:mod:`repro.traces.replay` plugs the profile back into the simulator.

Sampling is deterministic: :meth:`ReorderProfile.sampler` derives its RNG
via :func:`repro.sim.rng.derive_child_seed`, so equal seeds reproduce the
replay bit-identically.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.sim.rng import derive_child_seed
from repro.traces.stream import FlowTrace, TraceStream

PathLike = Union[str, Path]


def _empirical_draw(values: Tuple[float, ...], rng: "random.Random") -> float:
    """Inverse-CDF draw from an empirical sample tuple (0.0 if empty)."""
    if not values:
        return 0.0
    index = int(rng.random() * len(values))
    if index == len(values):  # rng.random() ~ 1.0 edge
        index -= 1
    return values[index]

#: Record type used when a profile is embedded in a ``repro.obs/v1``
#: stream (the schema is append-only, so a new record type is legal).
PROFILE_RECORD = "reorder_profile"


@dataclass(frozen=True)
class ReorderProfile:
    """An empirical delay/displacement/loss process distilled from a trace.

    Attributes:
        name: Human-readable provenance label (e.g. the source file or
            sweep-cell key).
        base_delay: Propagation floor — the minimum matched one-way
            delay, seconds.
        extra_delays: Sorted empirical extra delays (delay minus
            ``base_delay``), one entry per matched original arrival.
            Sampling uniformly from this tuple IS sampling the
            empirical delay distribution.
        loss_rate: Fraction of matured original transmissions that never
            arrived (tail sends still in flight at trace end excluded).
        send_times: Original-transmission injection times, seconds,
            shifted so the first send is at 0.0.
        send_seqs: Segment numbers matching ``send_times``.
        path_extras: Per-path empirical extra-delay distributions —
            ``(path_label, sorted extras)`` pairs, weighted implicitly
            by their sample counts.  When the source trace recorded the
            route each send took (ε-multipath stamps it), the replay
            samples a *path* per packet and enforces FIFO order within
            each path, matching the original network where same-path
            packets cannot overtake each other.  Empty when the source
            had no path information; sampling then falls back to the
            pooled ``extra_delays``.
        source_flow: ``str(FlowKey)`` of the distilled flow.
    """

    name: str
    base_delay: float
    extra_delays: Tuple[float, ...]
    loss_rate: float
    send_times: Tuple[float, ...] = field(default=())
    send_seqs: Tuple[int, ...] = field(default=())
    path_extras: Tuple[Tuple[str, Tuple[float, ...]], ...] = field(default=())
    source_flow: str = ""

    def __post_init__(self) -> None:
        if self.base_delay < 0.0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {self.loss_rate}")
        if len(self.send_times) != len(self.send_seqs):
            raise ValueError("send_times and send_seqs must be parallel")

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sampler(self, seed: int, name: str = "replay.delay") -> "random.Random":
        """A deterministic RNG for this profile (seed-derived stream)."""
        return random.Random(derive_child_seed(seed, name))  # lint: allow-module-random(seed-derived stream for replay outside any Simulator; in-sim replay uses the network's RngRegistry)

    def sample_extra_delay(self, rng: "random.Random") -> float:
        """One inverse-CDF draw from the pooled extra-delay distribution."""
        return _empirical_draw(self.extra_delays, rng)

    def sample_path_delay(self, rng: "random.Random") -> Tuple[str, float]:
        """One (path, extra-delay) draw from the per-path mixture.

        Paths are chosen with probability proportional to their sample
        counts — the empirical estimate of the original per-packet path
        distribution.  Falls back to ``("", pooled draw)`` when the
        profile carries no path information.
        """
        if not self.path_extras:
            return "", self.sample_extra_delay(rng)
        total = sum(len(extras) for _, extras in self.path_extras)
        pick = int(rng.random() * total)
        for path, extras in self.path_extras:
            if pick < len(extras):
                return path, _empirical_draw(extras, rng)
            pick -= len(extras)
        path, extras = self.path_extras[-1]  # rng.random() ~ 1.0 edge
        return path, _empirical_draw(extras, rng)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def max_extra_delay(self) -> float:
        return self.extra_delays[-1] if self.extra_delays else 0.0

    @property
    def duration(self) -> float:
        """Span of the recorded send schedule, seconds."""
        return self.send_times[-1] if self.send_times else 0.0

    def mean_extra_delay(self) -> float:
        if not self.extra_delays:
            return 0.0
        return sum(self.extra_delays) / len(self.extra_delays)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_record(self) -> Dict[str, Any]:
        """The profile as a ``repro.obs/v1``-style record."""
        return {
            "record": PROFILE_RECORD,
            "name": self.name,
            "base_delay": self.base_delay,
            "extra_delays": list(self.extra_delays),
            "loss_rate": self.loss_rate,
            "send_times": list(self.send_times),
            "send_seqs": list(self.send_seqs),
            "path_extras": [
                [path, list(extras)] for path, extras in self.path_extras
            ],
            "source_flow": self.source_flow,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "ReorderProfile":
        if record.get("record") != PROFILE_RECORD:
            raise ValueError(
                f"not a {PROFILE_RECORD!r} record: {record.get('record')!r}"
            )
        return cls(
            name=str(record.get("name", "")),
            base_delay=float(record["base_delay"]),
            extra_delays=tuple(float(v) for v in record.get("extra_delays", [])),
            loss_rate=float(record.get("loss_rate", 0.0)),
            send_times=tuple(float(v) for v in record.get("send_times", [])),
            send_seqs=tuple(int(v) for v in record.get("send_seqs", [])),
            path_extras=tuple(
                (str(path), tuple(float(v) for v in extras))
                for path, extras in record.get("path_extras", [])
            ),
            source_flow=str(record.get("source_flow", "")),
        )

    def save(self, path: PathLike) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_record()) + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: PathLike) -> "ReorderProfile":
        return cls.from_record(json.loads(Path(path).read_text(encoding="utf-8")))

    def summary(self) -> str:
        return (
            f"profile {self.name or '(unnamed)'}: "
            f"{len(self.extra_delays)} delay samples, "
            f"base={self.base_delay * 1e3:.2f} ms, "
            f"extra mean={self.mean_extra_delay() * 1e3:.2f} "
            f"max={self.max_extra_delay * 1e3:.2f} ms, "
            f"loss={self.loss_rate:.3%}, "
            f"{len(self.path_extras)} path(s), "
            f"{len(self.send_times)} recorded sends over {self.duration:.2f} s"
        )


def distill_profile(
    source: Union[TraceStream, FlowTrace],
    flow_id: Optional[int] = None,
    cell: str = "",
    name: str = "",
) -> ReorderProfile:
    """Distill one flow's trace into a :class:`ReorderProfile`.

    Args:
        source: A parsed stream (give ``flow_id``/``cell`` to pick the
            flow; with exactly one flow present it is picked
            automatically) or a :class:`FlowTrace` directly.
        flow_id: Flow to distill when ``source`` is a stream.
        cell: Sweep-cell tag of the flow (empty for single-run traces).
        name: Provenance label; defaults to the flow key.

    Raises:
        ValueError: If the flow has no matched send→arrival pairs (an
            empirical delay distribution needs at least one sample).
    """
    if isinstance(source, TraceStream):
        flows = source.flows()
        if flow_id is None:
            if len(flows) != 1:
                raise ValueError(
                    f"stream has {len(flows)} flows "
                    f"({', '.join(str(k) for k in sorted(flows))}); "
                    "pass flow_id= (and cell= for sweep traces)"
                )
            flow = next(iter(flows.values()))
        else:
            # An explicit cell wins; otherwise the flow id alone is
            # accepted when it is unambiguous across cells.
            matches = [
                candidate
                for key, candidate in sorted(flows.items())
                if key.flow_id == flow_id and (not cell or key.cell == cell)
            ]
            if len(matches) != 1:
                raise ValueError(
                    f"flow_id={flow_id}"
                    + (f" cell={cell!r}" if cell else "")
                    + f" matches {len(matches)} flows; stream has: "
                    + (", ".join(str(k) for k in sorted(flows)) or "none")
                )
            flow = matches[0]
    else:
        flow = source

    arrival_times: Dict[int, float] = {}
    for event in flow.arrivals:
        arrival_times.setdefault(event.packet_uid, event.time)

    originals = [event for event in flow.sends if not event.retransmit]
    delays = []
    matched_send_times = []
    by_path: Dict[str, list] = {}
    for event in originals:
        arrived_at = arrival_times.get(event.packet_uid)
        if arrived_at is not None and arrived_at >= event.time:
            delays.append(arrived_at - event.time)
            matched_send_times.append(event.time)
            by_path.setdefault(event.path or "", []).append(
                arrived_at - event.time
            )
    if not delays:
        raise ValueError(
            f"flow {flow.key} has no matched send/arrival pairs; was the "
            "sender node traced? (--trace-out records both endpoints)"
        )

    base_delay = min(delays)
    extras = tuple(sorted(delay - base_delay for delay in delays))
    # Per-path mixture: only meaningful when routes were actually
    # recorded (a single "" bucket adds nothing over the pooled form).
    path_extras: Tuple[Tuple[str, Tuple[float, ...]], ...] = ()
    if len(by_path) > 1 or (len(by_path) == 1 and "" not in by_path):
        path_extras = tuple(
            (path, tuple(sorted(value - base_delay for value in values)))
            for path, values in sorted(by_path.items())
        )

    # Loss: matured originals that never arrived.  A send later than the
    # last *matched* send may still have been in flight when the trace
    # ended, so only sends up to that time count toward the denominator.
    cutoff = max(matched_send_times)
    matured = [event for event in originals if event.time <= cutoff]
    lost = sum(
        1 for event in matured if event.packet_uid not in arrival_times
    )
    loss_rate = lost / len(matured) if matured else 0.0

    first_send = originals[0].time if originals else 0.0
    return ReorderProfile(
        name=name or str(flow.key),
        base_delay=base_delay,
        extra_delays=extras,
        loss_rate=loss_rate,
        send_times=tuple(event.time - first_send for event in originals),
        send_seqs=tuple(event.seq for event in originals),
        path_extras=path_extras,
        source_flow=str(flow.key),
    )

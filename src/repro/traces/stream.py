"""Parsing ``repro.obs/v1`` trace streams into per-flow event views.

A :class:`TraceStream` is the lossless in-memory form of a trace file:
it keeps every record verbatim (so ``to_records``/``write`` round-trip
bit-identically — the golden-schema guarantee tests pin) and exposes
typed per-flow views (:class:`FlowTrace`) with events ordered by the
stable ``(flow_seq, time)`` join key rather than by emission order.

Sweep traces interleave cells: every record collected inside a sweep
cell carries a ``cell`` tag, so flows are keyed by :class:`FlowKey` —
``(cell, flow_id)`` — and two cells' flow 1 never alias.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.export import (
    read_jsonl,
    trace_event_from_record,
    trace_event_record,
    write_jsonl,
)
from repro.obs.trace import FaultRecord, PacketTracer, TraceEvent

PathLike = Union[str, Path]


@dataclass(frozen=True, order=True)
class FlowKey:
    """Stable identity of one flow inside one sweep cell.

    ``cell`` is the sweep-cell tag (empty string for single-run traces);
    ``flow_id`` the transport flow id the packets carried.
    """

    cell: str
    flow_id: int

    def __str__(self) -> str:
        if self.cell:
            return f"{self.cell}/flow={self.flow_id}"
        return f"flow={self.flow_id}"


@dataclass
class FlowTrace:
    """One flow's events, split by kind and ordered by ``(flow_seq, time)``.

    Attributes:
        key: The owning :class:`FlowKey`.
        sends: Data segments injected at the origin (``send``/``data``).
        arrivals: Data segments delivered to a watched node
            (``recv``/``data``) — the receiver's view of the flow.
        ack_arrivals: ACKs delivered back to a watched node
            (``recv``/``ack``) — the sender's view of the return path.
        drops: Packets lost on watched links (any packet kind).
    """

    key: FlowKey
    sends: List[TraceEvent] = field(default_factory=list)
    arrivals: List[TraceEvent] = field(default_factory=list)
    ack_arrivals: List[TraceEvent] = field(default_factory=list)
    drops: List[TraceEvent] = field(default_factory=list)

    def arrival_seqs(self) -> List[int]:
        """Data segment numbers in (join-key) arrival order."""
        return [event.seq for event in self.arrivals]

    def sort(self) -> None:
        """Order every event list by the stable join key."""
        for events in (self.sends, self.arrivals, self.ack_arrivals, self.drops):
            events.sort(key=lambda event: (event.flow_seq, event.time))


class TraceStream:
    """A parsed ``repro.obs/v1`` record stream with per-flow trace views.

    Construction never drops records: metric/cell/sweep/header records
    ride along untouched, which is what makes
    :meth:`to_records`/:meth:`write` bit-identical re-emission.
    """

    def __init__(self, records: Iterable[Dict[str, Any]]) -> None:
        #: Every record, verbatim, in stream order.
        self.records: List[Dict[str, Any]] = list(records)
        #: Parsed (event, cell) pairs for the ``trace`` records.
        self.events: List[Tuple[TraceEvent, str]] = []
        #: Parsed fault records with their cell tags.
        self.faults: List[Tuple[FaultRecord, str]] = []
        for record in self.records:
            kind = record.get("record")
            if kind == "trace":
                cell = str(record.get("cell", "") or "")
                self.events.append((trace_event_from_record(record), cell))
            elif kind == "fault":
                cell = str(record.get("cell", "") or "")
                self.faults.append(
                    (
                        FaultRecord(
                            time=float(record["time"]),
                            kind=str(record["kind"]),
                            target=str(record.get("target", "")),
                            detail=str(record.get("detail", "")),
                        ),
                        cell,
                    )
                )
        self._flows: Optional[Dict[FlowKey, FlowTrace]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_jsonl(cls, path: PathLike) -> "TraceStream":
        """Parse a ``repro.obs/v1`` JSONL file."""
        return cls(read_jsonl(path))

    @classmethod
    def from_tracer(cls, tracer: PacketTracer) -> "TraceStream":
        """Wrap a live :class:`~repro.obs.trace.PacketTracer`'s events."""
        return cls(trace_event_record(event) for event in tracer.events)

    # ------------------------------------------------------------------
    # Flow views
    # ------------------------------------------------------------------
    def flows(self) -> Dict[FlowKey, FlowTrace]:
        """Per-flow event views, ordered by the stable join key."""
        if self._flows is not None:
            return self._flows
        flows: Dict[FlowKey, FlowTrace] = {}
        for event, cell in self.events:
            key = FlowKey(cell=cell, flow_id=event.flow_id)
            flow = flows.get(key)
            if flow is None:
                flow = flows[key] = FlowTrace(key=key)
            if event.kind == "send" and event.packet_kind == "data":
                flow.sends.append(event)
            elif event.kind == "recv" and event.packet_kind == "data":
                flow.arrivals.append(event)
            elif event.kind == "recv" and event.packet_kind == "ack":
                flow.ack_arrivals.append(event)
            elif event.kind == "drop":
                flow.drops.append(event)
        for flow in flows.values():
            flow.sort()
        self._flows = flows
        return flows

    def flow(self, flow_id: int, cell: str = "") -> FlowTrace:
        """The view for one flow (raises ``KeyError`` when absent)."""
        return self.flows()[FlowKey(cell=cell, flow_id=flow_id)]

    # ------------------------------------------------------------------
    # Re-emission
    # ------------------------------------------------------------------
    def to_records(self) -> List[Dict[str, Any]]:
        """The stream's records, verbatim (lossless round-trip)."""
        return list(self.records)

    def write(self, path: PathLike, **header_fields: Any) -> Path:
        """Re-emit the stream as JSONL (bit-identical for parsed files)."""
        return write_jsonl(self.records, path, **header_fields)

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (
            f"<TraceStream records={len(self.records)} "
            f"events={len(self.events)} flows={len(self.flows())}>"
        )

"""Converting external captures into ``repro.obs/v1`` trace streams.

Real measurement workflows produce per-packet logs in ad-hoc tabular
forms — tcpdump post-processing scripts, DAG-card exports, spreadsheet
dumps.  This adapter turns any such table into the schema the analyzer
and replayer consume, so a *real* capture can be analyzed with
``repro trace analyze`` and distilled into a replayable scenario with
``repro trace replay`` exactly like a simulated one.

Expected columns (header row, extra columns ignored):

``time``
    Event timestamp, seconds (float).
``kind``
    ``send`` / ``recv`` / ``drop``.
``seq``
    Segment (or packet) sequence number, integer.
``flow`` (optional, default 1)
    Flow identifier.
``where`` (optional)
    Capture point label.
``packet_kind`` (optional, default ``data``)
    ``data`` or ``ack``.
``ack`` (optional, default -1)
    Cumulative ACK value for ACK rows.
``retransmit`` (optional, default 0)
    Truthy when the row is a retransmission.
``uid`` (optional)
    Per-packet id joining a send row to its recv row.  When absent,
    synthetic uids are assigned by pairing each ``recv`` of a seq with
    the earliest unmatched ``send`` of the same seq (FIFO matching —
    correct when retransmissions are flagged or absent).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Union

from repro.obs.export import write_jsonl

PathLike = Union[str, Path]

_TRUTHY = {"1", "true", "yes", "y", "t"}


def _as_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    return str(value).strip().lower() in _TRUTHY


def records_from_rows(
    rows: Iterable[Mapping[str, Any]]
) -> List[Dict[str, Any]]:
    """Convert tabular capture rows into ``repro.obs/v1`` trace records.

    Rows are processed in order; per-flow ``flow_seq`` counters are
    assigned here, giving converted streams the same stable join key
    native traces carry.
    """
    records: List[Dict[str, Any]] = []
    flow_seq: Dict[int, int] = {}
    next_uid = 0
    # seq -> unmatched synthetic-uid send queue, per (flow, seq).
    unmatched: Dict[tuple, List[int]] = {}
    for row in rows:
        if "time" not in row or "kind" not in row or "seq" not in row:
            raise ValueError(
                f"capture row missing required column(s) time/kind/seq: "
                f"{dict(row)!r}"
            )
        kind = str(row["kind"]).strip().lower()
        if kind not in ("send", "recv", "drop"):
            raise ValueError(f"unknown event kind {kind!r} in capture row")
        flow_id = int(row.get("flow", 1) or 1)
        seq = int(row["seq"])
        packet_kind = str(row.get("packet_kind", "data") or "data").lower()
        if "uid" in row and str(row["uid"]).strip() != "":
            uid = int(row["uid"])
        else:
            pair_key = (flow_id, packet_kind, seq)
            if kind == "send":
                uid = next_uid
                next_uid += 1
                unmatched.setdefault(pair_key, []).append(uid)
            else:
                queue = unmatched.get(pair_key)
                if queue:
                    uid = queue.pop(0)
                else:
                    uid = next_uid
                    next_uid += 1
        counter = flow_seq.get(flow_id, 0)
        flow_seq[flow_id] = counter + 1
        records.append(
            {
                "record": "trace",
                "time": float(row["time"]),
                "kind": kind,
                "where": str(row.get("where", "") or ""),
                "packet_uid": uid,
                "flow_id": flow_id,
                "flow_seq": counter,
                "packet_kind": packet_kind,
                "seq": seq,
                "ack": int(row.get("ack", -1) or -1),
                "retransmit": _as_bool(row.get("retransmit", False)),
                "path": None,
            }
        )
    return records


def records_from_csv(path: PathLike) -> List[Dict[str, Any]]:
    """Read a capture CSV (see module docstring) into trace records."""
    with Path(path).open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        return records_from_rows(
            {key: value for key, value in row.items() if value is not None}
            for row in reader
        )


def convert_capture(
    source: PathLike, destination: PathLike, **header_fields: Any
) -> Path:
    """Convert a capture CSV into a ``repro.obs/v1`` JSONL trace file."""
    records = records_from_csv(source)
    return write_jsonl(
        records, destination, source=str(source), **header_fields
    )

"""The trace pipeline: emit → analyze → replay.

This package closes the loop ROADMAP item 1 calls for: the simulator
*emits* per-packet traces through :mod:`repro.obs` (``--trace-out``,
``repro.obs/v1`` JSONL), this package *analyzes* them the way a tcpdump
analyst would (reorder extent/displacement/late-time-offset, duplicate
ACKs, retransmission phases, connection interruptions, RTT and
throughput sample streams — see :mod:`repro.traces.analyze`), and
*replays* them: a trace distills into a :class:`ReorderProfile` — an
empirical delay/displacement/loss process — that plugs back into the
simulator as a first-class scenario (:mod:`repro.traces.replay`), so any
trace, simulated or converted from a real capture
(:mod:`repro.traces.adapter`), becomes a new workload.

CLI: ``repro trace analyze|replay|convert``.  Docs: ``docs/TRACES.md``.
"""

from repro.traces.adapter import convert_capture, records_from_csv, records_from_rows
from repro.traces.analyze import (
    FlowReport,
    TraceReport,
    analyze_records,
    analyze_stream,
    format_report,
)
from repro.traces.profile import ReorderProfile, distill_profile
from repro.traces.replay import (
    ProfileDelayModel,
    ProfileLossModel,
    ReplayResult,
    build_replay_network,
    replay_flow_workload,
    replay_profile,
)
from repro.traces.stream import FlowKey, FlowTrace, TraceStream

__all__ = [
    "FlowKey",
    "FlowReport",
    "FlowTrace",
    "ProfileDelayModel",
    "ProfileLossModel",
    "ReorderProfile",
    "ReplayResult",
    "TraceReport",
    "TraceStream",
    "analyze_records",
    "analyze_stream",
    "build_replay_network",
    "convert_capture",
    "distill_profile",
    "format_report",
    "records_from_csv",
    "records_from_rows",
    "replay_flow_workload",
    "replay_profile",
]

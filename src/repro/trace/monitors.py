"""Deprecated shim — monitors moved to :mod:`repro.obs.monitors`.

The classes are unchanged (these are the *same* objects, so existing
``isinstance`` checks keep passing); only the import path is
deprecated.  Attach monitors through
:class:`repro.obs.Instrumentation` going forward.
"""

from __future__ import annotations

import warnings
from typing import Any

_MOVED = (
    "CwndMonitor",
    "FaultTimelineMonitor",
    "FlowThroughputMonitor",
    "QueueMonitor",
)

__all__ = list(_MOVED)


def __getattr__(name: str) -> Any:
    if name in _MOVED:
        warnings.warn(
            f"repro.trace.monitors.{name} is deprecated; import it from "
            "repro.obs instead (see docs/OBSERVABILITY.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        import repro.obs.monitors as _monitors

        return getattr(_monitors, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Deprecated shim — the observability layer moved to :mod:`repro.obs`.

Every public name this package used to export now lives in
:mod:`repro.obs` (monitors in :mod:`repro.obs.monitors`, packet/fault
tracing in :mod:`repro.obs.trace`) behind the unified
:class:`repro.obs.Instrumentation` attachment surface.  Importing
through ``repro.trace`` keeps working for now but emits a
:class:`DeprecationWarning`; see ``docs/OBSERVABILITY.md`` for the
migration table.
"""

from __future__ import annotations

import warnings
from typing import Any

_MOVED = (
    "CwndMonitor",
    "FaultRecord",
    "FaultTimelineMonitor",
    "FlowThroughputMonitor",
    "PacketTracer",
    "QueueMonitor",
)

__all__ = list(_MOVED)


def __getattr__(name: str) -> Any:
    if name in _MOVED:
        warnings.warn(
            f"repro.trace.{name} is deprecated; import it from repro.obs "
            "instead (see docs/OBSERVABILITY.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        import repro.obs as _obs

        return getattr(_obs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

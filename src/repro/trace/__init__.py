"""Observability: flow/queue monitors, packet event traces, fault timelines."""

from repro.trace.monitors import (
    CwndMonitor,
    FaultTimelineMonitor,
    FlowThroughputMonitor,
    QueueMonitor,
)
from repro.trace.events import FaultRecord, PacketTracer

__all__ = [
    "CwndMonitor",
    "FaultRecord",
    "FaultTimelineMonitor",
    "FlowThroughputMonitor",
    "PacketTracer",
    "QueueMonitor",
]

"""Observability: flow/queue monitors and packet event traces."""

from repro.trace.monitors import (
    CwndMonitor,
    FlowThroughputMonitor,
    QueueMonitor,
)
from repro.trace.events import PacketTracer

__all__ = [
    "CwndMonitor",
    "FlowThroughputMonitor",
    "PacketTracer",
    "QueueMonitor",
]

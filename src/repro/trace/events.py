"""Deprecated shim — packet/fault tracing moved to :mod:`repro.obs.trace`.

The classes are unchanged (these are the *same* objects, so existing
``isinstance`` checks keep passing); only the import path is
deprecated.  Wire tracers through :class:`repro.obs.Instrumentation`
(``trace=True`` or :meth:`~repro.obs.Instrumentation.trace_node`)
going forward.
"""

from __future__ import annotations

import warnings
from typing import Any

_MOVED = ("FaultRecord", "PacketTracer", "TraceEvent")

__all__ = list(_MOVED)


def __getattr__(name: str) -> Any:
    if name in _MOVED:
        warnings.warn(
            f"repro.trace.events.{name} is deprecated; import it from "
            "repro.obs instead (see docs/OBSERVABILITY.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        import repro.obs.trace as _trace

        return getattr(_trace, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""The TCP-PR sender (Section 3 of the paper).

Algorithm summary (Table 1 of the paper):

* Packets live in two lists.  ``to-be-sent`` holds packets awaiting an
  opening in the congestion window (here: a retransmission heap plus the
  infinite bulk stream at ``snd_nxt``); ``to-be-ack`` holds packets in
  flight, each stamped with its send time and the congestion window at
  the time it was sent.
* **Loss detection uses only timers**: packet ``n`` is declared dropped
  at time ``t`` when ``t > time(n) + mxrtt``.  Duplicate ACKs are never
  counted.  ``mxrtt = beta * ewrtt`` where ewrtt is the max-tracking
  estimator of :mod:`repro.core.estimator`.
* On a drop of packet ``n`` *not* in the ``memorize`` list: the window is
  halved **relative to the window when n was sent** (``cwnd(n)/2``), and
  ``memorize`` snapshots the remaining outstanding packets; drops of
  memorized packets are retransmitted without further window cuts (one
  cut per loss event, as in NewReno/SACK).
* Window growth: slow-start (+1 per acked packet) until ``cwnd + 1``
  would exceed ``ssthr``, then congestion avoidance (+1/cwnd per acked
  packet).  The sender leaves slow start permanently except after
  extreme losses.
* Extreme losses (Section 3.2): a counter ``cburst`` tracks drops from
  ``memorize``; when it exceeds ``cwnd/2 + 1`` the sender emulates a
  NewReno coarse timeout — ``cwnd = 1``, slow-start mode, ``mxrtt``
  raised to at least 1 s, sending delayed by ``mxrtt``, with ``mxrtt``
  doubling (exponential backoff) if retransmissions sent at ``cwnd = 1``
  are dropped again.

Interpretation notes (under-specified points; see DESIGN.md §6):

* "ACK received for packet n": with cumulative ACKs, every packet below
  the ACK number is removed.  Additionally, when the receiver supplies
  standard RFC 2018 SACK blocks, packets covered by them are removed too
  — without this, a cumulative-only receiver would force TCP-PR to
  retransmit every packet above a hole (their timers expire before the
  hole's retransmission can be acknowledged), which contradicts the
  paper's SACK-parity results.  Set ``use_sack_accounting=False`` to run
  the literal cumulative-only pseudo-code (an ablation benchmark shows
  the resulting go-back-N collapse).
* Retransmitted packets yield no ewrtt samples (Karn ambiguity).
* After an extreme-loss event the whole outstanding window is moved into
  ``memorize`` so the inevitable follow-on timer expirations do not
  re-trigger the extreme-loss response; mxrtt doubling applies only to
  drops of packets sent *after* the event (a failed backoff round).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.core.estimator import MaxRttEstimator
from repro.net.node import Agent
from repro.net.packet import Packet
from repro.sim.errors import InvariantViolation

if TYPE_CHECKING:
    from repro.net.node import Node
    from repro.sim.engine import Simulator
    from repro.sim.events import EventHandle


@dataclass
class PrConfig:
    """TCP-PR parameters (paper defaults: alpha = 0.995, beta = 3.0).

    Attributes:
        alpha: Per-RTT memory factor of the ewrtt estimator, in (0, 1).
        beta: mxrtt threshold multiplier.
        mss_bytes: Segment size on the wire.
        initial_cwnd: Starting congestion window (segments).
        initial_mxrtt: Drop threshold before the first RTT sample.
        newton_iterations: Newton steps for ``alpha**(1/cwnd)`` (paper: 2).
        exact_root: Ablation — compute the fractional root exactly.
        use_sack_accounting: Remove packets from ``to-be-ack`` via SACK
            blocks as well as the cumulative ACK (see module docs).
        enable_memorize: Ablation — disable the memorize list (every
            detected drop halves the window).
        halve_at_send_cwnd: Ablation — if False, halve the *current*
            window instead of the window recorded when the packet was
            sent.
        extreme_loss_enabled: Enable the Section 3.2 extreme-loss mode.
        extreme_mxrtt_floor: mxrtt inflation on an extreme-loss event (1 s,
            matching coarse-timeout emulation).
        max_mxrtt: Cap for exponential backoff (RFC 2988's 64 s).
        receiver_window: Advertised-window cap (segments).
        total_segments: Stop after this many segments (None = infinite).
    """

    alpha: float = 0.995
    beta: float = 3.0
    mss_bytes: int = 1000
    initial_cwnd: float = 1.0
    #: Table 1 line 3 initializes ssthr := +inf; a finite value (like the
    #: window caps every ns-2-era study used) bounds the initial
    #: slow-start overshoot and makes cross-variant comparisons cleaner.
    initial_ssthresh: float = float("inf")
    initial_mxrtt: float = 3.0
    newton_iterations: int = 2
    exact_root: bool = False
    use_sack_accounting: bool = True
    enable_memorize: bool = True
    halve_at_send_cwnd: bool = True
    extreme_loss_enabled: bool = True
    extreme_mxrtt_floor: float = 1.0
    max_mxrtt: float = 64.0
    #: Lower bound on the drop threshold.  A degenerate zero RTT sample
    #: (possible only in synthetic settings) would otherwise make
    #: mxrtt = 0 and spin the declare/retransmit loop at one timestamp.
    min_mxrtt: float = 1e-3
    #: Timer granularity in seconds: drop checks fire on multiples of
    #: this tick, emulating the coarse kernel timers the paper's Linux
    #: implementation discusses (0 = ideal fine-grained timers).  Coarse
    #: ticks delay loss detection by up to one tick, which removes
    #: TCP-PR's detection-latency *advantage* over DUPACK senders in
    #: highly contended small-window regimes (see EXPERIMENTS.md).
    timer_granularity: float = 0.0
    #: Advertised receiver window (segments), finite like a real one.
    receiver_window: int = 1_000
    total_segments: Optional[int] = None


@dataclass
class PrStats:
    """Observable counters for tests and experiments."""

    data_packets_sent: int = 0
    retransmits: int = 0
    drops_detected: int = 0
    window_cuts: int = 0
    memorize_drops: int = 0
    extreme_events: int = 0
    backoff_doublings: int = 0
    spurious_drops: int = 0
    acks_received: int = 0
    packets_acked: int = 0
    cwnd_peak: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)


#: Congestion modes (Table 1 blanks out the names; these are slow-start
#: and congestion-avoidance, per the surrounding prose).
SLOW_START = "slow-start"
CONG_AVOID = "cong-avoid"


class TcpPrSender(Agent):
    """TCP-PR sending endpoint.

    Args:
        sim: Owning simulator.
        node: Node the sender is attached to.
        flow_id: Flow identifier shared with the receiver.
        peer: Name of the receiver's node.
        config: :class:`PrConfig`; defaults are the paper's.
    """

    variant: str = "tcp-pr"

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        flow_id: int,
        peer: str,
        config: Optional[PrConfig] = None,
    ) -> None:
        super().__init__(sim, node, flow_id)
        self.peer = peer
        self.config = config if config is not None else PrConfig()
        self.estimator = MaxRttEstimator(
            alpha=self.config.alpha,
            beta=self.config.beta,
            initial_mxrtt=self.config.initial_mxrtt,
            newton_iterations=self.config.newton_iterations,
            exact_root=self.config.exact_root,
        )
        self.mode = SLOW_START
        self.cwnd: float = self.config.initial_cwnd
        self.ssthr: float = self.config.initial_ssthresh
        #: seq -> (sent_time, cwnd_at_send, next_check, arm_stamp) for
        #: packets in flight.  ``next_check`` is the quantized time the
        #: packet's drop deadline is next examined; ``arm_stamp`` orders
        #: same-tick examinations exactly like the per-packet timer
        #: events they replace (see ``_sweep_drop_checks``).
        self.to_be_ack: Dict[int, Tuple[float, float, float, int]] = {}
        #: Min-heap of in-flight sequence numbers, pushed on every send
        #: and popped lazily by ``_collect_acked`` — entries whose seq has
        #: left ``to_be_ack`` (drop-declared, SACKed) are skipped on pop.
        #: Turns the per-ACK cumulative scan from O(window) into
        #: O(newly acked · log window).
        self._inflight_heap: List[int] = []
        #: Heap of sequence numbers awaiting retransmission.
        self._retx_heap: List[int] = []
        self._retx_pending: Set[int] = set()
        self.snd_nxt = 0  # next never-sent segment
        self.cum_ack = 0  # highest cumulative ACK seen
        self.memorize: Set[int] = set()
        self.cburst = 0
        self.stats = PrStats()
        #: Metrics probe installed by repro.obs (None = not observed;
        #: every hook below is a single is-not-None check then).
        self.obs: Optional[Any] = None
        self._retransmitted: Set[int] = set()
        #: Transient mxrtt inflation (Section 3.2).  The paper's update
        #: rule ``mxrtt := beta * ewrtt`` runs on every ACK, so a forced
        #: inflation only lasts until the next acknowledged packet.
        self._mxrtt_override: Optional[float] = None
        self._blocked_until = -1.0
        self._unblock_handle: Optional["EventHandle"] = None
        self._extreme_active = False
        self._started = False
        #: The one coalesced drop timer for the whole flow (None =
        #: disarmed).  Armed at the earliest ``next_check`` over the
        #: in-flight set; on fire it sweeps every due packet and re-arms
        #: once — replacing one heap event per packet sent.
        self._timer_handle: Optional["EventHandle"] = None
        self._sweep_cb = self._sweep_drop_checks
        self._receiver_window_f = float(self.config.receiver_window)
        self._label_timer = f"pr timer f{flow_id}"
        self._label_start = f"pr start f{flow_id}"
        self._label_unblock = f"pr unblock f{flow_id}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, at: float = 0.0) -> None:
        """Begin transmitting at simulation time ``at``."""
        if self._started:
            return
        self._started = True
        self.sim.post(at, self._flush_cwnd, None, self._label_start)

    @property
    def done(self) -> bool:
        """True once a capped transfer has been fully acknowledged."""
        total = self.config.total_segments
        if total is None:
            return False
        return (
            self.snd_nxt >= total
            and not self.to_be_ack
            and not self._retx_pending
        )

    @property
    def mxrtt(self) -> float:
        """Current drop-detection threshold."""
        base = max(self.estimator.mxrtt, self.config.min_mxrtt)
        if self._mxrtt_override is not None:
            base = max(base, self._mxrtt_override)
        return min(base, self.config.max_mxrtt)

    @property
    def ewrtt(self) -> Optional[float]:
        return self.estimator.ewrtt

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        if not packet.is_ack:
            return
        self.stats.acks_received += 1
        acked = self._collect_acked(packet)
        if packet.ack > self.cum_ack:
            self.cum_ack = packet.ack
        if not acked:
            return  # duplicate ACK with no new information: ignored by design
        # Progress resumes: the next "mxrtt := beta * ewrtt" assignment
        # (inside per-packet processing) supersedes any forced inflation.
        self._mxrtt_override = None
        for seq in acked:
            self._process_acked_packet(seq)
        if self.obs is not None:
            self.obs.on_ack(self)
        self._flush_cwnd()
        if self.sim.sanitize:
            self._sanitize_check()

    def _collect_acked(self, packet: Packet) -> List[int]:
        """Packets newly acknowledged by this ACK (cumulative + SACK)."""
        ack = packet.ack
        to_be_ack = self.to_be_ack
        inflight = self._inflight_heap
        acked: List[int] = []
        # Pops come out ascending, so a resent seq's duplicate heap
        # entries are adjacent — the acked[-1] check dedupes them.
        while inflight and inflight[0] < ack:
            seq = heapq.heappop(inflight)
            if seq in to_be_ack and (not acked or acked[-1] != seq):
                acked.append(seq)
        sacked: Set[int] = set()
        if self.config.use_sack_accounting and packet.sack_blocks:
            for start, end in packet.sack_blocks:
                for seq in range(start, end):
                    if seq >= ack:
                        sacked.add(seq)
                        if seq in to_be_ack:
                            acked.append(seq)
        # Cancel pending retransmissions this ACK proves unnecessary
        # (the "dropped" packet reached the receiver after all).
        if self._retx_pending:
            for seq in list(self._retx_pending):
                if seq < ack or seq in sacked:
                    self._retx_pending.discard(seq)
                    self.stats.spurious_drops += 1
        acked.sort()
        return acked

    def _process_acked_packet(self, seq: int) -> None:
        """Table 1, "ACK received for packet n" (run once per packet)."""
        sent_time = self.to_be_ack.pop(seq)[0]
        self.stats.packets_acked += 1
        # Lines 14-15: ewrtt/mxrtt update (skipped for retransmissions,
        # whose RTT sample would be ambiguous — Karn's rule).
        if seq not in self._retransmitted:
            sample = self.sim.now - sent_time
            ewrtt = self.estimator.observe(sample, self.cwnd)
            if self.sim.sanitize and ewrtt < sample - 1e-9:
                raise InvariantViolation(
                    "ewrtt-max-tracking",
                    f"ewrtt={ewrtt!r} fell below its own RTT sample "
                    f"{sample!r}: the estimator must track the maximum "
                    "(ewrtt = max(alpha^(1/cwnd) * ewrtt, sample))",
                )
        else:
            self._retransmitted.discard(seq)
        # Lines 16-17: list removal.
        self._memorize_discard(seq)
        # Lines 18-23: window growth.
        if self.mode == SLOW_START and self.cwnd + 1.0 <= self.ssthr:
            self.cwnd += 1.0
        else:
            self.mode = CONG_AVOID
            self.cwnd += 1.0 / self.cwnd
        if self.cwnd > self.stats.cwnd_peak:
            self.stats.cwnd_peak = self.cwnd

    def _memorize_discard(self, seq: int) -> None:
        if seq in self.memorize:
            self.memorize.discard(seq)
            if not self.memorize:
                self.cburst = 0
                self._extreme_active = False

    # ------------------------------------------------------------------
    # Timer-based drop detection
    # ------------------------------------------------------------------
    def _quantize(self, fire_at: float) -> float:
        """Round a timer deadline up to the next coarse tick, if any."""
        granularity = self.config.timer_granularity
        if granularity <= 0.0:
            return fire_at
        ticks = math.ceil(fire_at / granularity - 1e-12)
        return ticks * granularity

    def _arm_drop_timer(self, check: float, stamp: int) -> None:
        """Keep the single flow timer armed no later than ``check``.

        If the armed timer already fires at or before ``check`` there is
        nothing to do — a too-early fire just sweeps, finds nothing due,
        and re-arms (exactly how the per-packet events it replaces went
        stale).  Only a *later* armed time must be pulled forward, which
        happens when ``mxrtt`` collapses (an extreme-loss override being
        cleared) so a newer packet's deadline precedes an older one's.

        ``stamp`` is the engine seq reserved when ``check`` was armed,
        so the coalesced event keeps the exact tie-break position of the
        per-packet event it stands in for.
        """
        handle = self._timer_handle
        if handle is not None:
            if handle.time <= check:
                return
            handle.cancel()
        self._timer_handle = self.sim.schedule(
            check, self._sweep_cb, label=self._label_timer, seq=stamp
        )

    def _sweep_drop_checks(self) -> None:
        """Examine every packet whose ``next_check`` has arrived.

        Due packets are processed in arm-stamp order — the order their
        individual timer events would have popped off the heap — and the
        drop deadline ``sent + mxrtt`` is re-read per packet, because a
        declare earlier in the same sweep can inflate ``mxrtt``
        (backoff doubling, extreme loss) and postpone the rest.  A
        packet found not yet expired re-arms at its new quantized
        deadline; timers never fire early w.r.t. the estimate.
        """
        self._timer_handle = None
        to_be_ack = self.to_be_ack
        if not to_be_ack:
            return
        now = self.sim.now
        due = sorted(
            (entry[3], seq)
            for seq, entry in to_be_ack.items()
            if entry[2] <= now
        )
        for _, seq in due:
            entry = to_be_ack.get(seq)
            if entry is None or entry[2] > now:
                continue  # declared and resent earlier in this sweep
            if now >= entry[0] + self.mxrtt:
                self._declare_drop(seq)
            else:
                to_be_ack[seq] = (
                    entry[0],
                    entry[1],
                    self._quantize(entry[0] + self.mxrtt),
                    self.sim.reserve_seq(),
                )
        if to_be_ack:
            self._arm_drop_timer(
                *min((e[2], e[3]) for e in to_be_ack.values())
            )
        if self.sim.sanitize:
            self._sanitize_check()

    def _declare_drop(self, seq: int) -> None:
        """Table 1, "time > time(n) + mxrtt (drop detected for packet n)"."""
        cwnd_at_send = self.to_be_ack.pop(seq)[1]
        self.stats.drops_detected += 1
        if self.obs is not None:
            self.obs.on_loss(self)
        self._queue_retransmission(seq)
        if seq in self.memorize:
            # Part of an already-reacted-to loss event: no window cut.
            self.stats.memorize_drops += 1
            self.memorize.discard(seq)
            self.cburst += 1
            if (
                self.config.extreme_loss_enabled
                and not self._extreme_active
                and self.cburst > self.cwnd / 2.0 + 1.0
            ):
                self._extreme_loss()
            if not self.memorize:
                self.cburst = 0
                self._extreme_active = False
        else:
            self._new_drop(seq, cwnd_at_send)
        self._flush_cwnd()

    def _new_drop(self, seq: int, cwnd_at_send: float) -> None:
        if self.cwnd <= 1.0 + 1e-9:
            # A new drop while cwnd = 1 (a failed backoff round, or the
            # very first segment lost): halving is meaningless, so double
            # mxrtt instead — Section 3.2's exponential backoff emulation.
            self._double_mxrtt()
            return
        # Lines 8-10: halve relative to the window when the packet was
        # sent (insensitive to detection delay), snapshot the outstanding
        # packets, and lower ssthr so the mode logic lands in congestion
        # avoidance.
        basis = cwnd_at_send if self.config.halve_at_send_cwnd else self.cwnd
        self.cwnd = max(basis / 2.0, 1.0)
        self.ssthr = self.cwnd
        self.stats.window_cuts += 1
        if self.config.enable_memorize:
            self.memorize = set(self.to_be_ack)

    def _double_mxrtt(self) -> None:
        """Exponential backoff: a failed round at cwnd = 1 doubles mxrtt.

        The retransmission itself is not delayed (it goes out as soon as
        the window allows, like TCP's RTO retransmission); only the
        *patience* for its ACK doubles.  Like a standard timeout, the
        slow-start threshold collapses to 2 (flightsize/2 with one packet
        in flight).
        """
        self.stats.backoff_doublings += 1
        self._mxrtt_override = min(self.mxrtt * 2.0, self.config.max_mxrtt)
        self.ssthr = min(self.ssthr, 2.0)
        self.mode = SLOW_START

    def _extreme_loss(self) -> None:
        """Section 3.2: emulate a NewReno/SACK coarse timeout."""
        self.stats.extreme_events += 1
        self._extreme_active = True
        self.ssthr = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self.mode = SLOW_START
        new_mxrtt = max(self.mxrtt, self.config.extreme_mxrtt_floor)
        self._mxrtt_override = new_mxrtt
        # Fold the remaining outstanding packets into the loss event so
        # their inevitable timer expirations cause no further response.
        if self.config.enable_memorize:
            self.memorize |= set(self.to_be_ack)
        self._block_sending(new_mxrtt)

    def _block_sending(self, duration: float) -> None:
        until = self.sim.now + duration
        if until <= self._blocked_until:
            return
        self._blocked_until = until
        if self._unblock_handle is not None:
            self._unblock_handle.cancel()
        self._unblock_handle = self.sim.schedule(
            until, self._flush_cwnd, label=self._label_unblock
        )

    # ------------------------------------------------------------------
    # Sanitizer (``Simulator(sanitize=True)``)
    # ------------------------------------------------------------------
    def _sanitize_check(self) -> None:
        """Verify the Table 1/2 structural invariants after an ACK/sweep.

        Called only under ``sim.sanitize`` (read dynamically, so tests
        may flip the flag after building a scenario).  Each check is a
        set operation over the in-flight window — cheap relative to the
        ACK processing that precedes it, but not free, hence the flag.
        """
        to_be_ack = self.to_be_ack
        overlap = self._retx_pending.intersection(to_be_ack)
        if overlap:
            raise InvariantViolation(
                "pr-list-disjoint",
                f"packets {sorted(overlap)!r} are simultaneously awaiting "
                "retransmission (to-be-sent) and in flight (to-be-ack); "
                "Table 1 moves a packet between the lists, never copies",
            )
        stray = self.memorize.difference(to_be_ack)
        if stray:
            raise InvariantViolation(
                "pr-memorize-subset",
                f"memorize holds packets {sorted(stray)!r} that are no "
                "longer in to-be-ack; every removal path must also "
                "discard from memorize",
            )
        if not self.memorize and (self.cburst != 0 or self._extreme_active):
            raise InvariantViolation(
                "pr-cburst-reset",
                f"memorize is empty but cburst={self.cburst} "
                f"extreme_active={self._extreme_active}; both must reset "
                "when the loss event's last packet leaves memorize",
            )
        # The Section 3.2 trigger compares against cwnd at increment
        # time, and cwnd can shrink afterwards (a fresh cut), so the
        # sound run-time bound is against the all-time window peak: a
        # legitimate cburst can never have passed it without firing.
        limit = max(self.cwnd, self.stats.cwnd_peak) / 2.0 + 1.0
        if (
            self.config.extreme_loss_enabled
            and not self._extreme_active
            and self.cburst > limit
        ):
            raise InvariantViolation(
                "pr-cburst-bound",
                f"cburst={self.cburst} exceeds cwnd/2 + 1 (peak-window "
                f"bound {limit!r}) without the extreme-loss response "
                "having fired (Section 3.2 trigger missed)",
            )
        if self.cwnd < 1.0 - 1e-9:
            raise InvariantViolation(
                "pr-cwnd-floor",
                f"cwnd={self.cwnd!r} fell below 1 segment; every window "
                "cut clamps at max(.., 1.0)",
            )

    # ------------------------------------------------------------------
    # Send path (Table 1, flush-cwnd)
    # ------------------------------------------------------------------
    def _queue_retransmission(self, seq: int) -> None:
        if seq not in self._retx_pending:
            self._retx_pending.add(seq)
            heapq.heappush(self._retx_heap, seq)

    def _flush_cwnd(self) -> None:
        if self.sim.now < self._blocked_until:
            return
        window = min(self.cwnd, self._receiver_window_f)
        while window > len(self.to_be_ack):
            seq = self._next_seq()
            if seq is None:
                break
            self._send_segment(seq)

    def _next_seq(self) -> Optional[int]:
        """Smallest eligible sequence number (retransmissions first)."""
        while self._retx_heap:
            seq = self._retx_heap[0]
            if seq not in self._retx_pending:
                heapq.heappop(self._retx_heap)  # cancelled entry
                continue
            heapq.heappop(self._retx_heap)
            self._retx_pending.discard(seq)
            return seq
        total = self.config.total_segments
        if total is not None and self.snd_nxt >= total:
            return None
        return self.snd_nxt

    def _send_segment(self, seq: int) -> None:
        is_retransmit = seq < self.snd_nxt
        if is_retransmit:
            self.stats.retransmits += 1
            self._retransmitted.add(seq)
            if self.obs is not None:
                self.obs.on_retransmit(self)
        else:
            self.snd_nxt += 1
        now = self.sim.now
        check = self._quantize(now + self.mxrtt)
        stamp = self.sim.reserve_seq()
        self.to_be_ack[seq] = (now, self.cwnd, check, stamp)
        heapq.heappush(self._inflight_heap, seq)
        self._arm_drop_timer(check, stamp)
        self.stats.data_packets_sent += 1
        packet = Packet(
            "data",
            src=self.node.name,
            dst=self.peer,
            flow_id=self.flow_id,
            seq=seq,
            size_bytes=self.config.mss_bytes,
            retransmit=is_retransmit,
        )
        self.inject(packet)

    # ------------------------------------------------------------------
    # StatefulComponent protocol (see repro.checkpoint.state)
    # ------------------------------------------------------------------
    #: Wiring excluded from snapshots: engine references, the probe,
    #: the two live heap handles (sweep timer, receiver-window unblock),
    #: and the cached callbacks/labels.
    _SNAPSHOT_EXCLUDE = frozenset(
        {
            "sim",
            "node",
            "obs",
            "_timer_handle",
            "_unblock_handle",
            "_sweep_cb",
            "_label_timer",
            "_label_start",
            "_label_unblock",
        }
    )

    def snapshot_state(self) -> Dict[str, Any]:
        from repro.checkpoint.state import snapshot_object

        return snapshot_object(self, exclude=self._SNAPSHOT_EXCLUDE)

    def restore_state(self, state: "Mapping[str, Any]") -> None:
        from repro.checkpoint.state import restore_object

        restore_object(self, state)

    def __repr__(self) -> str:
        return (
            f"<TcpPrSender flow={self.flow_id} mode={self.mode} "
            f"cwnd={self.cwnd:.2f} inflight={len(self.to_be_ack)} "
            f"mxrtt={self.mxrtt:.3f}>"
        )

"""The ewrtt / mxrtt estimator at the heart of TCP-PR (Section 3.1).

On every acknowledged packet the sender updates an exponentially weighted
estimate of the *maximum* round-trip time:

    ewrtt = max(alpha**(1/cwnd) * ewrtt,  sample_rtt)

with ``0 < alpha < 1``.  The exponent ``1/cwnd`` makes the decay rate
per-RTT rather than per-ACK: the update runs ``cwnd`` times per RTT, so
ewrtt decays by exactly ``alpha`` per RTT regardless of the window size.
Unlike a smoothed mean, the ``max`` keeps ewrtt pinned to RTT spikes for
a while — deliberately, since mxrtt must upper-bound the RTT.

The drop-detection threshold is ``mxrtt = beta * ewrtt`` with
``beta > 1``.  The paper's defaults are alpha = 0.995, beta = 3.0.

``alpha**(1/cwnd)`` is approximated exactly as the paper's footnote 5
describes — Newton's method on ``x**cwnd = alpha`` with two iterations:

    x := 1
    for i := 1 to n:
        x := (cwnd - 1)/cwnd * x + alpha / (cwnd * x**(cwnd - 1))
"""

from __future__ import annotations

from typing import Optional


def newton_fractional_root(alpha: float, cwnd: float, iterations: int = 2) -> float:
    """Approximate ``alpha ** (1/cwnd)`` with the paper's Newton loop.

    Args:
        alpha: Base in (0, 1].
        cwnd: Exponent denominator, >= 1 (the congestion window).
        iterations: Newton steps (the paper uses n = 2).
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if cwnd < 1.0:
        raise ValueError(f"cwnd must be >= 1, got {cwnd}")
    x = 1.0
    for _ in range(iterations):
        x = (cwnd - 1.0) / cwnd * x + alpha / (cwnd * x ** (cwnd - 1.0))
    return x


class MaxRttEstimator:
    """Maximum-tracking RTT estimator producing the mxrtt drop threshold.

    Args:
        alpha: Per-RTT memory factor in (0, 1).
        beta: Threshold multiplier (> 1 for correct operation; the paper
            sweeps beta down to 1 in Figure 4, so only beta > 0 is enforced).
        initial_mxrtt: Threshold used before the first RTT sample (plays
            the role of TCP's initial 3 s RTO).
        newton_iterations: Steps for the fractional-root approximation.
        exact_root: Use ``alpha ** (1/cwnd)`` exactly instead of Newton's
            method (ablation knob).

    Attributes:
        ewrtt: Current estimate (None until the first sample).
        samples: Number of RTT observations absorbed.
    """

    def __init__(
        self,
        alpha: float = 0.995,
        beta: float = 3.0,
        initial_mxrtt: float = 3.0,
        newton_iterations: int = 2,
        exact_root: bool = False,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if beta <= 0.0:
            raise ValueError(f"beta must be positive, got {beta}")
        if initial_mxrtt <= 0.0:
            raise ValueError(f"initial_mxrtt must be positive, got {initial_mxrtt}")
        self.alpha = alpha
        self.beta = beta
        self.initial_mxrtt = initial_mxrtt
        self.newton_iterations = newton_iterations
        self.exact_root = exact_root
        self.ewrtt: Optional[float] = None
        self.samples = 0

    def decay_factor(self, cwnd: float) -> float:
        """The per-update decay ``alpha**(1/cwnd)`` (Newton or exact)."""
        cwnd = max(cwnd, 1.0)
        if self.exact_root:
            return self.alpha ** (1.0 / cwnd)
        return newton_fractional_root(self.alpha, cwnd, self.newton_iterations)

    def observe(self, sample_rtt: float, cwnd: float) -> float:
        """Absorb one RTT sample (equation (1) of the paper); returns ewrtt."""
        if sample_rtt < 0:
            raise ValueError(f"negative RTT sample {sample_rtt}")
        self.samples += 1
        if self.ewrtt is None:
            self.ewrtt = sample_rtt
        else:
            self.ewrtt = max(self.decay_factor(cwnd) * self.ewrtt, sample_rtt)
        return self.ewrtt

    @property
    def mxrtt(self) -> float:
        """Current drop-detection threshold ``beta * ewrtt``."""
        if self.ewrtt is None:
            return self.initial_mxrtt
        return self.beta * self.ewrtt

    def force_mxrtt(self, value: float) -> None:
        """Set mxrtt directly (extreme-loss handling, Section 3.2).

        Subsequent :meth:`observe` calls update from this level, so the
        inflation decays once ACKs start flowing again — analogous to RTO
        re-estimation after backoff.
        """
        if value <= 0:
            raise ValueError(f"mxrtt must be positive, got {value}")
        self.ewrtt = value / self.beta

    def __repr__(self) -> str:
        ewrtt = f"{self.ewrtt:.4f}" if self.ewrtt is not None else "None"
        return (
            f"<MaxRttEstimator alpha={self.alpha} beta={self.beta} "
            f"ewrtt={ewrtt} mxrtt={self.mxrtt:.4f}>"
        )

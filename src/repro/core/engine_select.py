"""Engine selection: the pure-python hot core vs the compiled one.

The simulator's hot core (event loop, link/node forwarding) exists in
two builds with **identical semantics**:

* the *pure* build — the plain Python classes in
  :mod:`repro.sim.engine`, :mod:`repro.net.link`, :mod:`repro.net.node`
  that every checkout runs out of the box; and
* the *compiled* build — the optional C accelerator extension
  :mod:`repro._cext._core`, whose classes **subclass** the pure ones and
  override only the hot methods (see ``docs/COMPILED.md``).  It exists
  only after ``python setup.py build_ext --inplace`` (or an install with
  a working C toolchain).

Selection is **late-bound at construction time**: constructing
``Simulator(...)`` consults this module (via a ``__new__`` hook on the
pure class) and returns an instance of whichever implementation is
active; ``Link``/``Node`` then follow the simulator instance they are
attached to.  Import order therefore never matters, and a single
process can build pure and compiled simulators side by side (the
benchmark A/B does exactly that, via :func:`use_engine`).

Precedence, highest first:

1. an explicit :func:`activate`/:func:`use_engine` call (the CLI's
   ``--engine`` flag lands here);
2. the ``REPRO_ENGINE`` environment variable (``auto``/``pure``/
   ``compiled``);
3. the default, ``auto``.

``auto`` uses the compiled classes when the extension imports and
silently falls back to pure otherwise — zero behavior change, zero
warnings.  ``compiled`` refuses to run without the extension: it raises
:class:`EngineUnavailableError` with build instructions rather than
silently handing back the slow path.  ``pure`` never touches the
extension, even when it is present.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple

#: Recognized engine modes.
MODES: Tuple[str, ...] = ("auto", "pure", "compiled")

#: Environment variable consulted when no explicit mode was activated.
ENV_VAR = "REPRO_ENGINE"

#: The extension module implementing the compiled classes.
EXTENSION_MODULE = "repro._cext._core"

#: One-line build recipe, quoted in error messages and docs.
BUILD_HINT = "python setup.py build_ext --inplace"


class EngineUnavailableError(RuntimeError):
    """``REPRO_ENGINE=compiled`` (or ``--engine compiled``) was requested
    but the compiled extension is not importable."""


@dataclass(frozen=True)
class EngineInfo:
    """What is currently active and why.

    Attributes:
        mode: The requested mode (``auto``/``pure``/``compiled``).
        name: The engine actually in use (``pure`` or ``compiled``).
        extension: Filesystem path of the loaded extension (compiled
            engine only).
        fallback_reason: Why ``auto`` fell back to pure (import error
            text), or ``None``.
    """

    mode: str
    name: str
    extension: Optional[str]
    fallback_reason: Optional[str]


_active: Optional[EngineInfo] = None
_compiled_classes: Optional[Dict[str, type]] = None
_compiled_import_error: Optional[str] = None


def _import_compiled() -> Optional[Dict[str, type]]:
    """Import the extension and return its class map (memoized)."""
    global _compiled_classes, _compiled_import_error
    if _compiled_classes is not None:
        return _compiled_classes
    if _compiled_import_error is not None:
        return None
    try:
        import importlib

        module = importlib.import_module(EXTENSION_MODULE)
        _compiled_classes = {
            "Simulator": module.Simulator,
            "Link": module.Link,
            "Node": module.Node,
            "__file__": module.__file__,
        }
    except Exception as exc:  # lint: allow-broad-except(any extension failure must degrade to the pure engine, never crash an import)
        _compiled_import_error = f"{type(exc).__name__}: {exc}"
        return None
    return _compiled_classes


def compiled_available() -> bool:
    """True when the compiled extension imports on this interpreter."""
    return _import_compiled() is not None


def resolve_mode(explicit: Optional[str] = None) -> str:
    """The engine mode in effect: explicit arg > env var > ``auto``."""
    mode = explicit if explicit is not None else os.environ.get(ENV_VAR, "auto")
    if mode not in MODES:
        raise ValueError(
            f"unknown engine mode {mode!r}: expected one of {'/'.join(MODES)} "
            f"(from {'argument' if explicit is not None else ENV_VAR})"
        )
    return mode


def activate(mode: Optional[str] = None) -> EngineInfo:
    """Select the engine build used by subsequent constructions.

    Args:
        mode: ``auto``/``pure``/``compiled``, or ``None`` to resolve
            from ``REPRO_ENGINE`` (default ``auto``).

    Returns:
        The resulting :class:`EngineInfo`.

    Raises:
        EngineUnavailableError: mode is ``compiled`` and the extension
            is not importable — the message carries the build command.
        ValueError: unknown mode string.
    """
    global _active
    resolved = resolve_mode(mode)
    extension: Optional[str] = None
    fallback: Optional[str] = None
    classes: Optional[Dict[str, type]] = None
    if resolved in ("auto", "compiled"):
        classes = _import_compiled()
        if classes is None:
            if resolved == "compiled":
                raise EngineUnavailableError(
                    "REPRO_ENGINE=compiled was requested but the compiled "
                    f"extension ({EXTENSION_MODULE}) is not importable"
                    + (
                        f" ({_compiled_import_error})"
                        if _compiled_import_error
                        else ""
                    )
                    + f". Build it with `{BUILD_HINT}` (requires a C "
                    "toolchain and CPython headers), or run with "
                    "REPRO_ENGINE=auto|pure to use the pure-python engine."
                )
            fallback = _compiled_import_error
        else:
            extension = str(classes["__file__"])
    name = "compiled" if classes is not None else "pure"
    _install(classes)
    if mode is not None:
        # Explicit choices propagate to spawned worker processes, which
        # re-resolve from the environment on first construction.
        os.environ[ENV_VAR] = resolved
    _active = EngineInfo(
        mode=resolved, name=name, extension=extension, fallback_reason=fallback
    )
    return _active


def _install(classes: Optional[Dict[str, type]]) -> None:
    """Point the construction hooks at the chosen implementation set."""
    from repro.net import link as _link
    from repro.net import node as _node
    from repro.sim import engine as _engine

    if classes is None:
        _engine._COMPILED_SIMULATOR = None
        _link._COMPILED_LINK = None
        _link._COMPILED_SIMULATOR = None
        _node._COMPILED_NODE = None
        _node._COMPILED_SIMULATOR = None
    else:
        _engine._COMPILED_SIMULATOR = classes["Simulator"]
        _link._COMPILED_LINK = classes["Link"]
        _link._COMPILED_SIMULATOR = classes["Simulator"]
        _node._COMPILED_NODE = classes["Node"]
        _node._COMPILED_SIMULATOR = classes["Simulator"]


def active() -> EngineInfo:
    """The active engine, activating from the environment on first use."""
    if _active is None:
        return activate(None)
    return _active


def engine_name() -> str:
    """``"pure"`` or ``"compiled"`` — whichever is currently active."""
    return active().name


@contextmanager
def use_engine(mode: str) -> Iterator[EngineInfo]:
    """Temporarily force an engine build (tests and the benchmark A/B).

    Simulators constructed inside the ``with`` block use the forced
    build; previously constructed simulators are untouched (selection is
    per construction).  Restores the prior selection on exit, including
    the environment variable.
    """
    global _active
    previous = _active
    previous_env = os.environ.get(ENV_VAR)
    info = activate(mode)
    try:
        yield info
    finally:
        if previous_env is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous_env
        if previous is None:
            _active = None
            _install(None)
            # Next construction re-resolves lazily from the environment.
        else:
            _active = previous
            _install(
                _import_compiled() if previous.name == "compiled" else None
            )


# ----------------------------------------------------------------------
# Engine-portable pickling (see docs/COMPILED.md and repro.checkpoint)
# ----------------------------------------------------------------------
# Compiled instances must never pickle by class reference: a checkpoint
# written by a compiled build has to load on a pure-only checkout.  The
# compiled classes' __reduce_ex__ routes through these constructors,
# which rebuild on whatever engine is active *at load time* — state is
# then applied by pickle's ordinary slot-state protocol, which both
# builds share attribute-for-attribute.


def _unpickle_simulator() -> Any:
    from repro.sim.engine import Simulator

    cls = _active_class("Simulator", Simulator)
    return cls.__new__(cls)


def _unpickle_link() -> Any:
    from repro.net.link import Link

    cls = _active_class("Link", Link)
    return cls.__new__(cls)


def _unpickle_node() -> Any:
    from repro.net.node import Node

    cls = _active_class("Node", Node)
    return cls.__new__(cls)


def _active_class(name: str, pure: type) -> type:
    if active().name == "compiled":
        classes = _import_compiled()
        if classes is not None:
            return classes[name]
    return pure

"""TCP-PR — the paper's primary contribution.

:class:`TcpPrSender` detects losses exclusively with per-packet timers
(never duplicate ACKs), making it immune to persistent packet reordering
of both data and acknowledgments.  See Section 3 of the paper and the
module docs of :mod:`repro.core.pr` for the full algorithm.
"""

from repro.core.estimator import MaxRttEstimator, newton_fractional_root
from repro.core.pr import PrConfig, TcpPrSender

__all__ = [
    "MaxRttEstimator",
    "PrConfig",
    "TcpPrSender",
    "newton_fractional_root",
]

"""Routing strategies.

* :func:`~repro.routing.shortest_path.install_shortest_path_routes` —
  destination-based Dijkstra tables (single-path).
* :class:`~repro.routing.multipath.EpsilonMultipathPolicy` — the paper's
  ε-parameterized per-packet multipath family (Section 5): ε = 0 spreads
  packets uniformly over all discovered disjoint paths, ε → ∞ collapses to
  shortest-path routing.
* :class:`~repro.routing.flap.RouteFlapper` — periodic oscillation between
  alternate routes, modelling the MANET/route-flap motivation of Section 1.
"""

from repro.routing.flap import RouteFlapper
from repro.routing.multipath import (
    EpsilonMultipathPolicy,
    FlowHashPolicy,
    PathSet,
    discover_paths,
    epsilon_weights,
)
from repro.routing.shortest_path import (
    install_shortest_path_routes,
    shortest_path,
)

__all__ = [
    "EpsilonMultipathPolicy",
    "FlowHashPolicy",
    "PathSet",
    "RouteFlapper",
    "discover_paths",
    "epsilon_weights",
    "install_shortest_path_routes",
    "shortest_path",
]

"""Route flapping: periodic oscillation among alternate paths.

Models the Section 1 motivation — "oscillations or 'route flaps' among
routes with different round-trip times are a common cause of out-of-order
packets" — and MANET route recomputation.  Unlike
:class:`~repro.routing.multipath.EpsilonMultipathPolicy` (which picks a
path per packet), a flapper uses one path at a time and switches the
active path on a timer, so bursts of packets land on paths with different
delays and arrive interleaved.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.net.network import Network
from repro.net.packet import Packet
from repro.routing.multipath import PathSet, discover_paths
from repro.sim.errors import SimulationError


class RouteFlapper:
    """Path policy that hops among candidate paths every ``period`` seconds.

    Args:
        network: Owning network.
        origin: Node the policy is installed on.
        dst: Destination whose traffic flaps.
        period: Seconds between route changes.
        jitter: Uniform ±jitter fraction applied to each period (0 disables).
        randomize: If True pick the next path uniformly at random; if False
            cycle round-robin.

    Attributes:
        flaps: Number of route changes performed so far.
    """

    def __init__(
        self,
        network: Network,
        origin: str,
        dst: str,
        period: float,
        jitter: float = 0.0,
        randomize: bool = False,
        paths: Optional[PathSet] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"flap period must be positive, got {period}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.network = network
        self.origin = origin
        self.dst = dst
        self.period = period
        self.jitter = jitter
        self.randomize = randomize
        self.path_set = paths if paths is not None else discover_paths(
            network, origin, dst
        )
        if len(self.path_set) < 2:
            raise ValueError(
                f"route flapping needs >= 2 disjoint paths {origin}->{dst}, "
                f"found {len(self.path_set)}"
            )
        self._rng: random.Random = network.sim.rng.stream(
            f"flap:{origin}->{dst}"
        )
        self._active = 0
        self._disabled: set = set()
        self.flaps = 0
        self._schedule_next()

    @property
    def active_path(self) -> Sequence[str]:
        return self.path_set.paths[self._active]

    # -- Fault hooks (repro.faults.PathBlackout) ------------------------
    def disable_path(self, dst: str, index: int) -> None:
        """Blackout path ``index``: the flapper stops landing on it.

        If the blacked-out path is currently active, an immediate forced
        flap moves traffic off it (counted in :attr:`flaps`).
        """
        self._check_path(dst, index)
        self._disabled.add(index)
        if len(self._disabled) >= len(self.path_set):
            raise SimulationError(
                f"every path {self.origin}->{self.dst} is disabled (blackout "
                "schedules must leave at least one path usable)"
            )
        if self._active == index:
            self._flap_to_enabled()

    def enable_path(self, dst: str, index: int) -> None:
        """End the blackout of path ``index``."""
        self._check_path(dst, index)
        self._disabled.discard(index)

    def disabled_paths(self, dst: str) -> List[int]:
        return sorted(self._disabled)

    def _check_path(self, dst: str, index: int) -> None:
        if dst != self.dst:
            raise SimulationError(
                f"flapper on {self.origin!r} routes to {self.dst!r}, "
                f"not {dst!r}"
            )
        if not 0 <= index < len(self.path_set):
            raise SimulationError(
                f"path index {index} out of range for {self.origin}->{self.dst} "
                f"({len(self.path_set)} paths)"
            )

    # -- PathPolicy protocol -------------------------------------------
    def choose_route(self, packet: Packet) -> Optional[List[str]]:
        if packet.dst != self.dst:
            return None
        return list(self.path_set.paths[self._active])

    def install(self) -> "RouteFlapper":
        self.network.node(self.origin).path_policy = self
        return self

    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        delay = self.period
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        self.network.sim.schedule_in(delay, self._flap, label="route flap")

    def _flap(self) -> None:
        self._flap_to_enabled()
        self._schedule_next()

    def _flap_to_enabled(self) -> None:
        if self.randomize:
            choices = [
                i for i in range(len(self.path_set))
                if i != self._active and i not in self._disabled
            ]
            if choices:
                self._active = self._rng.choice(choices)
        else:
            candidate = self._active
            for _ in range(len(self.path_set)):
                candidate = (candidate + 1) % len(self.path_set)
                if candidate not in self._disabled:
                    break
            self._active = candidate
        self.flaps += 1

"""Single-path (shortest-path) routing.

Thin wrappers around Dijkstra on the network graph; these produce the
classic destination-based forwarding tables used by every experiment that
does not involve multipath routing.
"""

from __future__ import annotations

from typing import List

import networkx as nx

from repro.net.network import Network, install_static_routes


def install_shortest_path_routes(network: Network, weight: str = "delay") -> None:
    """Install shortest-path next-hop tables on every node.

    ``weight`` selects the edge cost attribute (``"delay"`` by default).
    """
    install_static_routes(network, weight=weight)


def shortest_path(network: Network, src: str, dst: str, weight: str = "delay") -> List[str]:
    """The shortest path between two nodes as a list of node names."""
    return nx.dijkstra_path(network.graph(), src, dst, weight=weight)

"""The ε-parameterized per-packet multipath routing family (Section 5).

The paper routes packets of a single flow over multiple paths, choosing
paths randomly per packet.  A single parameter ε controls how strongly
path delay is penalized:

* ε = 0  — delay not penalized at all: *all independent paths from source
  to destination are used with equal probability* (full multipath);
* ε = 500 (≈ ∞) — delay heavily penalized: shortest-path routing;
* intermediate ε — a compromise.

The exact strategy construction lives in the paper's external references
[12, 6] (routing-game saddle policies).  We reproduce the stated limiting
behaviour with a softmin distribution over node-disjoint paths:

    P(path p) ∝ exp(−ε · (cost(p) − min_cost) / min_cost)

where cost(p) is the end-to-end propagation delay of p.  The min-cost
normalization makes ε dimensionless, so the same ε values the paper
sweeps (0, 1, 4, 10, 500) produce the same qualitative regimes regardless
of whether links have 10 ms or 60 ms delay.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.net.network import Network
from repro.net.packet import Packet
from repro.sim.errors import SimulationError

Path = Tuple[str, ...]


class PathSet:
    """An ordered set of candidate paths with their delay costs."""

    def __init__(self, paths: Sequence[Sequence[str]], costs: Sequence[float]) -> None:
        if len(paths) != len(costs):
            raise ValueError("paths and costs must have equal length")
        if not paths:
            raise ValueError("PathSet requires at least one path")
        order = sorted(range(len(paths)), key=lambda i: (costs[i], tuple(paths[i])))
        self.paths: List[Path] = [tuple(paths[i]) for i in order]
        self.costs: List[float] = [float(costs[i]) for i in order]

    @property
    def min_cost(self) -> float:
        return self.costs[0]

    def __len__(self) -> int:
        return len(self.paths)

    def __repr__(self) -> str:
        return f"<PathSet n={len(self.paths)} costs={self.costs}>"


def discover_paths(
    network: Network, src: str, dst: str, max_paths: Optional[int] = None
) -> PathSet:
    """Find node-disjoint paths from ``src`` to ``dst`` with delay costs.

    Uses a greedy peel: repeatedly take the current delay-shortest path,
    then remove its interior nodes, until the graph disconnects.  This
    yields the maximal set of node-disjoint paths ordered by delay, which
    is what "all independent paths from source to destination" refers to
    in the paper.
    """
    graph = network.graph()
    paths: List[List[str]] = []
    costs: List[float] = []
    while True:
        if max_paths is not None and len(paths) >= max_paths:
            break
        try:
            path = nx.dijkstra_path(graph, src, dst, weight="delay")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            break
        cost = _path_delay(graph, path)
        paths.append(path)
        costs.append(cost)
        interior = path[1:-1]
        if not interior:  # direct link: remove the edge itself
            graph.remove_edge(src, dst)
        else:
            graph.remove_nodes_from(interior)
    if not paths:
        raise SimulationError(f"no path from {src!r} to {dst!r}")
    return PathSet(paths, costs)


def _path_delay(graph: nx.DiGraph, path: Sequence[str]) -> float:
    return sum(
        graph.edges[path[i], path[i + 1]]["delay"] for i in range(len(path) - 1)
    )


def epsilon_weights(costs: Sequence[float], epsilon: float) -> List[float]:
    """Softmin path probabilities for a given ε (normalized to sum to 1).

    ε = 0 gives the uniform distribution; large ε concentrates all mass on
    the minimum-cost path(s).
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    min_cost = min(costs)
    scale = min_cost if min_cost > 0 else 1.0
    logits = [-epsilon * (cost - min_cost) / scale for cost in costs]
    peak = max(logits)
    raw = [math.exp(logit - peak) for logit in logits]
    total = sum(raw)
    return [value / total for value in raw]


class EpsilonMultipathPolicy:
    """Per-packet source-routing policy implementing the ε family.

    Install on an origin node via :meth:`install`; every packet the node
    injects toward a known destination gets a source route sampled from the
    softmin distribution.  Reverse-path policies can be installed on the
    destination as well, so ACKs also experience reordering (the paper's
    reordering affects both data and ACK packets).

    Attributes:
        epsilon: Delay-penalty parameter.
        path_counts: How many packets each path carried (diagnostics).
    """

    def __init__(
        self,
        network: Network,
        origin: str,
        epsilon: float,
        destinations: Optional[Sequence[str]] = None,
        max_paths: Optional[int] = None,
        rng_name: Optional[str] = None,
    ) -> None:
        self.network = network
        self.origin = origin
        self.epsilon = epsilon
        self._rng = network.sim.rng.stream(
            rng_name if rng_name is not None else f"multipath:{origin}:{epsilon}"
        )
        self._path_sets: Dict[str, PathSet] = {}
        self._weights: Dict[str, List[float]] = {}
        self._cumulative: Dict[str, List[float]] = {}
        #: Sample position -> path index (identity until paths are disabled).
        self._choices: Dict[str, List[int]] = {}
        self._disabled: Dict[str, set] = {}
        self.path_counts: Dict[str, List[int]] = {}
        if destinations:
            for destination in destinations:
                self.add_destination(destination, max_paths=max_paths)

    def add_destination(self, dst: str, max_paths: Optional[int] = None) -> PathSet:
        """Precompute disjoint paths and sampling weights toward ``dst``."""
        path_set = discover_paths(self.network, self.origin, dst, max_paths=max_paths)
        self._path_sets[dst] = path_set
        self._weights[dst] = epsilon_weights(path_set.costs, self.epsilon)
        self._disabled[dst] = set()
        self.path_counts[dst] = [0] * len(path_set)
        self._rebuild(dst)
        return path_set

    def _rebuild(self, dst: str) -> None:
        """Recompute the sampling distribution over the enabled paths."""
        weights = self._weights[dst]
        choices = [
            index for index in range(len(weights))
            if index not in self._disabled[dst]
        ]
        if not choices:
            raise SimulationError(
                f"every path {self.origin}->{dst} is disabled (blackout "
                "schedules must leave at least one path usable)"
            )
        total = sum(weights[index] for index in choices)
        cumulative: List[float] = []
        running = 0.0
        for index in choices:
            running += weights[index] / total
            cumulative.append(running)
        cumulative[-1] = 1.0  # guard against float round-off
        self._choices[dst] = choices
        self._cumulative[dst] = cumulative

    # -- Fault hooks (repro.faults.PathBlackout) ------------------------
    def disable_path(self, dst: str, index: int) -> None:
        """Blackout path ``index`` toward ``dst``: reroute its traffic.

        Remaining probability mass is renormalized over the surviving
        paths, so an ε = 0 policy stays uniform over what is left.
        """
        self._check_path(dst, index)
        self._disabled[dst].add(index)
        self._rebuild(dst)

    def enable_path(self, dst: str, index: int) -> None:
        """End the blackout of path ``index`` toward ``dst``."""
        self._check_path(dst, index)
        self._disabled[dst].discard(index)
        self._rebuild(dst)

    def disabled_paths(self, dst: str) -> List[int]:
        return sorted(self._disabled[dst])

    def _check_path(self, dst: str, index: int) -> None:
        if dst not in self._path_sets:
            raise SimulationError(
                f"policy on {self.origin!r} has no destination {dst!r}"
            )
        if not 0 <= index < len(self._path_sets[dst]):
            raise SimulationError(
                f"path index {index} out of range for {self.origin}->{dst} "
                f"({len(self._path_sets[dst])} paths)"
            )

    def weights_for(self, dst: str) -> List[float]:
        return list(self._weights[dst])

    def paths_for(self, dst: str) -> PathSet:
        return self._path_sets[dst]

    # -- PathPolicy protocol -------------------------------------------
    def choose_route(self, packet: Packet) -> Optional[List[str]]:
        cumulative = self._cumulative.get(packet.dst)
        if cumulative is None:
            return None
        draw = self._rng.random()
        index = self._choices[packet.dst][_bisect(cumulative, draw)]
        self.path_counts[packet.dst][index] += 1
        return list(self._path_sets[packet.dst].paths[index])

    def install(self) -> "EpsilonMultipathPolicy":
        """Attach this policy to the origin node and return self."""
        self.network.node(self.origin).path_policy = self
        return self


class FlowHashPolicy:
    """Per-*flow* multipath (ECMP-style hashing) — the no-reordering way.

    Real networks spread load over parallel paths without reordering TCP
    by hashing the flow identifier, so every packet of one flow takes the
    same path.  This policy is the counterpoint to
    :class:`EpsilonMultipathPolicy`: same path diversity, no per-packet
    randomness — a single flow gets exactly one path's bandwidth, but
    standard TCP works untouched.
    """

    def __init__(
        self,
        network: Network,
        origin: str,
        destinations: Optional[Sequence[str]] = None,
        max_paths: Optional[int] = None,
        salt: int = 0,
    ) -> None:
        self.network = network
        self.origin = origin
        self.salt = salt
        self._path_sets: Dict[str, PathSet] = {}
        if destinations:
            for destination in destinations:
                self.add_destination(destination, max_paths=max_paths)

    def add_destination(self, dst: str, max_paths: Optional[int] = None) -> PathSet:
        path_set = discover_paths(self.network, self.origin, dst, max_paths=max_paths)
        self._path_sets[dst] = path_set
        return path_set

    def path_for_flow(self, dst: str, flow_id: int) -> Path:
        path_set = self._path_sets[dst]
        # Knuth multiplicative hash: stable, spreads consecutive ids.
        index = ((flow_id + self.salt) * 2654435761) % 2**32 % len(path_set)
        return path_set.paths[index]

    # -- PathPolicy protocol -------------------------------------------
    def choose_route(self, packet: Packet) -> Optional[List[str]]:
        if packet.dst not in self._path_sets:
            return None
        return list(self.path_for_flow(packet.dst, packet.flow_id))

    def install(self) -> "FlowHashPolicy":
        self.network.node(self.origin).path_policy = self
        return self


def _bisect(cumulative: Sequence[float], value: float) -> int:
    low, high = 0, len(cumulative) - 1
    while low < high:
        mid = (low + high) // 2
        if cumulative[mid] < value:
            low = mid + 1
        else:
            high = mid
    return low

"""Figure 6: throughput under ε-parameterized multipath routing.

For each protocol (TCP-PR, TD-FR, DSACK-NM, Inc-by-1, Inc-by-N, EWMA) and
each ε ∈ {0, 1, 4, 10, 500}, a single flow runs alone (no background
traffic) over Figure 5's topology; the protocols are tested one at a time
because the question is how each copes with persistent reordering, not
how they interact.  Two experiment sets: 10 ms and 60 ms per-link delays.

Expected shape (paper): TCP-PR sustains high throughput for every ε,
reaching the multipath aggregate at ε = 0; the DUPACK-based schemes
collapse as ε → 0; TD-FR holds up at 10 ms but loses badly at 60 ms;
at ε = 500 (single path) everyone is equal, and everyone is slower at
60 ms than at 10 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.app.bulk import BulkTransfer
from repro.checkpoint import checkpointable
from repro.core.pr import PrConfig
from repro.exec.runner import ResultCache, run_sweep
from repro.experiments._deprecation import require_spec
from repro.exec.spec import ExperimentSpec, Scale, SweepCell
from repro.obs import maybe_observe
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.workload import WorkloadSpec
from repro.tcp.base import TcpConfig
from repro.topologies.multipath_mesh import (
    MultipathMeshSpec,
    install_epsilon_routing,
)
from repro.util.units import MBPS, MS

#: The ε values on Figure 6's x-axis groups.
PAPER_EPSILONS: Sequence[float] = (0.0, 1.0, 4.0, 10.0, 500.0)
#: The protocols in Figure 6's legend (canonical registry names).
PAPER_PROTOCOLS: Sequence[str] = (
    "tcp-pr",
    "tdfr",
    "dsack-nm",
    "inc-by-1",
    "inc-by-n",
    "ewma",
)

QUICK_EPSILONS: Sequence[float] = (0.0, 4.0, 500.0)
QUICK_DURATION = 20.0
PAPER_DURATION = 60.0

#: Initial slow-start threshold applied to *every* protocol in this
#: experiment (segments).  ns-2-era studies always capped the first
#: slow-start with a finite window; without it, NewReno-family variants
#: hit the classic hundreds-of-losses-in-one-window pathology at 60 ms
#: link delay, which the paper's baselines clearly did not.
DEFAULT_INITIAL_SSTHRESH = 128.0


@dataclass
class Fig6Result:
    """Throughput matrix: protocol -> {epsilon -> Mbps}."""

    link_delay: float
    duration: float
    throughput_mbps: Dict[str, Dict[float, float]] = field(default_factory=dict)

    def series(self, protocol: str) -> List[float]:
        return [
            self.throughput_mbps[protocol][eps]
            for eps in sorted(self.throughput_mbps[protocol])
        ]


def run_single_multipath_flow(
    variant: str,
    epsilon: float,
    link_delay: float = 10 * MS,
    duration: float = QUICK_DURATION,
    spec: Optional[MultipathMeshSpec] = None,
    pr_config: Optional[PrConfig] = None,
    tcp_config: Optional[TcpConfig] = None,
    seed: int = 0,
    reorder_acks: bool = True,
    receiver_delayed_ack: bool = False,
) -> float:
    """One cell of Figure 6: a lone flow's goodput in Mbps.

    Built on :func:`repro.checkpoint.checkpointable`: with no ambient
    :class:`~repro.checkpoint.CellPlan` armed this is exactly the old
    build-and-run; under a plan (the executor's ``--checkpoint-every``)
    the flow snapshots periodically and resumes mid-run after a crash.
    """
    if tcp_config is None:
        tcp_config = TcpConfig(initial_ssthresh=DEFAULT_INITIAL_SSTHRESH)
    if pr_config is None:
        pr_config = PrConfig(initial_ssthresh=DEFAULT_INITIAL_SSTHRESH)

    def build() -> Dict[str, Any]:
        mesh_spec = spec if spec is not None else MultipathMeshSpec(
            link_delay=link_delay, seed=seed
        )
        net = mesh_spec.build().network
        install_epsilon_routing(net, epsilon, reorder_acks=reorder_acks)
        flow = BulkTransfer(
            net,
            variant,
            "src",
            "dst",
            flow_id=1,
            tcp_config=tcp_config,
            pr_config=pr_config,
            receiver_delayed_ack=receiver_delayed_ack,
        )
        maybe_observe(net)
        return {"net": net, "flow": flow}

    with checkpointable(build) as scope:
        scope.run(until=duration)
        flow = scope["flow"]
        return flow.delivered_bytes() * 8.0 / duration / MBPS


#: Importable path of this figure's cell function (see :class:`SweepCell`).
CELL_FUNC = "repro.experiments.fig6_multipath:run_fig6_cell"


def run_fig6_cell(
    *,
    protocol: str,
    epsilon: float,
    link_delay: float,
    duration: float,
    pr_config: Optional[PrConfig] = None,
    seed: int,
) -> float:
    """One cell of Figure 6: a lone flow's goodput in Mbps."""
    return run_single_multipath_flow(
        protocol,
        epsilon,
        link_delay=link_delay,
        duration=duration,
        seed=seed,
        pr_config=pr_config,
    )


@dataclass(frozen=True)
class Fig6Spec(ExperimentSpec):
    """Declarative description of one Figure 6 panel (one link delay)."""

    name: ClassVar[str] = "fig6"
    SCALE_PRESETS: ClassVar[Mapping[Scale, Mapping[str, Any]]] = {
        Scale.QUICK: {"epsilons": QUICK_EPSILONS, "duration": QUICK_DURATION},
        Scale.PAPER: {"epsilons": PAPER_EPSILONS, "duration": PAPER_DURATION},
    }

    link_delay: float = 10 * MS
    protocols: Tuple[str, ...] = tuple(PAPER_PROTOCOLS)
    epsilons: Tuple[float, ...] = tuple(QUICK_EPSILONS)
    duration: float = QUICK_DURATION
    pr_config: Optional[PrConfig] = None
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "protocols", tuple(self.protocols))
        object.__setattr__(self, "epsilons", tuple(self.epsilons))

    @property
    def scenario(self) -> ScenarioSpec:
        """This panel's topology/workload as a declarative scenario.

        One infinite bulk flow of the first listed protocol over the
        Figure 5 mesh at this panel's link delay (the ε axis is an
        execution knob, not part of the population).
        """
        return ScenarioSpec(
            topology=MultipathMeshSpec(
                link_delay=self.link_delay, seed=self.seed
            ),
            workload=WorkloadSpec(
                arrival="fixed",
                flow_count=1,
                start_stagger=0.0,
                size="bulk",
                variant_mix=((self.protocols[0], 1.0),),
            ),
            duration=self.duration,
            seed=self.seed,
            name=self.name,
        )

    def cells(self) -> List[SweepCell]:
        return [
            SweepCell(
                key=(protocol, epsilon),
                func=CELL_FUNC,
                params={
                    "protocol": protocol,
                    "epsilon": epsilon,
                    "link_delay": self.link_delay,
                    "duration": self.duration,
                    "pr_config": self.pr_config,
                },
                seed=self.seed,
            )
            for protocol in self.protocols
            for epsilon in self.epsilons
        ]

    def assemble(self, results: Mapping[Tuple[str, float], float]) -> Fig6Result:
        result = Fig6Result(link_delay=self.link_delay, duration=self.duration)
        for protocol in self.protocols:
            result.throughput_mbps[protocol] = {
                epsilon: results[(protocol, epsilon)] for epsilon in self.epsilons
            }
        return result


def run_fig6(
    spec: Optional[Fig6Spec] = None,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    seed: Optional[int] = None,
    **exec_options: Any,
) -> Fig6Result:
    """Reproduce one panel (one link-delay setting) of Figure 6.

    ``spec`` is required: ``run_fig6(Fig6Spec.presets(Scale.QUICK, ...),
    jobs=..., cache=..., seed=...)``.
    """
    require_spec("run_fig6", Fig6Spec, spec, exec_options)
    return run_sweep(spec, jobs=jobs, cache=cache, seed=seed, **exec_options)


def format_fig6(result: Fig6Result) -> str:
    epsilons = sorted(next(iter(result.throughput_mbps.values())))
    header = " ".join(f"eps={eps:<6g}" for eps in epsilons)
    lines = [
        f"Figure 6 (link delay {result.link_delay * 1e3:.0f} ms): "
        "throughput in Mbps",
        f"{'protocol':>9} {header}",
    ]
    for protocol, row in result.throughput_mbps.items():
        cells = " ".join(f"{row[eps]:>10.2f}" for eps in epsilons)
        lines.append(f"{protocol:>9} {cells}")
    return "\n".join(lines)

"""Figure 3: coefficient of variation of normalized throughput vs loss rate.

"The variation in loss probability was simulated by decreasing the link
bandwidth": a fixed mixed population of TCP-PR and TCP-SACK flows is run
over dumbbell / parking-lot topologies whose bottleneck bandwidth shrinks
step by step, raising contention loss from a few percent to >10 %.  The
paper's finding: TCP-PR's CoV tracks TCP-SACK's over the whole range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.pr import PrConfig
from repro.experiments.runner import FairnessResult, run_fairness
from repro.topologies.dumbbell import DumbbellSpec
from repro.topologies.parking_lot import ParkingLotSpec
from repro.util.units import MBPS

#: Bottleneck bandwidth levels (Mbps) used to sweep the loss rate.
PAPER_BANDWIDTHS_MBPS: Sequence[float] = (10.0, 6.0, 4.0, 2.5, 1.5)
QUICK_BANDWIDTHS_MBPS: Sequence[float] = (6.0, 2.5)

QUICK_FLOWS = 8
PAPER_FLOWS = 16
QUICK_DURATION = 40.0
QUICK_MEASURE_WINDOW = 30.0
PAPER_DURATION = 160.0
PAPER_MEASURE_WINDOW = 60.0


@dataclass
class Fig3Point:
    """One (loss rate, CoV) observation per protocol."""

    bandwidth_mbps: float
    loss_rate: float
    cov: Dict[str, float]
    result: FairnessResult


@dataclass
class Fig3Result:
    topology: str
    points: List[Fig3Point]


def run_fig3(
    topology: str = "dumbbell",
    bandwidths_mbps: Sequence[float] = QUICK_BANDWIDTHS_MBPS,
    total_flows: int = QUICK_FLOWS,
    duration: float = QUICK_DURATION,
    measure_window: float = QUICK_MEASURE_WINDOW,
    alpha: float = 0.995,
    beta: float = 3.0,
    seed: int = 0,
) -> Fig3Result:
    """Reproduce one panel of Figure 3."""
    points: List[Fig3Point] = []
    for bandwidth in bandwidths_mbps:
        kwargs = {}
        if topology == "dumbbell":
            kwargs["dumbbell_spec"] = DumbbellSpec(
                num_pairs=1,
                bottleneck_bandwidth=bandwidth * MBPS,
                access_bandwidth=100 * MBPS,
                access_delay=1e-3,
                seed=seed,
            )
        elif topology == "parking-lot":
            kwargs["parking_spec"] = ParkingLotSpec(
                backbone_bandwidth=bandwidth * MBPS, seed=seed
            )
        else:
            raise ValueError(f"unknown topology {topology!r}")
        result = run_fairness(
            topology=topology,
            total_flows=total_flows,
            duration=duration,
            measure_window=measure_window,
            pr_config=PrConfig(alpha=alpha, beta=beta),
            seed=seed,
            **kwargs,
        )
        points.append(
            Fig3Point(
                bandwidth_mbps=bandwidth,
                loss_rate=result.loss_rate,
                cov=result.cov,
                result=result,
            )
        )
    points.sort(key=lambda point: point.loss_rate)
    return Fig3Result(topology=topology, points=points)


def format_fig3(result: Fig3Result) -> str:
    lines = [
        f"Figure 3 ({result.topology}): CoV of normalized throughput vs loss rate",
        f"{'bw (Mbps)':>10} {'loss':>7} {'CoV tcp-pr':>11} {'CoV sack':>9}",
    ]
    for point in result.points:
        lines.append(
            f"{point.bandwidth_mbps:>10.2f} {point.loss_rate:>6.2%} "
            f"{point.cov['tcp-pr']:>11.3f} {point.cov['sack']:>9.3f}"
        )
    return "\n".join(lines)

"""Figure 3: coefficient of variation of normalized throughput vs loss rate.

"The variation in loss probability was simulated by decreasing the link
bandwidth": a fixed mixed population of TCP-PR and TCP-SACK flows is run
over dumbbell / parking-lot topologies whose bottleneck bandwidth shrinks
step by step, raising contention loss from a few percent to >10 %.  The
paper's finding: TCP-PR's CoV tracks TCP-SACK's over the whole range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.pr import PrConfig
from repro.exec.runner import ResultCache, run_sweep
from repro.experiments._deprecation import require_spec
from repro.exec.spec import ExperimentSpec, Scale, SweepCell
from repro.experiments.runner import FairnessResult, run_fairness
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.workload import WorkloadSpec
from repro.topologies.base import TopologySpec
from repro.topologies.dumbbell import DumbbellSpec
from repro.topologies.parking_lot import ParkingLotSpec
from repro.util.units import MBPS

#: Bottleneck bandwidth levels (Mbps) used to sweep the loss rate.
PAPER_BANDWIDTHS_MBPS: Sequence[float] = (10.0, 6.0, 4.0, 2.5, 1.5)
QUICK_BANDWIDTHS_MBPS: Sequence[float] = (6.0, 2.5)

QUICK_FLOWS = 8
PAPER_FLOWS = 16
QUICK_DURATION = 40.0
QUICK_MEASURE_WINDOW = 30.0
PAPER_DURATION = 160.0
PAPER_MEASURE_WINDOW = 60.0


@dataclass
class Fig3Point:
    """One (loss rate, CoV) observation per protocol."""

    bandwidth_mbps: float
    loss_rate: float
    cov: Dict[str, float]
    result: FairnessResult


@dataclass
class Fig3Result:
    topology: str
    points: List[Fig3Point]


#: Importable path of this figure's cell function (see :class:`SweepCell`).
CELL_FUNC = "repro.experiments.fig3_cov:run_fig3_cell"


def run_fig3_cell(
    *,
    topology: str,
    bandwidth_mbps: float,
    total_flows: int,
    duration: float,
    measure_window: float,
    alpha: float,
    beta: float,
    seed: int,
) -> FairnessResult:
    """One cell of Figure 3: a fairness run at one bottleneck bandwidth."""
    kwargs = {}
    if topology == "dumbbell":
        kwargs["dumbbell_spec"] = DumbbellSpec(
            num_pairs=1,
            bottleneck_bandwidth=bandwidth_mbps * MBPS,
            access_bandwidth=100 * MBPS,
            access_delay=1e-3,
            seed=seed,
        )
    elif topology == "parking-lot":
        kwargs["parking_spec"] = ParkingLotSpec(
            backbone_bandwidth=bandwidth_mbps * MBPS, seed=seed
        )
    else:
        raise ValueError(f"unknown topology {topology!r}")
    return run_fairness(
        topology=topology,
        total_flows=total_flows,
        duration=duration,
        measure_window=measure_window,
        pr_config=PrConfig(alpha=alpha, beta=beta),
        seed=seed,
        **kwargs,
    )


@dataclass(frozen=True)
class Fig3Spec(ExperimentSpec):
    """Declarative description of one Figure 3 panel."""

    name: ClassVar[str] = "fig3"
    SCALE_PRESETS: ClassVar[Mapping[Scale, Mapping[str, Any]]] = {
        Scale.QUICK: {
            "bandwidths_mbps": QUICK_BANDWIDTHS_MBPS,
            "total_flows": QUICK_FLOWS,
            "duration": QUICK_DURATION,
            "measure_window": QUICK_MEASURE_WINDOW,
        },
        Scale.PAPER: {
            "bandwidths_mbps": PAPER_BANDWIDTHS_MBPS,
            "total_flows": PAPER_FLOWS,
            "duration": PAPER_DURATION,
            "measure_window": PAPER_MEASURE_WINDOW,
        },
    }

    topology: str = "dumbbell"
    bandwidths_mbps: Tuple[float, ...] = tuple(QUICK_BANDWIDTHS_MBPS)
    total_flows: int = QUICK_FLOWS
    duration: float = QUICK_DURATION
    measure_window: float = QUICK_MEASURE_WINDOW
    alpha: float = 0.995
    beta: float = 3.0
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "bandwidths_mbps", tuple(self.bandwidths_mbps))

    @property
    def scenario(self) -> ScenarioSpec:
        """This panel's topology/workload as a declarative scenario.

        Mirrors the first bandwidth cell: the same bottleneck topology
        and a half TCP-PR / half SACK bulk population (statistically
        mixed rather than positionally alternated).
        """
        bandwidth = self.bandwidths_mbps[0]
        topo: TopologySpec
        if self.topology == "dumbbell":
            topo = DumbbellSpec(
                num_pairs=1,
                bottleneck_bandwidth=bandwidth * MBPS,
                access_bandwidth=100 * MBPS,
                access_delay=1e-3,
                seed=self.seed,
            )
        else:
            topo = ParkingLotSpec(
                backbone_bandwidth=bandwidth * MBPS, seed=self.seed
            )
        return ScenarioSpec(
            topology=topo,
            workload=WorkloadSpec(
                arrival="fixed",
                flow_count=self.total_flows,
                start_stagger=2.0,
                size="bulk",
                variant_mix=(("tcp-pr", 1.0), ("sack", 1.0)),
            ),
            duration=self.duration,
            seed=self.seed,
            name=self.name,
        )

    def cells(self) -> List[SweepCell]:
        return [
            SweepCell(
                key=bandwidth,
                func=CELL_FUNC,
                params={
                    "topology": self.topology,
                    "bandwidth_mbps": bandwidth,
                    "total_flows": self.total_flows,
                    "duration": self.duration,
                    "measure_window": self.measure_window,
                    "alpha": self.alpha,
                    "beta": self.beta,
                },
                seed=self.seed,
            )
            for bandwidth in self.bandwidths_mbps
        ]

    def assemble(self, results: Mapping[float, FairnessResult]) -> Fig3Result:
        points = [
            Fig3Point(
                bandwidth_mbps=bandwidth,
                loss_rate=results[bandwidth].loss_rate,
                cov=results[bandwidth].cov,
                result=results[bandwidth],
            )
            for bandwidth in self.bandwidths_mbps
        ]
        points.sort(key=lambda point: point.loss_rate)
        return Fig3Result(topology=self.topology, points=points)


def run_fig3(
    spec: Optional[Fig3Spec] = None,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    seed: Optional[int] = None,
    **exec_options: Any,
) -> Fig3Result:
    """Reproduce one panel of Figure 3.

    ``spec`` is required: ``run_fig3(Fig3Spec.presets(Scale.QUICK, ...),
    jobs=..., cache=..., seed=...)``.
    """
    require_spec("run_fig3", Fig3Spec, spec, exec_options)
    return run_sweep(spec, jobs=jobs, cache=cache, seed=seed, **exec_options)


def format_fig3(result: Fig3Result) -> str:
    lines = [
        f"Figure 3 ({result.topology}): CoV of normalized throughput vs loss rate",
        f"{'bw (Mbps)':>10} {'loss':>7} {'CoV tcp-pr':>11} {'CoV sack':>9}",
    ]
    for point in result.points:
        lines.append(
            f"{point.bandwidth_mbps:>10.2f} {point.loss_rate:>6.2%} "
            f"{point.cov['tcp-pr']:>11.3f} {point.cov['sack']:>9.3f}"
        )
    return "\n".join(lines)

"""Shared DeprecationWarning for the legacy keyword entry points.

Each figure's ``run_figN`` historically accepted loose keyword
arguments and built a quick-scale spec internally.  The spec-first form
(``run_figN(FigNSpec.presets(...), runner=...)``) is the supported API;
the keyword form still works but warns through this helper so the
``repro.``-prefixed message trips the test suite's
DeprecationWarning-as-error filter.
"""

from __future__ import annotations

import warnings


def warn_legacy_keywords(func: str, spec_cls: str) -> None:
    """Warn that ``func`` was called without an explicit spec."""
    warnings.warn(
        f"repro.experiments.{func}(**kwargs) without a spec is deprecated; "
        f"build a {spec_cls} (e.g. {spec_cls}.presets(Scale.QUICK, ...)) "
        "and pass it as the first argument (see docs/EXECUTOR.md)",
        DeprecationWarning,
        stacklevel=3,
    )

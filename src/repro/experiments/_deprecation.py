"""The removed legacy entry-point forms fail loudly, not mysteriously.

Each figure's ``run_figN`` historically accepted loose keyword
arguments (``run_fig6(link_delay=..., epsilons=...)``) or a bare
positional (topology name, link delay, beta list) and built a
quick-scale spec internally.  Those forms are **removed**: the
spec-first call — ``run_figN(FigNSpec.presets(Scale.QUICK, ...),
jobs=..., cache=...)`` — is the only supported API.

:func:`reject_legacy_call` turns what would otherwise be a confusing
``TypeError: unexpected keyword argument`` into an actionable error
naming the replacement, and gives the removal a single definition site.
"""

from __future__ import annotations

from typing import Any, Mapping

#: Keyword arguments ``run_figN`` forwards to
#: :func:`repro.exec.runner.run_sweep`.  Anything else in
#: ``**exec_options`` is a stale legacy spec keyword and is rejected.
EXEC_OPTION_KEYS = frozenset(
    {
        "timeout",
        "retries",
        "backoff",
        "keep_going",
        "collect_metrics",
        "collect_trace",
        "runner",
    }
)


class LegacyCallError(TypeError):
    """A removed pre-spec calling convention was used."""


def reject_legacy_call(func: str, spec_cls: str, detail: Any) -> None:
    """Raise :class:`LegacyCallError` for a removed legacy call form.

    Args:
        func: The public entry point that was miscalled (``run_fig6``).
        spec_cls: The spec class the caller must construct (``Fig6Spec``).
        detail: What the caller actually passed (rendered in the error).
    """
    raise LegacyCallError(
        f"repro.experiments.{func}() no longer accepts the legacy "
        f"pre-spec form (got {detail}); build a {spec_cls} — e.g. "
        f"{spec_cls}.presets(Scale.QUICK, ...) — and pass it as the "
        f"first argument: {func}(spec, jobs=..., cache=..., seed=...).  "
        "See docs/EXECUTOR.md."
    )


def require_spec(
    func: str,
    spec_cls: type,
    spec: Any,
    exec_options: Mapping[str, Any],
) -> None:
    """Validate a spec-first call; reject every removed legacy form.

    Catches both legacy shapes in one place: a missing/wrong-type
    ``spec`` (the old bare-positional forms) and stale spec keywords
    riding in ``**exec_options`` (the old keyword form).
    """
    if not isinstance(spec, spec_cls):
        reject_legacy_call(func, spec_cls.__name__, f"spec={spec!r}")
    stale = sorted(set(exec_options) - EXEC_OPTION_KEYS)
    if stale:
        reject_legacy_call(
            func,
            spec_cls.__name__,
            f"spec keyword(s) {', '.join(stale)} outside the spec",
        )

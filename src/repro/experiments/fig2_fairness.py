"""Figure 2: fairness of TCP-PR competing with TCP-SACK.

The paper simulates an equal number of TCP-PR and TCP-SACK flows (total
n ∈ {4, 8, 16, 32, 64}) with a common source and destination over the
dumbbell and parking-lot topologies (TCP-PR alpha = 0.995, beta = 3.0,
throughput over the last 60 s) and plots each flow's normalized
throughput plus the per-protocol means.  The expected result: both means
≈ 1 across the whole range — the protocols share fairly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.pr import PrConfig
from repro.experiments.runner import FairnessResult, run_fairness
from repro.topologies.dumbbell import DumbbellSpec

#: The flow counts on Figure 2's x-axis.
PAPER_FLOW_COUNTS: Sequence[int] = (4, 8, 16, 32, 64)
#: Reduced sweep for the default (quick) benchmark scale.
QUICK_FLOW_COUNTS: Sequence[int] = (4, 8, 16)

PAPER_DURATION = 160.0
PAPER_MEASURE_WINDOW = 60.0
QUICK_DURATION = 40.0
QUICK_MEASURE_WINDOW = 30.0


@dataclass
class Fig2Result:
    """One topology's fairness sweep over flow counts."""

    topology: str
    results: Dict[int, FairnessResult]

    def series(self, protocol: str, metric: str = "mean_normalized") -> List[float]:
        """Extract a per-flow-count series for one protocol."""
        out = []
        for count in sorted(self.results):
            result = self.results[count]
            out.append(getattr(result, metric)[protocol])
        return out


#: Per-flow bottleneck share held constant as the dumbbell sweep grows
#: (the paper does not state its dumbbell bandwidth; at a fixed 15 Mbps
#: the n = 64 point would probe an ultra-high-contention regime the
#: paper's flat fairness results clearly did not).
DUMBBELL_PER_FLOW_BPS = 1.875 * 1e6  # 15 Mbps / 8 flows


def run_fig2(
    topology: str = "dumbbell",
    flow_counts: Sequence[int] = QUICK_FLOW_COUNTS,
    duration: float = QUICK_DURATION,
    measure_window: float = QUICK_MEASURE_WINDOW,
    alpha: float = 0.995,
    beta: float = 3.0,
    seed: int = 0,
) -> Fig2Result:
    """Reproduce one panel of Figure 2."""
    results: Dict[int, FairnessResult] = {}
    for count in flow_counts:
        kwargs = {}
        if topology == "dumbbell":
            scale = max(1.0, count / 8.0)
            kwargs["dumbbell_spec"] = DumbbellSpec(
                num_pairs=1,
                bottleneck_bandwidth=max(15e6, DUMBBELL_PER_FLOW_BPS * count),
                access_bandwidth=1e9,
                access_delay=1e-3,
                queue_packets=int(100 * scale),
                seed=seed + count,
            )
        results[count] = run_fairness(
            topology=topology,
            total_flows=count,
            duration=duration,
            measure_window=measure_window,
            pr_config=PrConfig(alpha=alpha, beta=beta),
            seed=seed + count,
            **kwargs,
        )
    return Fig2Result(topology=topology, results=results)


def format_fig2(result: Fig2Result) -> str:
    """Render the reproduced figure as the paper's series, textually."""
    lines = [
        f"Figure 2 ({result.topology}): normalized throughput, "
        "TCP-PR vs TCP-SACK",
        f"{'flows':>6} {'mean T (tcp-pr)':>16} {'mean T (sack)':>14} "
        f"{'CoV (tcp-pr)':>13} {'CoV (sack)':>11} {'loss':>7}",
    ]
    for count in sorted(result.results):
        res = result.results[count]
        lines.append(
            f"{count:>6} {res.mean_normalized['tcp-pr']:>16.3f} "
            f"{res.mean_normalized['sack']:>14.3f} "
            f"{res.cov['tcp-pr']:>13.3f} {res.cov['sack']:>11.3f} "
            f"{res.loss_rate:>6.2%}"
        )
    return "\n".join(lines)

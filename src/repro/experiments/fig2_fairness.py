"""Figure 2: fairness of TCP-PR competing with TCP-SACK.

The paper simulates an equal number of TCP-PR and TCP-SACK flows (total
n ∈ {4, 8, 16, 32, 64}) with a common source and destination over the
dumbbell and parking-lot topologies (TCP-PR alpha = 0.995, beta = 3.0,
throughput over the last 60 s) and plots each flow's normalized
throughput plus the per-protocol means.  The expected result: both means
≈ 1 across the whole range — the protocols share fairly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.pr import PrConfig
from repro.exec.runner import ResultCache, run_sweep
from repro.experiments._deprecation import require_spec
from repro.exec.spec import ExperimentSpec, Scale, SweepCell
from repro.experiments.runner import FairnessResult, run_fairness
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.workload import WorkloadSpec
from repro.topologies.base import TopologySpec
from repro.topologies.dumbbell import DumbbellSpec
from repro.topologies.parking_lot import ParkingLotSpec

#: The flow counts on Figure 2's x-axis.
PAPER_FLOW_COUNTS: Sequence[int] = (4, 8, 16, 32, 64)
#: Reduced sweep for the default (quick) benchmark scale.
QUICK_FLOW_COUNTS: Sequence[int] = (4, 8, 16)

PAPER_DURATION = 160.0
PAPER_MEASURE_WINDOW = 60.0
QUICK_DURATION = 40.0
QUICK_MEASURE_WINDOW = 30.0


@dataclass
class Fig2Result:
    """One topology's fairness sweep over flow counts."""

    topology: str
    results: Dict[int, FairnessResult]

    def series(self, protocol: str, metric: str = "mean_normalized") -> List[float]:
        """Extract a per-flow-count series for one protocol."""
        out = []
        for count in sorted(self.results):
            result = self.results[count]
            out.append(getattr(result, metric)[protocol])
        return out


#: Per-flow bottleneck share held constant as the dumbbell sweep grows
#: (the paper does not state its dumbbell bandwidth; at a fixed 15 Mbps
#: the n = 64 point would probe an ultra-high-contention regime the
#: paper's flat fairness results clearly did not).
DUMBBELL_PER_FLOW_BPS = 1.875 * 1e6  # 15 Mbps / 8 flows


#: Importable path of this figure's cell function (see :class:`SweepCell`).
CELL_FUNC = "repro.experiments.fig2_fairness:run_fig2_cell"


def run_fig2_cell(
    *,
    topology: str,
    count: int,
    duration: float,
    measure_window: float,
    alpha: float,
    beta: float,
    seed: int,
) -> FairnessResult:
    """One independent cell of Figure 2: a fairness run at one flow count."""
    kwargs = {}
    if topology == "dumbbell":
        scale = max(1.0, count / 8.0)
        kwargs["dumbbell_spec"] = DumbbellSpec(
            num_pairs=1,
            bottleneck_bandwidth=max(15e6, DUMBBELL_PER_FLOW_BPS * count),
            access_bandwidth=1e9,
            access_delay=1e-3,
            queue_packets=int(100 * scale),
            seed=seed,
        )
    return run_fairness(
        topology=topology,
        total_flows=count,
        duration=duration,
        measure_window=measure_window,
        pr_config=PrConfig(alpha=alpha, beta=beta),
        seed=seed,
        **kwargs,
    )


@dataclass(frozen=True)
class Fig2Spec(ExperimentSpec):
    """Declarative description of one Figure 2 panel."""

    name: ClassVar[str] = "fig2"
    SCALE_PRESETS: ClassVar[Mapping[Scale, Mapping[str, Any]]] = {
        Scale.QUICK: {
            "flow_counts": QUICK_FLOW_COUNTS,
            "duration": QUICK_DURATION,
            "measure_window": QUICK_MEASURE_WINDOW,
        },
        Scale.PAPER: {
            "flow_counts": PAPER_FLOW_COUNTS,
            "duration": PAPER_DURATION,
            "measure_window": PAPER_MEASURE_WINDOW,
        },
    }

    topology: str = "dumbbell"
    flow_counts: Tuple[int, ...] = tuple(QUICK_FLOW_COUNTS)
    duration: float = QUICK_DURATION
    measure_window: float = QUICK_MEASURE_WINDOW
    alpha: float = 0.995
    beta: float = 3.0
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "flow_counts", tuple(self.flow_counts))

    @property
    def scenario(self) -> ScenarioSpec:
        """This panel's topology/workload as a declarative scenario.

        Mirrors the largest cell (``max(flow_counts)``): the same scaled
        dumbbell (or parking lot) and a half TCP-PR / half SACK bulk
        population with the cell's 2 s start stagger.  Variant
        assignment is drawn from the mix rather than alternating
        deterministically, so the split is statistical, not positional.
        """
        count = max(self.flow_counts)
        topo: TopologySpec
        if self.topology == "dumbbell":
            scale = max(1.0, count / 8.0)
            topo = DumbbellSpec(
                num_pairs=1,
                bottleneck_bandwidth=max(15e6, DUMBBELL_PER_FLOW_BPS * count),
                access_bandwidth=1e9,
                access_delay=1e-3,
                queue_packets=int(100 * scale),
                seed=self.seed,
            )
        else:
            topo = ParkingLotSpec(seed=self.seed)
        return ScenarioSpec(
            topology=topo,
            workload=WorkloadSpec(
                arrival="fixed",
                flow_count=count,
                start_stagger=2.0,
                size="bulk",
                variant_mix=(("tcp-pr", 1.0), ("sack", 1.0)),
            ),
            duration=self.duration,
            seed=self.seed,
            name=self.name,
        )

    def cells(self) -> List[SweepCell]:
        # Per-cell seed = seed + count: each flow count gets its own
        # independent streams regardless of execution order.
        return [
            SweepCell(
                key=count,
                func=CELL_FUNC,
                params={
                    "topology": self.topology,
                    "count": count,
                    "duration": self.duration,
                    "measure_window": self.measure_window,
                    "alpha": self.alpha,
                    "beta": self.beta,
                },
                seed=self.seed + count,
            )
            for count in self.flow_counts
        ]

    def assemble(self, results: Mapping[int, FairnessResult]) -> Fig2Result:
        return Fig2Result(
            topology=self.topology,
            results={count: results[count] for count in self.flow_counts},
        )


def run_fig2(
    spec: Optional[Fig2Spec] = None,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    seed: Optional[int] = None,
    **exec_options: Any,
) -> Fig2Result:
    """Reproduce one panel of Figure 2.

    ``spec`` is required: ``run_fig2(Fig2Spec.presets(Scale.QUICK, ...),
    jobs=..., cache=..., seed=...)``.  Extra keyword arguments
    (``timeout``, ``retries``, ``keep_going``, ``runner``) forward to
    :func:`~repro.exec.runner.run_sweep`.
    """
    require_spec("run_fig2", Fig2Spec, spec, exec_options)
    return run_sweep(spec, jobs=jobs, cache=cache, seed=seed, **exec_options)


def format_fig2(result: Fig2Result) -> str:
    """Render the reproduced figure as the paper's series, textually."""
    lines = [
        f"Figure 2 ({result.topology}): normalized throughput, "
        "TCP-PR vs TCP-SACK",
        f"{'flows':>6} {'mean T (tcp-pr)':>16} {'mean T (sack)':>14} "
        f"{'CoV (tcp-pr)':>13} {'CoV (sack)':>11} {'loss':>7}",
    ]
    for count in sorted(result.results):
        res = result.results[count]
        lines.append(
            f"{count:>6} {res.mean_normalized['tcp-pr']:>16.3f} "
            f"{res.mean_normalized['sack']:>14.3f} "
            f"{res.cov['tcp-pr']:>13.3f} {res.cov['sack']:>11.3f} "
            f"{res.loss_rate:>6.2%}"
        )
    return "\n".join(lines)

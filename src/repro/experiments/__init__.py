"""Experiment harness: one module per table/figure of the paper.

* :mod:`repro.experiments.fig2_fairness` — Figure 2 (fairness of TCP-PR
  vs TCP-SACK on dumbbell and parking-lot topologies).
* :mod:`repro.experiments.fig3_cov` — Figure 3 (coefficient of variation
  vs loss rate).
* :mod:`repro.experiments.fig4_params` — Figure 4 (sensitivity to the
  TCP-PR parameters alpha and beta) and the Section 4 extreme-loss beta
  sweep.
* :mod:`repro.experiments.fig6_multipath` — Figure 6 (throughput under
  ε-parameterized multipath routing for all protocols).

Each module exposes a ``run_*`` function returning a result dataclass,
plus formatting helpers used by the benchmark suite to print the same
rows/series the paper reports.
"""

from repro.experiments.runner import (
    FairnessResult,
    FairnessScenario,
    build_fairness_scenario,
    run_fairness,
)

__all__ = [
    "FairnessResult",
    "FairnessScenario",
    "build_fairness_scenario",
    "run_fairness",
]

"""Experiment harness: one module per table/figure of the paper.

* :mod:`repro.experiments.fig2_fairness` — Figure 2 (fairness of TCP-PR
  vs TCP-SACK on dumbbell and parking-lot topologies).
* :mod:`repro.experiments.fig3_cov` — Figure 3 (coefficient of variation
  vs loss rate).
* :mod:`repro.experiments.fig4_params` — Figure 4 (sensitivity to the
  TCP-PR parameters alpha and beta) and the Section 4 extreme-loss beta
  sweep.
* :mod:`repro.experiments.fig6_multipath` — Figure 6 (throughput under
  ε-parameterized multipath routing for all protocols).
* :mod:`repro.experiments.fig7_faults` — Figure 7 (extension: goodput
  under scheduled link outages, path blackouts, and ACK loss, via
  :mod:`repro.faults`).

Each figure is described by a declarative :class:`ExperimentSpec`
subclass (``Fig2Spec`` ... ``Fig6Spec``) carrying quick/paper
:class:`Scale` presets, and executed by the sweep executor
(:mod:`repro.exec`): the ``run_fig*`` entry points share the uniform
signature ``run_figN(spec, *, jobs, cache, seed)`` (legacy keyword
forms still work), fan independent cells over a process pool, and reuse
cached results from ``.repro-cache/``.  Formatting helpers print the
same rows/series the paper reports.
"""

from repro.exec import (
    ExperimentSpec,
    ParallelRunner,
    ResultCache,
    Scale,
    SweepCell,
    run_sweep,
)
from repro.experiments.runner import (
    FairnessResult,
    FairnessScenario,
    build_fairness_scenario,
    run_fairness,
)
from repro.experiments.fig2_fairness import Fig2Result, Fig2Spec, run_fig2
from repro.experiments.fig3_cov import Fig3Result, Fig3Spec, run_fig3
from repro.experiments.fig4_params import (
    BetaSweepSpec,
    Fig4Result,
    Fig4Spec,
    run_extreme_loss_beta_sweep,
    run_fig4,
)
from repro.experiments.fig6_multipath import Fig6Result, Fig6Spec, run_fig6
from repro.experiments.fig7_faults import Fig7Result, Fig7Spec, run_fig7

__all__ = [
    "BetaSweepSpec",
    "ExperimentSpec",
    "FairnessResult",
    "FairnessScenario",
    "Fig2Result",
    "Fig2Spec",
    "Fig3Result",
    "Fig3Spec",
    "Fig4Result",
    "Fig4Spec",
    "Fig6Result",
    "Fig6Spec",
    "Fig7Result",
    "Fig7Spec",
    "ParallelRunner",
    "ResultCache",
    "Scale",
    "SweepCell",
    "build_fairness_scenario",
    "run_extreme_loss_beta_sweep",
    "run_fairness",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig6",
    "run_fig7",
    "run_sweep",
]

"""Shared experiment machinery: fairness scenarios (Sections 4's setup).

A *fairness scenario* runs an equal number of flows of two protocols
(TCP-PR and TCP-SACK in the paper) between a common source and
destination over a chosen topology, measures each flow's goodput over the
last ``measure_window`` seconds, and reports the paper's fairness
metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.fairness import (
    coefficient_of_variation,
    mean_normalized_throughput,
    normalized_throughputs,
)
from repro.app.bulk import BulkTransfer
from repro.core.pr import PrConfig
from repro.experiments.serialize import register_result_type
from repro.net.network import Network
from repro.tcp.base import TcpConfig
from repro.topologies.base import Topology
from repro.topologies.dumbbell import DumbbellSpec
from repro.topologies.parking_lot import CROSS_TRAFFIC_PAIRS, ParkingLotSpec
from repro.obs import maybe_observe
from repro.obs.monitors import FlowThroughputMonitor
from repro.util.units import MBPS


@dataclass
class FairnessScenario:
    """A constructed-but-not-yet-run fairness experiment."""

    network: Network
    topology: str
    flows: List[BulkTransfer]
    monitors: List[FlowThroughputMonitor]
    cross_flows: List[BulkTransfer] = field(default_factory=list)
    bottleneck_links: List[str] = field(default_factory=list)


@register_result_type
@dataclass
class FairnessResult:
    """Outcome of a fairness run (the quantities plotted in Figs 2-4).

    Registered with the serializer so the sweep executor's result cache
    (:mod:`repro.exec.cache`) can round-trip it: every field is
    JSON-able with string keys.
    """

    topology: str
    total_flows: int
    duration: float
    measure_window: float
    #: protocol -> per-flow goodput (bits/second) over the window.
    throughputs: Dict[str, List[float]]
    #: protocol -> per-flow normalized throughput (over all flows).
    normalized: Dict[str, List[float]]
    #: protocol -> mean normalized throughput (Figure 2's headline).
    mean_normalized: Dict[str, float]
    #: protocol -> coefficient of variation of normalized throughput.
    cov: Dict[str, float]
    #: Aggregate bottleneck drop fraction (Figure 3's x-axis).
    loss_rate: float

    def mean_mbps(self, protocol: str) -> float:
        values = self.throughputs[protocol]
        return sum(values) / len(values) / MBPS


def build_fairness_scenario(
    topology: str = "dumbbell",
    total_flows: int = 8,
    variant_a: str = "tcp-pr",
    variant_b: str = "sack",
    pr_config: Optional[PrConfig] = None,
    tcp_config: Optional[TcpConfig] = None,
    dumbbell_spec: Optional[DumbbellSpec] = None,
    parking_spec: Optional[ParkingLotSpec] = None,
    seed: int = 0,
    monitor_interval: float = 0.5,
    start_stagger: float = 2.0,
) -> FairnessScenario:
    """Build a half-``variant_a`` / half-``variant_b`` fairness scenario.

    All main flows share one source host and one destination host (the
    paper: "these flows have a common source and destination").  On the
    parking lot, six long-lived TCP-SACK cross-traffic flows are added on
    Figure 1's (CSi, CDj) pairs.  Flow start times are staggered
    uniformly over ``start_stagger`` seconds to avoid phase effects.
    """
    if total_flows < 2 or total_flows % 2 != 0:
        raise ValueError(f"total_flows must be even and >= 2, got {total_flows}")

    built: Topology
    if topology == "dumbbell":
        # Fat access links by default so the r0->r1 link is the unique
        # bottleneck even with every flow sharing one source host.
        spec = (
            dumbbell_spec
            if dumbbell_spec is not None
            else DumbbellSpec(
                num_pairs=1,
                access_bandwidth=100 * MBPS,
                access_delay=1e-3,
                seed=seed,
            )
        )
        built = spec.build()
    elif topology == "parking-lot":
        pspec = (
            parking_spec if parking_spec is not None else ParkingLotSpec(seed=seed)
        )
        built = pspec.build()
    else:
        raise ValueError(f"unknown topology {topology!r}")
    network = built.network
    src, dst = built.senders[0], built.receivers[0]
    bottlenecks = list(built.bottlenecks)

    rng = network.sim.rng.stream("fairness-starts")
    flows: List[BulkTransfer] = []
    monitors: List[FlowThroughputMonitor] = []
    for i in range(total_flows):
        variant = variant_a if i < total_flows // 2 else variant_b
        flow = BulkTransfer(
            network,
            variant,
            src,
            dst,
            flow_id=i + 1,
            start_at=rng.uniform(0.0, start_stagger),
            tcp_config=TcpConfig(**vars(tcp_config)) if tcp_config else None,
            pr_config=PrConfig(**vars(pr_config)) if pr_config else None,
        )
        flows.append(flow)
        monitors.append(
            FlowThroughputMonitor(
                network.sim, flow.receiver, flow.mss_bytes, monitor_interval
            )
        )

    cross_flows: List[BulkTransfer] = []
    if topology == "parking-lot":
        for k, (cs, cd) in enumerate(CROSS_TRAFFIC_PAIRS):
            cross_flows.append(
                BulkTransfer(
                    network,
                    "sack",
                    cs,
                    cd,
                    flow_id=1000 + k,
                    start_at=rng.uniform(0.0, start_stagger),
                )
            )

    maybe_observe(network)
    return FairnessScenario(
        network=network,
        topology=topology,
        flows=flows,
        monitors=monitors,
        cross_flows=cross_flows,
        bottleneck_links=bottlenecks,
    )


def run_fairness_scenario(
    scenario: FairnessScenario,
    duration: float = 90.0,
    measure_window: float = 60.0,
) -> FairnessResult:
    """Run a built scenario and compute the fairness metrics."""
    if measure_window >= duration:
        raise ValueError("measure_window must be shorter than duration")
    network = scenario.network
    network.run(until=duration)

    throughputs: Dict[str, List[float]] = {}
    ordered_values: List[float] = []
    for flow, monitor in zip(scenario.flows, scenario.monitors):
        goodput = monitor.last_window_goodput_bps(measure_window)
        throughputs.setdefault(flow.variant, []).append(goodput)
        ordered_values.append(goodput)

    all_normalized = normalized_throughputs(ordered_values)
    normalized: Dict[str, List[float]] = {}
    for flow, value in zip(scenario.flows, all_normalized):
        normalized.setdefault(flow.variant, []).append(value)

    mean_norm = mean_normalized_throughput(throughputs)
    cov = {
        protocol: coefficient_of_variation(values)
        for protocol, values in normalized.items()
    }

    arrivals = 0
    drops = 0
    for name in scenario.bottleneck_links:
        src, dst = name.split("->")
        link = network.link(src, dst)
        arrivals += link.arrived_packets
        drops += link.total_drops
    loss_rate = drops / arrivals if arrivals else 0.0

    return FairnessResult(
        topology=scenario.topology,
        total_flows=len(scenario.flows),
        duration=duration,
        measure_window=measure_window,
        throughputs=throughputs,
        normalized=normalized,
        mean_normalized=mean_norm,
        cov=cov,
        loss_rate=loss_rate,
    )


def run_fairness(
    topology: str = "dumbbell",
    total_flows: int = 8,
    duration: float = 90.0,
    measure_window: float = 60.0,
    **build_kwargs,
) -> FairnessResult:
    """Convenience wrapper: build and run a fairness scenario."""
    scenario = build_fairness_scenario(
        topology=topology, total_flows=total_flows, **build_kwargs
    )
    return run_fairness_scenario(scenario, duration, measure_window)

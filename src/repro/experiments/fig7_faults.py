"""Figure 7 (extension): goodput under scheduled outages and blackouts.

The paper argues TCP-PR survives *persistent* reordering; this
experiment asks the complementary robustness question its Section 1
scenarios imply but never measure: what happens when paths don't merely
reorder but *fail* — a route withdrawn for seconds at a time, the link
behind it dark, ACKs blacked out, and an RTT spike when service returns.

Scenario per cell: one bulk flow over Figure 5's mesh with full
(ε = 0) per-packet multipath.  Every ``period`` seconds the shortest
path suffers a compound outage of ``outage`` seconds — a
:class:`~repro.faults.schedule.PathBlackout` (router withdraws the
route), a flushing :class:`~repro.faults.schedule.LinkDown` on the
path's first hop (packets in flight are lost), an
:class:`~repro.faults.schedule.AckLoss` window on the reverse hop
(feedback starves too), and a trailing 3×
:class:`~repro.faults.schedule.DelaySpike` when the link returns (the
paper's route-change RTT jump).  Goodput is measured over the whole run.

Expected shape: TCP-PR degrades roughly in proportion to the capacity
actually removed, because its timer-driven loss detection treats the
post-outage burst of reordering as reordering.  NewReno's DUPACK logic
misreads the same burst as loss upon loss and collapses its window far
below the surviving capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.app.bulk import BulkTransfer
from repro.core.pr import PrConfig
from repro.exec.runner import ResultCache, run_sweep
from repro.experiments._deprecation import require_spec
from repro.exec.spec import ExperimentSpec, Scale, SweepCell
from repro.faults.injector import Injector
from repro.faults.schedule import (
    AckLoss,
    DelaySpike,
    FaultEvent,
    FaultSchedule,
    LinkDown,
    LinkUp,
    PathBlackout,
)
from repro.obs import maybe_observe
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.workload import WorkloadSpec
from repro.tcp.base import TcpConfig
from repro.topologies.multipath_mesh import (
    MultipathMeshSpec,
    install_epsilon_routing,
)
from repro.util.units import MBPS, MS

#: Protocols compared (TCP-PR vs the classic DUPACK baseline).
PAPER_PROTOCOLS: Sequence[str] = ("tcp-pr", "newreno")
#: Outage durations (seconds of compound failure per period).
PAPER_OUTAGES: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0)
QUICK_OUTAGES: Sequence[float] = (0.0, 1.0, 2.0)
QUICK_DURATION = 20.0
PAPER_DURATION = 60.0

#: Same initial slow-start cap as Figure 6 (see fig6_multipath).
DEFAULT_INITIAL_SSTHRESH = 128.0

#: Livelock watchdog armed on every cell: a fault schedule must never be
#: able to wedge the event loop (cf. non-converging timeout loops).  The
#: densest legitimate same-instant burst (a full window of arrivals plus
#: their ACKs) is two orders of magnitude below this.
LIVELOCK_THRESHOLD = 1_000_000


def outage_schedule(
    outage: float,
    period: float,
    duration: float,
    origin: str = "src",
    dst: str = "dst",
    first_hop: str = "p0m0",
) -> FaultSchedule:
    """The compound fault pattern of one Figure 7 cell.

    Every ``period`` seconds starting at ``t = period``: path 0 blacks
    out for ``outage`` s while its first-hop link goes down (flushed)
    and its reverse hop drops ACKs; recovery brings a 3× delay spike
    for ``min(1, outage)`` s.  ``outage = 0`` yields an empty schedule
    (the fault-free baseline cell).
    """
    events: List[FaultEvent] = []
    if outage <= 0:
        return FaultSchedule(events)
    start = period
    while start + outage <= duration:
        events.append(
            PathBlackout(
                time=start, duration=outage,
                origin=origin, dst=dst, path_index=0,
            )
        )
        events.append(LinkDown(time=start, src=origin, dst=first_hop, flush=True))
        events.append(LinkUp(time=start + outage, src=origin, dst=first_hop))
        events.append(
            AckLoss(
                time=start, duration=outage,
                src=first_hop, dst=origin, rate=1.0,
            )
        )
        events.append(
            DelaySpike(
                time=start + outage, duration=min(1.0, outage),
                src=origin, dst=first_hop, factor=3.0,
            )
        )
        start += period
    return FaultSchedule(events)


@dataclass
class Fig7Result:
    """Goodput matrix: protocol -> {outage seconds -> Mbps (None = failed)}."""

    link_delay: float
    duration: float
    period: float
    goodput_mbps: Dict[str, Dict[float, Optional[float]]] = field(
        default_factory=dict
    )
    #: ``"protocol,outage" -> error summary`` for cells lost to failures
    #: (empty on a clean run); string keys so the result stays JSON-able.
    failures: Dict[str, str] = field(default_factory=dict)

    def series(self, protocol: str) -> List[Optional[float]]:
        return [
            self.goodput_mbps[protocol][outage]
            for outage in sorted(self.goodput_mbps[protocol])
        ]


#: Importable path of this figure's cell function (see :class:`SweepCell`).
CELL_FUNC = "repro.experiments.fig7_faults:run_fig7_cell"


def run_fig7_cell(
    *,
    protocol: str,
    schedule: List[Dict[str, Any]],
    link_delay: float,
    duration: float,
    seed: int,
) -> float:
    """One cell of Figure 7: a lone flow's goodput in Mbps under faults.

    ``schedule`` arrives in its JSON form (cells are plain data for the
    cache and the process boundary) and is revived here.

    When the executor activated ambient instrumentation (``--metrics-out``),
    the cell records its fault timeline and per-flow metrics; otherwise
    every :func:`maybe_observe` call is a no-op.  The construction order
    (injector armed before the flow) is part of the cached results'
    event ordering and must not change.
    """
    mesh_spec = MultipathMeshSpec(link_delay=link_delay, seed=seed)
    net = mesh_spec.build().network
    install_epsilon_routing(net, epsilon=0.0, reorder_acks=True)
    inst = maybe_observe()
    Injector(
        net,
        FaultSchedule.from_jsonable(schedule),
        monitor=inst.fault_timeline() if inst is not None else None,
    ).arm()
    flow = BulkTransfer(
        net,
        protocol,
        "src",
        "dst",
        flow_id=1,
        tcp_config=TcpConfig(initial_ssthresh=DEFAULT_INITIAL_SSTHRESH),
        pr_config=PrConfig(initial_ssthresh=DEFAULT_INITIAL_SSTHRESH),
    )
    maybe_observe(net)
    net.run(until=duration, livelock_threshold=LIVELOCK_THRESHOLD)
    return flow.delivered_bytes() * 8.0 / duration / MBPS


@dataclass(frozen=True)
class Fig7Spec(ExperimentSpec):
    """Declarative description of the Figure 7 outage sweep."""

    name: ClassVar[str] = "fig7"
    SCALE_PRESETS: ClassVar[Mapping[Scale, Mapping[str, Any]]] = {
        Scale.QUICK: {"outages": QUICK_OUTAGES, "duration": QUICK_DURATION},
        Scale.PAPER: {"outages": PAPER_OUTAGES, "duration": PAPER_DURATION},
    }

    link_delay: float = 10 * MS
    protocols: Tuple[str, ...] = tuple(PAPER_PROTOCOLS)
    outages: Tuple[float, ...] = tuple(QUICK_OUTAGES)
    period: float = 10.0
    duration: float = QUICK_DURATION
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "protocols", tuple(self.protocols))
        object.__setattr__(self, "outages", tuple(self.outages))

    @property
    def scenario(self) -> ScenarioSpec:
        """This sweep's topology/workload as a declarative scenario.

        One infinite bulk flow of the first listed protocol over the
        Figure 5 mesh at this sweep's link delay (outage schedules are
        an execution knob, not part of the population).
        """
        return ScenarioSpec(
            topology=MultipathMeshSpec(
                link_delay=self.link_delay, seed=self.seed
            ),
            workload=WorkloadSpec(
                arrival="fixed",
                flow_count=1,
                start_stagger=0.0,
                size="bulk",
                variant_mix=((self.protocols[0], 1.0),),
            ),
            duration=self.duration,
            seed=self.seed,
            name=self.name,
        )

    def cells(self) -> List[SweepCell]:
        return [
            SweepCell(
                key=(protocol, outage),
                func=CELL_FUNC,
                params={
                    "protocol": protocol,
                    "schedule": outage_schedule(
                        outage, self.period, self.duration
                    ).to_jsonable(),
                    "link_delay": self.link_delay,
                    "duration": self.duration,
                },
                seed=self.cell_seed(f"{protocol}/{outage:g}"),
            )
            for protocol in self.protocols
            for outage in self.outages
        ]

    def assemble(self, results: Mapping[Tuple[str, float], float]) -> Fig7Result:
        return self.assemble_partial(results, {})

    def assemble_partial(
        self, results: Mapping[Any, Any], errors: Mapping[Any, Any]
    ) -> Fig7Result:
        """Degrade gracefully: failed cells become ``None`` holes.

        The robustness figure keeps its shape under partial data — the
        whole point of ``--keep-going`` — with each hole's cause
        recorded in :attr:`Fig7Result.failures`.
        """
        result = Fig7Result(
            link_delay=self.link_delay,
            duration=self.duration,
            period=self.period,
        )
        for protocol in self.protocols:
            result.goodput_mbps[protocol] = {
                outage: results.get((protocol, outage))
                for outage in self.outages
            }
        for key, error in errors.items():
            protocol, outage = key
            result.failures[f"{protocol},{outage:g}"] = (
                f"{error.error}: {error.message}"
                if hasattr(error, "error")
                else str(error)
            )
        return result


def run_fig7(
    spec: Optional[Fig7Spec] = None,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    seed: Optional[int] = None,
    **exec_options: Any,
) -> Fig7Result:
    """Run the outage sweep.

    ``spec`` is required: ``run_fig7(Fig7Spec.presets(Scale.QUICK, ...),
    jobs=..., cache=..., seed=...)``.  Extra keyword arguments
    (``timeout``, ``retries``, ``keep_going``, ``runner``) forward to
    :func:`~repro.exec.runner.run_sweep`.
    """
    require_spec("run_fig7", Fig7Spec, spec, exec_options)
    return run_sweep(spec, jobs=jobs, cache=cache, seed=seed, **exec_options)


def format_fig7(result: Fig7Result) -> str:
    outages = sorted(next(iter(result.goodput_mbps.values())))
    header = " ".join(f"out={outage:<6g}" for outage in outages)
    lines = [
        f"Figure 7 (link delay {result.link_delay * 1e3:.0f} ms, "
        f"{result.period:g} s fault period): goodput in Mbps vs outage "
        "seconds",
        f"{'protocol':>9} {header}",
    ]
    for protocol, row in result.goodput_mbps.items():
        cells = " ".join(
            f"{row[outage]:>10.2f}" if row[outage] is not None else f"{'--':>10}"
            for outage in outages
        )
        lines.append(f"{protocol:>9} {cells}")
    for key, message in result.failures.items():
        lines.append(f"  FAILED {key}: {message}")
    return "\n".join(lines)

"""Figure 4: TCP-SACK's share vs TCP-PR's alpha and beta parameters.

The paper fixes 64 flows (32 TCP-SACK + 32 TCP-PR) and sweeps the TCP-PR
parameters: TCP-SACK's mean normalized throughput stays ≈ 1 for beta > 1
over a wide range of alpha; at beta = 1 TCP-SACK does *better* than
TCP-PR (mean normalized throughput > 1) because mxrtt = ewrtt makes
TCP-PR declare drops spuriously and back off too often.

Also reproduced here: the Section 4 text claim that under extreme loss
(> 15 % drop probability) TCP-SACK gets at most ~20 % more throughput at
beta = 10 while parity holds for 1 < beta < 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.pr import PrConfig
from repro.exec.runner import ResultCache, run_sweep
from repro.experiments._deprecation import require_spec
from repro.exec.spec import ExperimentSpec, Scale, SweepCell
from repro.experiments.runner import FairnessResult, run_fairness
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.workload import WorkloadSpec
from repro.topologies.dumbbell import DumbbellSpec
from repro.util.units import MBPS

PAPER_ALPHAS: Sequence[float] = (0.05, 0.25, 0.5, 0.75, 0.9, 0.995)
PAPER_BETAS: Sequence[float] = (1.0, 2.0, 3.0, 5.0, 10.0)
QUICK_ALPHAS: Sequence[float] = (0.5, 0.995)
QUICK_BETAS: Sequence[float] = (1.0, 3.0, 10.0)

QUICK_FLOWS = 8
PAPER_FLOWS = 64
QUICK_DURATION = 40.0
QUICK_MEASURE_WINDOW = 30.0
PAPER_DURATION = 160.0
PAPER_MEASURE_WINDOW = 60.0


@dataclass
class Fig4Result:
    """The mean-normalized-throughput surface over (alpha, beta)."""

    topology: str
    total_flows: int
    #: (alpha, beta) -> TCP-SACK's mean normalized throughput.
    sack_surface: Dict[Tuple[float, float], float]
    #: (alpha, beta) -> TCP-PR's mean normalized throughput.
    pr_surface: Dict[Tuple[float, float], float]


#: Importable path of this figure's cell function (see :class:`SweepCell`).
CELL_FUNC = "repro.experiments.fig4_params:run_fig4_cell"


def run_fig4_cell(
    *,
    topology: str,
    alpha: float,
    beta: float,
    total_flows: int,
    duration: float,
    measure_window: float,
    seed: int,
) -> FairnessResult:
    """One cell of Figure 4: a fairness run at one (alpha, beta) point."""
    return run_fairness(
        topology=topology,
        total_flows=total_flows,
        duration=duration,
        measure_window=measure_window,
        pr_config=PrConfig(alpha=alpha, beta=beta),
        seed=seed,
    )


@dataclass(frozen=True)
class Fig4Spec(ExperimentSpec):
    """Declarative description of the Figure 4 (alpha, beta) surface."""

    name: ClassVar[str] = "fig4"
    SCALE_PRESETS: ClassVar[Mapping[Scale, Mapping[str, Any]]] = {
        Scale.QUICK: {
            "alphas": QUICK_ALPHAS,
            "betas": QUICK_BETAS,
            "total_flows": QUICK_FLOWS,
            "duration": QUICK_DURATION,
            "measure_window": QUICK_MEASURE_WINDOW,
        },
        Scale.PAPER: {
            "alphas": PAPER_ALPHAS,
            "betas": PAPER_BETAS,
            "total_flows": PAPER_FLOWS,
            "duration": PAPER_DURATION,
            "measure_window": PAPER_MEASURE_WINDOW,
        },
    }

    topology: str = "dumbbell"
    alphas: Tuple[float, ...] = tuple(QUICK_ALPHAS)
    betas: Tuple[float, ...] = tuple(QUICK_BETAS)
    total_flows: int = QUICK_FLOWS
    duration: float = QUICK_DURATION
    measure_window: float = QUICK_MEASURE_WINDOW
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "alphas", tuple(self.alphas))
        object.__setattr__(self, "betas", tuple(self.betas))

    @property
    def scenario(self) -> ScenarioSpec:
        """This sweep's topology/workload as a declarative scenario.

        The (alpha, beta) surface shares one fairness setup: the default
        fat-access dumbbell and a half TCP-PR / half SACK bulk
        population of ``total_flows`` (statistically mixed).
        """
        return ScenarioSpec(
            topology=DumbbellSpec(
                num_pairs=1,
                access_bandwidth=100 * MBPS,
                access_delay=1e-3,
                seed=self.seed,
            ),
            workload=WorkloadSpec(
                arrival="fixed",
                flow_count=self.total_flows,
                start_stagger=2.0,
                size="bulk",
                variant_mix=(("tcp-pr", 1.0), ("sack", 1.0)),
            ),
            duration=self.duration,
            seed=self.seed,
            name=self.name,
        )

    def cells(self) -> List[SweepCell]:
        return [
            SweepCell(
                key=(alpha, beta),
                func=CELL_FUNC,
                params={
                    "topology": self.topology,
                    "alpha": alpha,
                    "beta": beta,
                    "total_flows": self.total_flows,
                    "duration": self.duration,
                    "measure_window": self.measure_window,
                },
                seed=self.seed,
            )
            for alpha in self.alphas
            for beta in self.betas
        ]

    def assemble(
        self, results: Mapping[Tuple[float, float], FairnessResult]
    ) -> Fig4Result:
        sack_surface: Dict[Tuple[float, float], float] = {}
        pr_surface: Dict[Tuple[float, float], float] = {}
        for alpha in self.alphas:
            for beta in self.betas:
                result = results[(alpha, beta)]
                sack_surface[(alpha, beta)] = result.mean_normalized["sack"]
                pr_surface[(alpha, beta)] = result.mean_normalized["tcp-pr"]
        return Fig4Result(
            topology=self.topology,
            total_flows=self.total_flows,
            sack_surface=sack_surface,
            pr_surface=pr_surface,
        )


def run_fig4(
    spec: Optional[Fig4Spec] = None,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    seed: Optional[int] = None,
    **exec_options: Any,
) -> Fig4Result:
    """Reproduce one panel of Figure 4.

    ``spec`` is required: ``run_fig4(Fig4Spec.presets(Scale.QUICK, ...),
    jobs=..., cache=..., seed=...)``.
    """
    require_spec("run_fig4", Fig4Spec, spec, exec_options)
    return run_sweep(spec, jobs=jobs, cache=cache, seed=seed, **exec_options)


def format_fig4(result: Fig4Result) -> str:
    alphas = sorted({key[0] for key in result.sack_surface})
    betas = sorted({key[1] for key in result.sack_surface})
    lines = [
        f"Figure 4 ({result.topology}): TCP-SACK mean normalized throughput "
        f"vs TCP-PR (alpha, beta), {result.total_flows} flows",
        "alpha \\ beta " + " ".join(f"{beta:>7.1f}" for beta in betas),
    ]
    for alpha in alphas:
        row = " ".join(
            f"{result.sack_surface[(alpha, beta)]:>7.3f}" for beta in betas
        )
        lines.append(f"{alpha:>12.3f} {row}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Section 4 text claim: extreme-loss beta sweep
# ----------------------------------------------------------------------
@dataclass
class BetaSweepPoint:
    beta: float
    loss_rate: float
    sack_mean_normalized: float
    pr_mean_normalized: float
    sack_advantage: float  # sack mean T / pr mean T - 1


#: Importable path of the extreme-loss sweep's cell function.
BETA_SWEEP_CELL_FUNC = "repro.experiments.fig4_params:run_beta_sweep_cell"


def run_beta_sweep_cell(
    *,
    beta: float,
    alpha: float,
    total_flows: int,
    bottleneck_mbps: float,
    duration: float,
    measure_window: float,
    seed: int,
) -> FairnessResult:
    """One cell of the extreme-loss sweep: a high-contention run at one beta."""
    return run_fairness(
        topology="dumbbell",
        total_flows=total_flows,
        duration=duration,
        measure_window=measure_window,
        pr_config=PrConfig(alpha=alpha, beta=beta),
        dumbbell_spec=DumbbellSpec(
            num_pairs=1,
            bottleneck_bandwidth=bottleneck_mbps * MBPS,
            access_bandwidth=100 * MBPS,
            access_delay=1e-3,
            seed=seed,
        ),
        seed=seed,
    )


@dataclass(frozen=True)
class BetaSweepSpec(ExperimentSpec):
    """Declarative description of the Section 4 extreme-loss beta sweep."""

    name: ClassVar[str] = "fig4-extreme"
    SCALE_PRESETS: ClassVar[Mapping[Scale, Mapping[str, Any]]] = {
        Scale.QUICK: {
            "duration": QUICK_DURATION,
            "measure_window": QUICK_MEASURE_WINDOW,
        },
        Scale.PAPER: {
            "duration": PAPER_DURATION,
            "measure_window": PAPER_MEASURE_WINDOW,
        },
    }

    betas: Tuple[float, ...] = (1.5, 3.0, 5.0, 10.0)
    alpha: float = 0.995
    total_flows: int = 8
    bottleneck_mbps: float = 1.5
    duration: float = QUICK_DURATION
    measure_window: float = QUICK_MEASURE_WINDOW
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "betas", tuple(self.betas))

    def cells(self) -> List[SweepCell]:
        return [
            SweepCell(
                key=beta,
                func=BETA_SWEEP_CELL_FUNC,
                params={
                    "beta": beta,
                    "alpha": self.alpha,
                    "total_flows": self.total_flows,
                    "bottleneck_mbps": self.bottleneck_mbps,
                    "duration": self.duration,
                    "measure_window": self.measure_window,
                },
                seed=self.seed,
            )
            for beta in self.betas
        ]

    def assemble(
        self, results: Mapping[float, FairnessResult]
    ) -> List[BetaSweepPoint]:
        points: List[BetaSweepPoint] = []
        for beta in self.betas:
            result = results[beta]
            sack = result.mean_normalized["sack"]
            pr = result.mean_normalized["tcp-pr"]
            points.append(
                BetaSweepPoint(
                    beta=beta,
                    loss_rate=result.loss_rate,
                    sack_mean_normalized=sack,
                    pr_mean_normalized=pr,
                    sack_advantage=(sack / pr - 1.0) if pr > 0 else float("inf"),
                )
            )
        return points


def run_extreme_loss_beta_sweep(
    spec: Optional[BetaSweepSpec] = None,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    seed: Optional[int] = None,
    **exec_options: Any,
) -> List[BetaSweepPoint]:
    """High-contention beta sweep (the paper's >15 %-loss robustness check).

    ``spec`` is required:
    ``run_extreme_loss_beta_sweep(BetaSweepSpec.presets(Scale.QUICK, ...),
    jobs=..., cache=..., seed=...)``.
    """
    require_spec(
        "run_extreme_loss_beta_sweep", BetaSweepSpec, spec, exec_options
    )
    return run_sweep(spec, jobs=jobs, cache=cache, seed=seed, **exec_options)


def format_beta_sweep(points: List[BetaSweepPoint]) -> str:
    lines = [
        "Section 4 extreme-loss beta sweep (dumbbell, high contention)",
        f"{'beta':>6} {'loss':>7} {'mean T sack':>12} {'mean T pr':>10} "
        f"{'sack advantage':>15}",
    ]
    for point in points:
        lines.append(
            f"{point.beta:>6.1f} {point.loss_rate:>6.2%} "
            f"{point.sack_mean_normalized:>12.3f} "
            f"{point.pr_mean_normalized:>10.3f} {point.sack_advantage:>14.1%}"
        )
    return "\n".join(lines)

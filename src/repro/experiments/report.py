"""Textual reporting helpers shared by benchmarks and examples.

The benchmark suite prints the same rows/series the paper's figures show;
these helpers keep that formatting in one place and provide simple ASCII
bars for eyeballing shapes in a terminal.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def ascii_bar(value: float, maximum: float, width: int = 40) -> str:
    """A proportional bar of '#' characters."""
    if maximum <= 0:
        return ""
    filled = int(round(width * max(0.0, value) / maximum))
    return "#" * min(filled, width)


def bar_chart(
    rows: Mapping[str, float], width: int = 40, unit: str = ""
) -> str:
    """Render a labeled horizontal bar chart."""
    if not rows:
        return "(no data)"
    maximum = max(rows.values())
    label_width = max(len(label) for label in rows)
    lines = []
    for label, value in rows.items():
        bar = ascii_bar(value, maximum, width)
        lines.append(f"{label:>{label_width}} {value:8.2f}{unit} {bar}")
    return "\n".join(lines)


def table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render a fixed-width text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(header.rjust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def markdown_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a GitHub-flavored markdown table (for EXPERIMENTS.md)."""
    lines = [
        "| " + " | ".join(str(header) for header in headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    for row in rows:
        cells = [
            f"{cell:.3f}" if isinstance(cell, float) else str(cell) for cell in row
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def comparison_summary(series: Dict[str, float], reference: str) -> str:
    """One-line who-wins summary relative to a reference entry."""
    if reference not in series:
        raise ValueError(f"reference {reference!r} not in series")
    base = series[reference]
    parts = []
    for name, value in series.items():
        if name == reference:
            continue
        if base > 0:
            parts.append(f"{name}: {value / base:.2f}x of {reference}")
        else:
            parts.append(f"{name}: {value:.2f} (reference is 0)")
    return "; ".join(parts)

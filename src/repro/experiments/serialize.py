"""JSON-friendly serialization of experiment results.

The result dataclasses (``FairnessResult``, ``Fig6Result``, ...) contain
nested dataclasses and tuple-keyed dicts (the (alpha, beta) surface of
Figure 4), which ``json.dumps`` rejects.  :func:`result_to_jsonable`
converts any of them into plain dict/list/str/number structures, and
:func:`dump_result` writes them to disk — the handoff point for external
plotting tools.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any


def result_to_jsonable(value: Any) -> Any:
    """Recursively convert a result object to JSON-compatible types.

    Handles dataclasses, dicts (tuple keys become comma-joined strings),
    lists/tuples, and the float infinities (which JSON lacks — they
    become the strings "inf"/"-inf").
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: result_to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if isinstance(key, tuple):
                key = ",".join(str(part) for part in key)
            elif not isinstance(key, str):
                key = str(key)
            out[key] = result_to_jsonable(item)
        return out
    if isinstance(value, (list, tuple)):
        return [result_to_jsonable(item) for item in value]
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if value == float("-inf"):
            return "-inf"
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return str(value)  # last resort: repr-ish


def dump_result(result: Any, path: "str | Path", indent: int = 2) -> Path:
    """Serialize ``result`` to JSON at ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_jsonable(result), indent=indent) + "\n")
    return path

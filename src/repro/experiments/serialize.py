"""JSON-friendly serialization of experiment results.

The result dataclasses (``FairnessResult``, ``Fig6Result``, ...) contain
nested dataclasses and tuple-keyed dicts (the (alpha, beta) surface of
Figure 4), which ``json.dumps`` rejects.  :func:`result_to_jsonable`
converts any of them into plain dict/list/str/number structures, and
:func:`dump_result` writes them to disk — the handoff point for external
plotting tools.

The sweep executor's result cache (:mod:`repro.exec.cache`) additionally
needs the *reverse* direction: a cache hit must hand back the same
object the cell function originally returned.  Dataclasses registered
with :func:`register_result_type` are stored with a type tag by
:func:`encode_result` and reconstructed by :func:`decode_result`
(including reviving the ``"inf"``/``"-inf"`` strings
:func:`result_to_jsonable` uses for the float infinities).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Type


def result_to_jsonable(value: Any) -> Any:
    """Recursively convert a result object to JSON-compatible types.

    Handles dataclasses, dicts (tuple keys become comma-joined strings),
    lists/tuples, and the float infinities (which JSON lacks — they
    become the strings "inf"/"-inf").
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: result_to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if isinstance(key, tuple):
                key = ",".join(str(part) for part in key)
            elif not isinstance(key, str):
                key = str(key)
            out[key] = result_to_jsonable(item)
        return out
    if isinstance(value, (list, tuple)):
        return [result_to_jsonable(item) for item in value]
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if value == float("-inf"):
            return "-inf"
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return str(value)  # last resort: repr-ish


def dump_result(result: Any, path: "str | Path", indent: int = 2) -> Path:
    """Serialize ``result`` to JSON at ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_jsonable(result), indent=indent) + "\n")
    return path


# ----------------------------------------------------------------------
# Typed round-tripping for the result cache
# ----------------------------------------------------------------------

#: Dataclasses the cache may reconstruct, by qualified name.
_RESULT_TYPES: Dict[str, Type] = {}


def register_result_type(cls: Type) -> Type:
    """Register a result dataclass for cache round-tripping.

    Registered classes must be reconstructable as ``cls(**fields)`` from
    their :func:`result_to_jsonable` form — i.e. every field is itself
    JSON-able with string keys.  Usable as a class decorator.
    """
    _RESULT_TYPES[cls.__qualname__] = cls
    return cls


def registered_result_types() -> Dict[str, Type]:
    """A copy of the registry (introspection/tests)."""
    return dict(_RESULT_TYPES)


def revive_floats(value: Any) -> Any:
    """Undo :func:`result_to_jsonable`'s infinity encoding, recursively."""
    if isinstance(value, dict):
        return {key: revive_floats(item) for key, item in value.items()}
    if isinstance(value, list):
        return [revive_floats(item) for item in value]
    if value == "inf":
        return float("inf")
    if value == "-inf":
        return float("-inf")
    return value


def encode_result(value: Any) -> Dict[str, Any]:
    """Encode a cell result as a JSON-able ``{"type": ..., "data": ...}``.

    Registered dataclasses carry their type tag and are rebuilt on
    decode; everything else is stored untyped and comes back as the
    plain JSON data (so cell functions should return either JSON-able
    values or registered dataclasses).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__qualname__
        if _RESULT_TYPES.get(name) is type(value):
            return {"type": name, "data": result_to_jsonable(value)}
    return {"type": None, "data": result_to_jsonable(value)}


def decode_result(blob: Dict[str, Any]) -> Any:
    """Decode :func:`encode_result` output back into a result object."""
    type_name = blob["type"]
    data = revive_floats(blob["data"])
    if type_name is None:
        return data
    cls = _RESULT_TYPES.get(type_name)
    if cls is None:
        raise KeyError(
            f"result type {type_name!r} is not registered; "
            "cannot reconstruct the cached value"
        )
    return cls(**data)

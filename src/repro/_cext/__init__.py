"""Optional C accelerator for the hot core (engine, link, node).

This package holds the hand-written CPython extension ``_core``
(``_coremodule.c``) whose classes subclass the pure-python hot-core
classes and override only the hot methods.  It is **optional**: nothing
imports it directly — :mod:`repro.core.engine_select` imports it lazily
and falls back to the pure classes when it is absent.  Build it with::

    python setup.py build_ext --inplace

See ``docs/COMPILED.md`` for the build matrix, selection precedence,
fallback semantics, and the measured speedups.
"""

/* C accelerator for the repro hot core: Simulator, Link, Node.
 *
 * Design (see docs/COMPILED.md):
 *
 *   - Every compiled class SUBCLASSES its pure-python counterpart and
 *     overrides only the hot methods, so isinstance checks, inherited
 *     cold methods (__init__, checkpointing, the component registry),
 *     and user code keep working unchanged.
 *
 *   - Simulator state is shadowed: the compiled subclass appends a C
 *     struct after the base object layout (event heap as an array of
 *     structs, clock/seq/live counters as C scalars) and exposes every
 *     base slot name through getset descriptors, so pure-python code --
 *     including the inherited __init__, EventHandle.cancel, the
 *     sanitizer audits, and pickle -- reads and writes the C state
 *     transparently.  The base __slots__ storage is never used.
 *
 *   - Semantics are bit-identical to the pure engine by construction:
 *     event seq numbers are allocated in the same order, the heap pops
 *     in the same (time, seq) total order (seqs are unique, so internal
 *     array layout cannot matter), and the original time *objects* are
 *     preserved so the clock shows exactly what a pure run would show.
 *     The golden suite asserts this end to end.
 *
 *   - Paths that need watchdogs, profiling, or the sanitizer delegate
 *     to the pure implementation (via _run_general_compiled in
 *     repro.sim.engine) built on the C _pop_due primitive; only the
 *     watchdog-free fast paths are fully in C.
 *
 *   - Link/Node override the per-packet methods and call the C
 *     scheduler internals directly, delegating every cold or unusual
 *     branch (faults, loss models, observers, broken source routes)
 *     back to the pure methods.  ``dst.receive`` stays a per-event
 *     attribute lookup on purpose -- repro.obs.trace patches it.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <time.h>

/* ------------------------------------------------------------------ */
/* Cached objects (module-lifetime, set in module exec)                */
/* ------------------------------------------------------------------ */
static PyObject *pure_simulator;       /* repro.sim.engine.Simulator */
static PyObject *pure_link;            /* repro.net.link.Link */
static PyObject *pure_node;            /* repro.net.node.Node */
static PyTypeObject *event_handle_type;
static PyTypeObject *droptail_type;    /* repro.net.queues.DropTailQueue */
static PyObject *exc_schedule_in_past;
static PyObject *exc_simulation_error;
static PyObject *empty_tuple;
static PyObject *str_empty;
static PyObject *deque_append;         /* collections.deque.append descriptor */
static PyObject *deque_popleft;
static PyObject *pure_link_enqueue;    /* unbound pure fallbacks */
static PyObject *pure_node_receive;
static PyObject *pure_node_next_hop;

static PyObject *csim_type_obj;        /* the compiled Simulator type */
static PyObject *clink_type_obj;
static PyObject *cnode_type_obj;
static Py_ssize_t csim_state_off;      /* C struct offset inside instances */

/* Lazily resolved (import cycles: these import repro.core / checkpoint) */
static PyObject *run_general_fn;       /* repro.sim.engine._run_general_compiled */
static PyObject *unpickle_sim_fn;      /* repro.core.engine_select._unpickle_* */
static PyObject *unpickle_link_fn;
static PyObject *unpickle_node_fn;

/* Interned attribute names */
static PyObject *str_heap_high_water, *str_receive, *str_name, *str_agents,
    *str_links, *str_routes, *str_dead_letters, *str_enqueue, *str_push,
    *str_pop, *str_get, *str_delay_for, *str_record, *str_getstate,
    *str_notify_drop, *str_run_checkpointed, *str_post_in;

/* Pure-class slot offsets, resolved from member descriptors at init.   */
static Py_ssize_t eh_time, eh_seq, eh_callback, eh_label, eh_owner;
static Py_ssize_t lk_sim, lk_dst, lk_delay, lk_queue, lk_loss_model,
    lk_delay_model, lk_finish_cb, lk_label_tx, lk_label_rx, lk_inv_bw,
    lk_post_in, lk_busy, lk_tx_packets, lk_tx_bytes, lk_arrived, lk_up,
    lk_delay_scale, lk_fault_rate;
static Py_ssize_t pk_size_bytes, pk_hops, pk_route, pk_route_index, pk_dst,
    pk_flow_id;
static Py_ssize_t q_capacity, q_buffer, q_enqueued, q_maxocc, q_obs;

#define NUM_SIM_BASE_SLOTS 10
static Py_ssize_t sim_base_slot_off[NUM_SIM_BASE_SLOTS];

#define SLOT(obj, off) (*(PyObject **)((char *)(obj) + (off)))

/* ------------------------------------------------------------------ */
/* Heap entries and per-simulator C state                              */
/* ------------------------------------------------------------------ */
#define EV_HANDLE 1

typedef struct {
    double time;          /* comparison key (== float(time_obj)) */
    long long seq;
    PyObject *time_obj;   /* original time object, preserved for the clock */
    PyObject *target;     /* callable, or EventHandle when EV_HANDLE */
    PyObject *args;       /* NULL (no args) or the args object (a tuple) */
    PyObject *label;
    int flags;
} entry_t;

typedef struct {
    entry_t *entries;
    Py_ssize_t size;
    Py_ssize_t capacity;
    double now_d;         /* kept in sync with now_obj */
    long long seq;
    long long live;
    long long dispatched;
    int running;
    PyObject *now_obj;
    PyObject *rng;
    PyObject *sanitize;
    PyObject *profile;    /* SimProfile or Py_None */
    PyObject *components;
} csim_state;

#define CSIM_ST(o) ((csim_state *)((char *)(o) + csim_state_off))

static inline int
entry_lt(const entry_t *a, const entry_t *b)
{
    if (a->time < b->time) {
        return 1;
    }
    if (a->time > b->time) {
        return 0;
    }
    return a->seq < b->seq;
}

static void
entry_decref(entry_t *e)
{
    Py_XDECREF(e->time_obj);
    Py_XDECREF(e->target);
    Py_XDECREF(e->args);
    Py_XDECREF(e->label);
}

static int
ensure_capacity(csim_state *st, Py_ssize_t need)
{
    Py_ssize_t cap;
    entry_t *mem;
    if (st->capacity >= need) {
        return 0;
    }
    cap = st->capacity ? st->capacity : 32;
    while (cap < need) {
        cap *= 2;
    }
    mem = (entry_t *)PyMem_Realloc(st->entries, (size_t)cap * sizeof(entry_t));
    if (mem == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    st->entries = mem;
    st->capacity = cap;
    return 0;
}

static void
siftup_entry(entry_t *arr, Py_ssize_t pos)
{
    entry_t e = arr[pos];
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!entry_lt(&e, &arr[parent])) {
            break;
        }
        arr[pos] = arr[parent];
        pos = parent;
    }
    arr[pos] = e;
}

static void
siftdown_entry(entry_t *arr, Py_ssize_t size, Py_ssize_t pos)
{
    entry_t e = arr[pos];
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= size) {
            break;
        }
        if (child + 1 < size && entry_lt(&arr[child + 1], &arr[child])) {
            child++;
        }
        if (!entry_lt(&arr[child], &e)) {
            break;
        }
        arr[pos] = arr[child];
        pos = child;
    }
    arr[pos] = e;
}

/* Remove the root; the caller must have copied entries[0] out first.   */
static void
heap_remove_root(csim_state *st)
{
    st->size--;
    if (st->size > 0) {
        st->entries[0] = st->entries[st->size];
        siftdown_entry(st->entries, st->size, 0);
    }
}

/* Push one entry.  Increfs everything it stores; never runs Python.    */
static int
heap_push(csim_state *st, double time, PyObject *time_obj, long long seq,
          PyObject *target, PyObject *args, PyObject *label, int flags)
{
    entry_t *e;
    if (ensure_capacity(st, st->size + 1) < 0) {
        return -1;
    }
    e = &st->entries[st->size];
    e->time = time;
    e->seq = seq;
    e->time_obj = Py_NewRef(time_obj);
    e->target = Py_NewRef(target);
    e->args = args == NULL ? NULL : Py_NewRef(args);
    e->label = Py_NewRef(label);
    e->flags = flags;
    siftup_entry(st->entries, st->size);
    st->size++;
    return 0;
}

/* live++ plus the profile heap high-water check (cold when detached). */
static int
note_scheduled(csim_state *st, long long added)
{
    st->live += added;
    if (st->profile != NULL && st->profile != Py_None) {
        PyObject *hw = PyObject_GetAttr(st->profile, str_heap_high_water);
        long long cur;
        if (hw == NULL) {
            return -1;
        }
        cur = PyLong_AsLongLong(hw);
        Py_DECREF(hw);
        if (cur == -1 && PyErr_Occurred()) {
            return -1;
        }
        if (st->live > cur) {
            PyObject *nv = PyLong_FromLongLong(st->live);
            int r;
            if (nv == NULL) {
                return -1;
            }
            r = PyObject_SetAttr(st->profile, str_heap_high_water, nv);
            Py_DECREF(nv);
            if (r < 0) {
                return -1;
            }
        }
    }
    return 0;
}

static int
raise_schedule_in_past(PyObject *time_obj, PyObject *now_obj)
{
    PyObject *exc = PyObject_CallFunctionObjArgs(
        exc_schedule_in_past, time_obj, now_obj ? now_obj : Py_None, NULL);
    if (exc != NULL) {
        PyErr_SetObject(exc_schedule_in_past, exc);
        Py_DECREF(exc);
    }
    return -1;
}

/* float(x) as a double with error signalling via *err.                 */
static inline double
as_double(PyObject *x, int *err)
{
    double d;
    if (PyFloat_CheckExact(x)) {
        *err = 0;
        return PyFloat_AS_DOUBLE(x);
    }
    d = PyFloat_AsDouble(x);
    if (d == -1.0 && PyErr_Occurred()) {
        *err = 1;
        return 0.0;
    }
    *err = 0;
    return d;
}

/* now + delay, preserving pure semantics: float + float stays a C
 * double add (bit-identical to CPython's float.__add__); anything else
 * goes through PyNumber_Add so e.g. integer clocks behave exactly as
 * they would in pure python.  Returns a new reference. */
static PyObject *
add_now_delay(csim_state *st, PyObject *delay, double *time_d)
{
    PyObject *t;
    double td;
    int err;
    if (PyFloat_CheckExact(delay) && st->now_obj != NULL
        && PyFloat_CheckExact(st->now_obj)) {
        td = st->now_d + PyFloat_AS_DOUBLE(delay);
        *time_d = td;
        return PyFloat_FromDouble(td);
    }
    t = PyNumber_Add(st->now_obj != NULL ? st->now_obj : Py_False, delay);
    if (t == NULL) {
        return NULL;
    }
    td = as_double(t, &err);
    if (err) {
        Py_DECREF(t);
        return NULL;
    }
    *time_d = td;
    return t;
}

/* Dispatch one event exactly like the pure engine's arity fork.        */
static PyObject *
call_event(PyObject *callback, PyObject *args)
{
    if (args == NULL) {
        return PyObject_CallNoArgs(callback);
    }
    if (PyTuple_CheckExact(args)) {
        if (PyTuple_GET_SIZE(args) == 1) {
            return PyObject_CallOneArg(callback, PyTuple_GET_ITEM(args, 0));
        }
        return PyObject_Call(callback, args, NULL);
    }
    {
        PyObject *t = PySequence_Tuple(args);
        PyObject *r;
        if (t == NULL) {
            return NULL;
        }
        r = PyObject_Call(callback, t, NULL);
        Py_DECREF(t);
        return r;
    }
}

/* ------------------------------------------------------------------ */
/* Fastcall argument filling: positional + keyword into a fixed table  */
/* ------------------------------------------------------------------ */
static int
fill_args(const char *fname, PyObject *const *args, Py_ssize_t nargs,
          PyObject *kwnames, const char *const names[], Py_ssize_t total,
          Py_ssize_t required, PyObject **out)
{
    Py_ssize_t i;
    for (i = 0; i < total; i++) {
        out[i] = NULL;
    }
    if (nargs > total) {
        PyErr_Format(PyExc_TypeError,
                     "%s() takes at most %zd arguments (%zd given)", fname,
                     total, nargs);
        return -1;
    }
    for (i = 0; i < nargs; i++) {
        out[i] = args[i];
    }
    if (kwnames != NULL) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (i = 0; i < nkw; i++) {
            PyObject *key = PyTuple_GET_ITEM(kwnames, i);
            const char *k = PyUnicode_AsUTF8(key);
            Py_ssize_t t, found = -1;
            if (k == NULL) {
                return -1;
            }
            for (t = 0; t < total; t++) {
                if (strcmp(k, names[t]) == 0) {
                    found = t;
                    break;
                }
            }
            if (found < 0) {
                PyErr_Format(PyExc_TypeError,
                             "%s() got an unexpected keyword argument '%s'",
                             fname, k);
                return -1;
            }
            if (out[found] != NULL) {
                PyErr_Format(PyExc_TypeError,
                             "%s() got multiple values for argument '%s'",
                             fname, k);
                return -1;
            }
            out[found] = args[nargs + i];
        }
    }
    for (i = 0; i < required; i++) {
        if (out[i] == NULL) {
            PyErr_Format(PyExc_TypeError,
                         "%s() missing required argument '%s'", fname,
                         names[i]);
            return -1;
        }
    }
    return 0;
}

/* ================================================================== */
/* Simulator                                                           */
/* ================================================================== */

/* ---------------- getsets: base slot names -> C state -------------- */
static PyObject *
csim_get_now(PyObject *self, void *closure)
{
    csim_state *st = CSIM_ST(self);
    (void)closure;
    if (st->now_obj == NULL) {
        PyErr_SetString(PyExc_AttributeError, "now");
        return NULL;
    }
    return Py_NewRef(st->now_obj);
}

static int
csim_set_now(PyObject *self, PyObject *value, void *closure)
{
    csim_state *st = CSIM_ST(self);
    double d;
    int err;
    (void)closure;
    if (value == NULL) {
        Py_CLEAR(st->now_obj);
        return 0;
    }
    d = as_double(value, &err);
    if (err) {
        return -1;
    }
    Py_XSETREF(st->now_obj, Py_NewRef(value));
    st->now_d = d;
    return 0;
}

static PyObject *
csim_get_obj(PyObject *self, void *closure)
{
    PyObject *v = *(PyObject **)((char *)CSIM_ST(self) + (Py_ssize_t)closure);
    if (v == NULL) {
        PyErr_SetString(PyExc_AttributeError, "attribute is not set");
        return NULL;
    }
    return Py_NewRef(v);
}

static int
csim_set_obj(PyObject *self, PyObject *value, void *closure)
{
    PyObject **slot =
        (PyObject **)((char *)CSIM_ST(self) + (Py_ssize_t)closure);
    if (value == NULL) {
        Py_CLEAR(*slot);
        return 0;
    }
    Py_XSETREF(*slot, Py_NewRef(value));
    return 0;
}

static PyObject *
csim_get_ll(PyObject *self, void *closure)
{
    long long v = *(long long *)((char *)CSIM_ST(self) + (Py_ssize_t)closure);
    return PyLong_FromLongLong(v);
}

static int
csim_set_ll(PyObject *self, PyObject *value, void *closure)
{
    long long v;
    if (value == NULL) {
        PyErr_SetString(PyExc_TypeError, "cannot delete counter");
        return -1;
    }
    v = PyLong_AsLongLong(value);
    if (v == -1 && PyErr_Occurred()) {
        return -1;
    }
    *(long long *)((char *)CSIM_ST(self) + (Py_ssize_t)closure) = v;
    return 0;
}

static PyObject *
csim_get_running(PyObject *self, void *closure)
{
    (void)closure;
    return PyBool_FromLong(CSIM_ST(self)->running);
}

static int
csim_set_running(PyObject *self, PyObject *value, void *closure)
{
    int v;
    (void)closure;
    if (value == NULL) {
        CSIM_ST(self)->running = 0;
        return 0;
    }
    v = PyObject_IsTrue(value);
    if (v < 0) {
        return -1;
    }
    CSIM_ST(self)->running = v;
    return 0;
}

/* _heap materializes the C array as pure-format 5-tuples.  The array
 * order satisfies the binary-heap invariant exactly as a heapq list
 * would (same indexing scheme), so a pure build can adopt it as-is. */
static PyObject *
csim_get_heap(PyObject *self, void *closure)
{
    csim_state *st = CSIM_ST(self);
    PyObject *list = PyList_New(st->size);
    Py_ssize_t i;
    (void)closure;
    if (list == NULL) {
        return NULL;
    }
    for (i = 0; i < st->size; i++) {
        entry_t *e = &st->entries[i];
        PyObject *seq = PyLong_FromLongLong(e->seq);
        PyObject *tup;
        if (seq == NULL) {
            Py_DECREF(list);
            return NULL;
        }
        tup = PyTuple_Pack(5, e->time_obj, seq, e->target,
                           e->args != NULL ? e->args : Py_None, e->label);
        Py_DECREF(seq);
        if (tup == NULL) {
            Py_DECREF(list);
            return NULL;
        }
        PyList_SET_ITEM(list, i, tup);
    }
    return list;
}

static void
clear_entries(csim_state *st)
{
    entry_t *arr = st->entries;
    Py_ssize_t n = st->size;
    Py_ssize_t i;
    /* Detach before decref'ing: a destructor could re-enter and push. */
    st->entries = NULL;
    st->size = 0;
    st->capacity = 0;
    for (i = 0; i < n; i++) {
        entry_decref(&arr[i]);
    }
    PyMem_Free(arr);
}

static int
csim_set_heap(PyObject *self, PyObject *value, void *closure)
{
    csim_state *st = CSIM_ST(self);
    PyObject *fast;
    PyObject **items;
    Py_ssize_t n, i;
    (void)closure;
    if (value == NULL) {
        clear_entries(st);
        return 0;
    }
    fast = PySequence_Fast(value, "_heap must be a sequence of 5-tuples");
    if (fast == NULL) {
        return -1;
    }
    n = PySequence_Fast_GET_SIZE(fast);
    items = PySequence_Fast_ITEMS(fast);
    clear_entries(st);
    if (ensure_capacity(st, n) < 0) {
        Py_DECREF(fast);
        return -1;
    }
    for (i = 0; i < n; i++) {
        PyObject *item = PySequence_Fast(
            items[i], "_heap entries must be (time, seq, target, args, label)");
        PyObject **f;
        entry_t *e;
        double td;
        long long seq;
        int err;
        if (item == NULL) {
            Py_DECREF(fast);
            return -1;
        }
        if (PySequence_Fast_GET_SIZE(item) != 5) {
            Py_DECREF(item);
            Py_DECREF(fast);
            PyErr_SetString(
                PyExc_ValueError,
                "_heap entries must be (time, seq, target, args, label)");
            return -1;
        }
        f = PySequence_Fast_ITEMS(item);
        td = as_double(f[0], &err);
        if (err) {
            Py_DECREF(item);
            Py_DECREF(fast);
            return -1;
        }
        seq = PyLong_AsLongLong(f[1]);
        if (seq == -1 && PyErr_Occurred()) {
            Py_DECREF(item);
            Py_DECREF(fast);
            return -1;
        }
        e = &st->entries[st->size];
        e->time = td;
        e->seq = seq;
        e->time_obj = Py_NewRef(f[0]);
        e->target = Py_NewRef(f[2]);
        e->args = f[3] == Py_None ? NULL : Py_NewRef(f[3]);
        e->label = Py_NewRef(f[4]);
        e->flags = Py_IS_TYPE(f[2], event_handle_type) ? EV_HANDLE : 0;
        st->size++;
        Py_DECREF(item);
    }
    Py_DECREF(fast);
    /* Input is normally already a valid heap; heapify is then a no-op
     * order-wise and cheap insurance otherwise. */
    for (i = st->size / 2 - 1; i >= 0; i--) {
        siftdown_entry(st->entries, st->size, i);
    }
    return 0;
}

static PyGetSetDef csim_getsets[] = {
    {"now", csim_get_now, csim_set_now, NULL, NULL},
    {"rng", csim_get_obj, csim_set_obj, NULL,
     (void *)offsetof(csim_state, rng)},
    {"sanitize", csim_get_obj, csim_set_obj, NULL,
     (void *)offsetof(csim_state, sanitize)},
    {"_profile", csim_get_obj, csim_set_obj, NULL,
     (void *)offsetof(csim_state, profile)},
    {"_components", csim_get_obj, csim_set_obj, NULL,
     (void *)offsetof(csim_state, components)},
    {"_seq", csim_get_ll, csim_set_ll, NULL,
     (void *)offsetof(csim_state, seq)},
    {"_live", csim_get_ll, csim_set_ll, NULL,
     (void *)offsetof(csim_state, live)},
    {"_dispatched", csim_get_ll, csim_set_ll, NULL,
     (void *)offsetof(csim_state, dispatched)},
    {"_running", csim_get_running, csim_set_running, NULL, NULL},
    {"_heap", csim_get_heap, csim_set_heap, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

/* ---------------- scheduling methods ------------------------------- */
static PyObject *
csim_reserve_seq(PyObject *self, PyObject *ignored)
{
    csim_state *st = CSIM_ST(self);
    (void)ignored;
    return PyLong_FromLongLong(st->seq++);
}

static PyObject *
csim_schedule(PyObject *self, PyObject *const *args, Py_ssize_t nargs,
              PyObject *kwnames)
{
    static const char *const names[] = {"time", "callback", "label", "args",
                                        "seq"};
    PyObject *a[5];
    csim_state *st = CSIM_ST(self);
    PyObject *time_obj, *callback, *label, *cargs, *seq_obj, *handle;
    double td;
    long long seq;
    int err;
    if (fill_args("schedule", args, nargs, kwnames, names, 5, 2, a) < 0) {
        return NULL;
    }
    time_obj = a[0];
    callback = a[1];
    label = a[2] != NULL ? a[2] : str_empty;
    cargs = (a[3] == NULL || a[3] == Py_None) ? NULL : a[3];
    seq_obj = a[4];
    td = as_double(time_obj, &err);
    if (err) {
        return NULL;
    }
    if (td < st->now_d) {
        raise_schedule_in_past(time_obj, st->now_obj);
        return NULL;
    }
    if (seq_obj == NULL || seq_obj == Py_None) {
        seq = st->seq++;
    }
    else {
        seq = PyLong_AsLongLong(seq_obj);
        if (seq == -1 && PyErr_Occurred()) {
            return NULL;
        }
    }
    handle = event_handle_type->tp_alloc(event_handle_type, 0);
    if (handle == NULL) {
        return NULL;
    }
    {
        PyObject *seq_py = PyLong_FromLongLong(seq);
        if (seq_py == NULL) {
            Py_DECREF(handle);
            return NULL;
        }
        SLOT(handle, eh_time) = Py_NewRef(time_obj);
        SLOT(handle, eh_seq) = seq_py;
        SLOT(handle, eh_callback) = Py_NewRef(callback);
        SLOT(handle, eh_label) = Py_NewRef(label);
        SLOT(handle, eh_owner) = Py_NewRef(self);
    }
    if (heap_push(st, td, time_obj, seq, handle, cargs, label, EV_HANDLE) < 0
        || note_scheduled(st, 1) < 0) {
        Py_DECREF(handle);
        return NULL;
    }
    return handle;
}

static PyObject *
csim_post(PyObject *self, PyObject *const *args, Py_ssize_t nargs,
          PyObject *kwnames)
{
    static const char *const names[] = {"time", "callback", "args", "label"};
    PyObject *a[4];
    csim_state *st = CSIM_ST(self);
    PyObject *time_obj, *callback, *cargs, *label;
    double td;
    int err;
    if (fill_args("post", args, nargs, kwnames, names, 4, 2, a) < 0) {
        return NULL;
    }
    time_obj = a[0];
    callback = a[1];
    cargs = (a[2] == NULL || a[2] == Py_None) ? NULL : a[2];
    label = a[3] != NULL ? a[3] : str_empty;
    td = as_double(time_obj, &err);
    if (err) {
        return NULL;
    }
    if (td < st->now_d) {
        raise_schedule_in_past(time_obj, st->now_obj);
        return NULL;
    }
    if (heap_push(st, td, time_obj, st->seq, callback, cargs, label, 0) < 0) {
        return NULL;
    }
    st->seq++;
    if (note_scheduled(st, 1) < 0) {
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
csim_post_in(PyObject *self, PyObject *const *args, Py_ssize_t nargs,
             PyObject *kwnames)
{
    static const char *const names[] = {"delay", "callback", "args", "label"};
    PyObject *a[4];
    csim_state *st = CSIM_ST(self);
    PyObject *delay, *callback, *cargs, *label, *time_obj;
    double dd, td;
    int err;
    if (fill_args("post_in", args, nargs, kwnames, names, 4, 2, a) < 0) {
        return NULL;
    }
    delay = a[0];
    callback = a[1];
    cargs = (a[2] == NULL || a[2] == Py_None) ? NULL : a[2];
    label = a[3] != NULL ? a[3] : str_empty;
    dd = as_double(delay, &err);
    if (err) {
        return NULL;
    }
    if (dd < 0.0) {
        PyObject *t = add_now_delay(st, delay, &td);
        if (t != NULL) {
            raise_schedule_in_past(t, st->now_obj);
            Py_DECREF(t);
        }
        return NULL;
    }
    time_obj = add_now_delay(st, delay, &td);
    if (time_obj == NULL) {
        return NULL;
    }
    if (heap_push(st, td, time_obj, st->seq, callback, cargs, label, 0) < 0) {
        Py_DECREF(time_obj);
        return NULL;
    }
    Py_DECREF(time_obj);
    st->seq++;
    if (note_scheduled(st, 1) < 0) {
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
csim_post_batch(PyObject *self, PyObject *events)
{
    csim_state *st = CSIM_ST(self);
    PyObject *fast;
    PyObject **items;
    Py_ssize_t n, i;
    fast = PySequence_Fast(
        events, "post_batch expects a sequence of (time, callback, args, label)");
    if (fast == NULL) {
        return NULL;
    }
    n = PySequence_Fast_GET_SIZE(fast);
    if (n == 0) {
        Py_DECREF(fast);
        Py_RETURN_NONE;
    }
    items = PySequence_Fast_ITEMS(fast);
    /* Validate the whole batch up front: like the pure engine, a
     * time-in-the-past item rejects the batch atomically. */
    for (i = 0; i < n; i++) {
        PyObject *item = PySequence_Fast(
            items[i], "post_batch items must be (time, callback, args, label)");
        double td;
        int err;
        if (item == NULL) {
            Py_DECREF(fast);
            return NULL;
        }
        if (PySequence_Fast_GET_SIZE(item) != 4) {
            Py_DECREF(item);
            Py_DECREF(fast);
            PyErr_SetString(
                PyExc_ValueError,
                "post_batch items must be (time, callback, args, label)");
            return NULL;
        }
        td = as_double(PySequence_Fast_ITEMS(item)[0], &err);
        if (err) {
            Py_DECREF(item);
            Py_DECREF(fast);
            return NULL;
        }
        if (td < st->now_d) {
            PyObject *t = Py_NewRef(PySequence_Fast_ITEMS(item)[0]);
            Py_DECREF(item);
            Py_DECREF(fast);
            raise_schedule_in_past(t, st->now_obj);
            Py_DECREF(t);
            return NULL;
        }
        Py_DECREF(item);
    }
    if (ensure_capacity(st, st->size + n) < 0) {
        Py_DECREF(fast);
        return NULL;
    }
    /* Same crossover as the pure engine: big batches append+heapify,
     * small ones sift in one by one.  Either way the heap pops in the
     * same (time, seq) order. */
    if (n * 4 >= st->size) {
        Py_ssize_t start = st->size;
        for (i = 0; i < n; i++) {
            PyObject *item = PySequence_Fast(items[i], "post_batch item");
            PyObject **f;
            entry_t *e;
            int err;
            if (item == NULL) {
                Py_DECREF(fast);
                return NULL;
            }
            f = PySequence_Fast_ITEMS(item);
            e = &st->entries[st->size];
            e->time = as_double(f[0], &err);
            e->seq = st->seq++;
            e->time_obj = Py_NewRef(f[0]);
            e->target = Py_NewRef(f[1]);
            e->args = f[2] == Py_None ? NULL : Py_NewRef(f[2]);
            e->label = Py_NewRef(f[3]);
            e->flags = 0;
            st->size++;
            Py_DECREF(item);
        }
        (void)start;
        for (i = st->size / 2 - 1; i >= 0; i--) {
            siftdown_entry(st->entries, st->size, i);
        }
    }
    else {
        for (i = 0; i < n; i++) {
            PyObject *item = PySequence_Fast(items[i], "post_batch item");
            PyObject **f;
            int err, r;
            double td;
            if (item == NULL) {
                Py_DECREF(fast);
                return NULL;
            }
            f = PySequence_Fast_ITEMS(item);
            td = as_double(f[0], &err);
            r = heap_push(st, td, f[0], st->seq,
                          f[1], f[2] == Py_None ? NULL : f[2], f[3], 0);
            Py_DECREF(item);
            if (r < 0) {
                Py_DECREF(fast);
                return NULL;
            }
            st->seq++;
        }
    }
    Py_DECREF(fast);
    if (note_scheduled(st, n) < 0) {
        return NULL;
    }
    Py_RETURN_NONE;
}

/* Internal scheduler entry for Link: post_in with a prebuilt single
 * argument, no Python-call overhead at all on the common path.         */
static int
c_post_in_single(csim_state *st, double delay, PyObject *callback,
                 PyObject *arg, PyObject *label)
{
    PyObject *time_obj, *args;
    double td;
    int r;
    if (delay < 0.0) {
        PyObject *d = PyFloat_FromDouble(delay);
        PyObject *t;
        if (d == NULL) {
            return -1;
        }
        t = add_now_delay(st, d, &td);
        Py_DECREF(d);
        if (t != NULL) {
            raise_schedule_in_past(t, st->now_obj);
            Py_DECREF(t);
        }
        return -1;
    }
    td = st->now_d + delay;
    time_obj = PyFloat_FromDouble(td);
    if (time_obj == NULL) {
        return -1;
    }
    args = PyTuple_Pack(1, arg);
    if (args == NULL) {
        Py_DECREF(time_obj);
        return -1;
    }
    r = heap_push(st, td, time_obj, st->seq, callback, args, label, 0);
    Py_DECREF(args);
    Py_DECREF(time_obj);
    if (r < 0) {
        return -1;
    }
    st->seq++;
    return note_scheduled(st, 1);
}

/* ---------------- execution --------------------------------------- */

/* Pop the next live entry due at or before until_d into *out.
 * Returns 1 on success, 0 when nothing is due, -1 never.  Cancelled
 * heads are popped and discarded on the way, exactly like the pure
 * loops.  The caller owns the refs in *out and must entry_decref it. */
static int
pop_due(csim_state *st, double until_d, entry_t *out, PyObject **callback)
{
    for (;;) {
        entry_t *root;
        if (st->size == 0) {
            return 0;
        }
        root = &st->entries[0];
        if (root->flags & EV_HANDLE) {
            PyObject *cb = SLOT(root->target, eh_callback);
            if (cb == NULL || cb == Py_None) {
                entry_t dead = *root;
                heap_remove_root(st);
                entry_decref(&dead);
                continue;
            }
            if (root->time > until_d) {
                return 0;
            }
            *out = *root;
            heap_remove_root(st);
            *callback = Py_NewRef(cb);
            /* mark dispatched */
            Py_XSETREF(SLOT(out->target, eh_callback), Py_NewRef(Py_None));
        }
        else {
            if (root->time > until_d) {
                return 0;
            }
            *out = *root;
            heap_remove_root(st);
            *callback = Py_NewRef(out->target);
        }
        st->live--;
        return 1;
    }
}

static PyObject *
csim_pop_due(PyObject *self, PyObject *until_cmp)
{
    csim_state *st = CSIM_ST(self);
    entry_t e;
    PyObject *callback = NULL;
    PyObject *result;
    double ud;
    int err, got;
    ud = as_double(until_cmp, &err);
    if (err) {
        return NULL;
    }
    got = pop_due(st, ud, &e, &callback);
    if (got == 0) {
        Py_RETURN_NONE;
    }
    result = PyTuple_Pack(4, e.time_obj, callback,
                          e.args != NULL ? e.args : Py_None, e.label);
    Py_DECREF(callback);
    entry_decref(&e);
    return result;
}

static PyObject *
run_fast(PyObject *self, PyObject *until)
{
    csim_state *st = CSIM_ST(self);
    long long dispatched;
    double until_d = 0.0;
    int bounded = (until != NULL && until != Py_None);
    if (bounded) {
        int err;
        until_d = as_double(until, &err);
        if (err) {
            return NULL;
        }
    }
    if (st->running) {
        PyErr_SetString(exc_simulation_error,
                        "Simulator.run() is not reentrant");
        return NULL;
    }
    st->running = 1;
    dispatched = st->dispatched;
    for (;;) {
        entry_t e;
        PyObject *callback, *res;
        if (st->size == 0) {
            break;
        }
        {
            entry_t *root = &st->entries[0];
            if (root->flags & EV_HANDLE) {
                PyObject *cb = SLOT(root->target, eh_callback);
                if (cb == NULL || cb == Py_None) {
                    entry_t dead = *root;
                    heap_remove_root(st);
                    entry_decref(&dead);
                    continue;
                }
                if (bounded && root->time > until_d) {
                    break;
                }
                e = *root;
                heap_remove_root(st);
                callback = Py_NewRef(cb);
                Py_XSETREF(SLOT(e.target, eh_callback), Py_NewRef(Py_None));
            }
            else {
                if (bounded && root->time > until_d) {
                    break;
                }
                e = *root;
                heap_remove_root(st);
                callback = Py_NewRef(e.target);
            }
        }
        st->live--;
        Py_XSETREF(st->now_obj, Py_NewRef(e.time_obj));
        st->now_d = e.time;
        res = call_event(callback, e.args);
        Py_DECREF(callback);
        entry_decref(&e);
        if (res == NULL) {
            st->dispatched = dispatched;
            st->running = 0;
            return NULL;
        }
        Py_DECREF(res);
        dispatched++;
    }
    if (bounded && st->now_d < until_d) {
        Py_XSETREF(st->now_obj, Py_NewRef(until));
        st->now_d = until_d;
    }
    st->dispatched = dispatched;
    st->running = 0;
    Py_RETURN_NONE;
}

static PyObject *
csim_run(PyObject *self, PyObject *const *args, Py_ssize_t nargs,
         PyObject *kwnames)
{
    static const char *const names[] = {
        "until",          "max_events",       "deadline",
        "livelock_threshold", "checkpoint_every", "checkpoint_path"};
    PyObject *a[6];
    csim_state *st = CSIM_ST(self);
    int sanitize_true;
    Py_ssize_t i;
    if (fill_args("run", args, nargs, kwnames, names, 6, 0, a) < 0) {
        return NULL;
    }
    for (i = 0; i < 6; i++) {
        if (a[i] == NULL) {
            a[i] = Py_None;
        }
    }
    if (a[4] != Py_None || a[5] != Py_None) {
        return PyObject_CallMethodObjArgs(self, str_run_checkpointed, a[0],
                                          a[1], a[2], a[3], a[4], a[5], NULL);
    }
    sanitize_true =
        st->sanitize == NULL ? 0 : PyObject_IsTrue(st->sanitize);
    if (sanitize_true < 0) {
        return NULL;
    }
    if (a[1] != Py_None || a[2] != Py_None || a[3] != Py_None || sanitize_true
        || (st->profile != NULL && st->profile != Py_None)) {
        /* General path: watchdogs / profiling / sanitizer.  Delegates
         * to the pure implementation driven by the C _pop_due
         * primitive (repro.sim.engine._run_general_compiled). */
        if (run_general_fn == NULL) {
            PyObject *mod = PyImport_ImportModule("repro.sim.engine");
            if (mod == NULL) {
                return NULL;
            }
            run_general_fn =
                PyObject_GetAttrString(mod, "_run_general_compiled");
            Py_DECREF(mod);
            if (run_general_fn == NULL) {
                return NULL;
            }
        }
        return PyObject_CallFunctionObjArgs(run_general_fn, self, a[0], a[1],
                                            a[2], a[3], NULL);
    }
    return run_fast(self, a[0]);
}

static PyObject *
csim_step(PyObject *self, PyObject *ignored)
{
    csim_state *st = CSIM_ST(self);
    entry_t e;
    PyObject *callback = NULL;
    PyObject *res;
    int got;
    (void)ignored;
    got = pop_due(st, Py_HUGE_VAL, &e, &callback);
    if (got == 0) {
        Py_RETURN_FALSE;
    }
    Py_XSETREF(st->now_obj, Py_NewRef(e.time_obj));
    st->now_d = e.time;
    if (st->profile != NULL && st->profile != Py_None) {
        struct timespec t0, t1;
        double dt;
        PyObject *dt_obj, *r;
        clock_gettime(CLOCK_MONOTONIC, &t0);
        res = call_event(callback, e.args);
        clock_gettime(CLOCK_MONOTONIC, &t1);
        Py_DECREF(callback);
        if (res == NULL) {
            entry_decref(&e);
            return NULL;
        }
        Py_DECREF(res);
        dt = (double)(t1.tv_sec - t0.tv_sec)
             + (double)(t1.tv_nsec - t0.tv_nsec) * 1e-9;
        dt_obj = PyFloat_FromDouble(dt);
        if (dt_obj == NULL) {
            entry_decref(&e);
            return NULL;
        }
        r = PyObject_CallMethodObjArgs(st->profile, str_record, e.label,
                                       dt_obj, NULL);
        Py_DECREF(dt_obj);
        entry_decref(&e);
        if (r == NULL) {
            return NULL;
        }
        Py_DECREF(r);
    }
    else {
        res = call_event(callback, e.args);
        Py_DECREF(callback);
        entry_decref(&e);
        if (res == NULL) {
            return NULL;
        }
        Py_DECREF(res);
    }
    st->dispatched++;
    Py_RETURN_TRUE;
}

static PyObject *
csim_peek_time(PyObject *self, PyObject *ignored)
{
    csim_state *st = CSIM_ST(self);
    (void)ignored;
    for (;;) {
        entry_t *root;
        if (st->size == 0) {
            Py_RETURN_NONE;
        }
        root = &st->entries[0];
        if (root->flags & EV_HANDLE) {
            PyObject *cb = SLOT(root->target, eh_callback);
            if (cb == NULL || cb == Py_None) {
                entry_t dead = *root;
                heap_remove_root(st);
                entry_decref(&dead);
                continue;
            }
        }
        return Py_NewRef(root->time_obj);
    }
}

/* Engine-portable pickling: never pickle by class reference, so a
 * checkpoint written by a compiled build loads on a pure-only checkout
 * (and vice versa).  State rides the ordinary slot-state protocol. */
static PyObject *
reduce_via(PyObject *self, PyObject **fn_cache, const char *fn_name)
{
    PyObject *state, *result;
    if (*fn_cache == NULL) {
        PyObject *mod = PyImport_ImportModule("repro.core.engine_select");
        if (mod == NULL) {
            return NULL;
        }
        *fn_cache = PyObject_GetAttrString(mod, fn_name);
        Py_DECREF(mod);
        if (*fn_cache == NULL) {
            return NULL;
        }
    }
    state = PyObject_CallMethodNoArgs(self, str_getstate);
    if (state == NULL) {
        return NULL;
    }
    result = PyTuple_Pack(3, *fn_cache, empty_tuple, state);
    Py_DECREF(state);
    return result;
}

static PyObject *
csim_reduce_ex(PyObject *self, PyObject *protocol)
{
    (void)protocol;
    return reduce_via(self, &unpickle_sim_fn, "_unpickle_simulator");
}

static PyMethodDef csim_methods[] = {
    {"reserve_seq", (PyCFunction)csim_reserve_seq, METH_NOARGS, NULL},
    {"schedule", (PyCFunction)(void (*)(void))csim_schedule,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"post", (PyCFunction)(void (*)(void))csim_post,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"post_in", (PyCFunction)(void (*)(void))csim_post_in,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"post_batch", (PyCFunction)csim_post_batch, METH_O, NULL},
    {"run", (PyCFunction)(void (*)(void))csim_run,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"step", (PyCFunction)csim_step, METH_NOARGS, NULL},
    {"peek_time", (PyCFunction)csim_peek_time, METH_NOARGS, NULL},
    {"_pop_due", (PyCFunction)csim_pop_due, METH_O, NULL},
    {"__reduce_ex__", (PyCFunction)csim_reduce_ex, METH_O, NULL},
    {NULL, NULL, 0, NULL},
};

/* ---------------- gc / lifecycle ----------------------------------- */
static int
csim_traverse(PyObject *self, visitproc visit, void *arg)
{
    csim_state *st = CSIM_ST(self);
    Py_ssize_t i;
    for (i = 0; i < st->size; i++) {
        Py_VISIT(st->entries[i].time_obj);
        Py_VISIT(st->entries[i].target);
        Py_VISIT(st->entries[i].args);
        Py_VISIT(st->entries[i].label);
    }
    Py_VISIT(st->now_obj);
    Py_VISIT(st->rng);
    Py_VISIT(st->sanitize);
    Py_VISIT(st->profile);
    Py_VISIT(st->components);
    /* Shadowed base slot storage is normally never populated, but stay
     * defensive; heap-type instances must also visit their type.  Do
     * NOT chain to the base tp_traverse: for a pure-python base that is
     * subtype_traverse, which re-dispatches on Py_TYPE(self) and would
     * recurse right back here. */
    for (i = 0; i < NUM_SIM_BASE_SLOTS; i++) {
        Py_VISIT(SLOT(self, sim_base_slot_off[i]));
    }
    Py_VISIT(Py_TYPE(self));
    return 0;
}

static int
csim_clear(PyObject *self)
{
    csim_state *st = CSIM_ST(self);
    Py_ssize_t i;
    clear_entries(st);
    Py_CLEAR(st->now_obj);
    Py_CLEAR(st->rng);
    Py_CLEAR(st->sanitize);
    Py_CLEAR(st->profile);
    Py_CLEAR(st->components);
    for (i = 0; i < NUM_SIM_BASE_SLOTS; i++) {
        Py_CLEAR(SLOT(self, sim_base_slot_off[i]));
    }
    return 0;
}

static void
csim_dealloc(PyObject *self)
{
    PyTypeObject *tp = Py_TYPE(self);
    csim_state *st = CSIM_ST(self);
    Py_ssize_t i;
    PyObject_GC_UnTrack(self);
    Py_TRASHCAN_BEGIN(self, csim_dealloc);
    clear_entries(st);
    Py_CLEAR(st->now_obj);
    Py_CLEAR(st->rng);
    Py_CLEAR(st->sanitize);
    Py_CLEAR(st->profile);
    Py_CLEAR(st->components);
    /* Shadowed base slots are normally never populated; clear them
     * defensively in case someone wrote through the base descriptors. */
    for (i = 0; i < NUM_SIM_BASE_SLOTS; i++) {
        Py_CLEAR(SLOT(self, sim_base_slot_off[i]));
    }
    tp->tp_free(self);
    Py_DECREF(tp);
    Py_TRASHCAN_END;
}

static PyType_Slot csim_type_slots[] = {
    {Py_tp_traverse, (void *)csim_traverse},
    {Py_tp_clear, (void *)csim_clear},
    {Py_tp_dealloc, (void *)csim_dealloc},
    {Py_tp_methods, (void *)csim_methods},
    {Py_tp_getset, (void *)csim_getsets},
    {0, NULL},
};

static PyType_Spec csim_spec = {
    "repro._cext._core.Simulator",
    0, /* basicsize: fixed up at runtime to base + sizeof(csim_state) */
    0,
    Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    csim_type_slots,
};

/* ================================================================== */
/* Link                                                                */
/* ================================================================== */

/* PyLong slot increment: slot = slot + delta (slots hold object ints). */
static int
slot_add_ll(PyObject *obj, Py_ssize_t off, long long delta)
{
    PyObject *old = SLOT(obj, off);
    long long v;
    PyObject *nv;
    if (old == NULL) {
        PyErr_SetString(PyExc_AttributeError, "counter is not set");
        return -1;
    }
    v = PyLong_AsLongLong(old);
    if (v == -1 && PyErr_Occurred()) {
        return -1;
    }
    nv = PyLong_FromLongLong(v + delta);
    if (nv == NULL) {
        return -1;
    }
    Py_XSETREF(SLOT(obj, off), nv);
    return 0;
}

static PyObject *clink_start_impl(PyObject *self, PyObject *packet);

/* DropTail push fast path.  Returns 1 accepted, 0 dropped, -1 error.
 * Falls back to the Python push for anything unusual (RED, observers,
 * a full queue -- the reject path counts and reports in Python).      */
static int
queue_push_fast(PyObject *queue, PyObject *packet)
{
    if (Py_TYPE(queue) == droptail_type && SLOT(queue, q_obs) == Py_None) {
        PyObject *buf = SLOT(queue, q_buffer);
        PyObject *cap_obj = SLOT(queue, q_capacity);
        Py_ssize_t blen;
        long long cap;
        PyObject *r;
        if (buf == NULL || cap_obj == NULL) {
            goto generic;
        }
        blen = PyObject_Size(buf);
        if (blen < 0) {
            return -1;
        }
        cap = PyLong_AsLongLong(cap_obj);
        if (cap == -1 && PyErr_Occurred()) {
            return -1;
        }
        if (blen >= cap) {
            goto generic; /* reject path: counters + obs in Python */
        }
        r = PyObject_CallFunctionObjArgs(deque_append, buf, packet, NULL);
        if (r == NULL) {
            return -1;
        }
        Py_DECREF(r);
        if (slot_add_ll(queue, q_enqueued, 1) < 0) {
            return -1;
        }
        {
            PyObject *mo = SLOT(queue, q_maxocc);
            long long m = mo == NULL ? 0 : PyLong_AsLongLong(mo);
            if (m == -1 && PyErr_Occurred()) {
                return -1;
            }
            if (blen + 1 > m) {
                PyObject *nv = PyLong_FromLongLong(blen + 1);
                if (nv == NULL) {
                    return -1;
                }
                Py_XSETREF(SLOT(queue, q_maxocc), nv);
            }
        }
        return 1;
    }
generic:
    {
        PyObject *r = PyObject_CallMethodObjArgs(queue, str_push, packet, NULL);
        int t;
        if (r == NULL) {
            return -1;
        }
        t = PyObject_IsTrue(r);
        Py_DECREF(r);
        return t;
    }
}

/* FIFO pop fast path; returns a new reference (Py_None when empty).    */
static PyObject *
queue_pop_fast(PyObject *queue)
{
    if (Py_TYPE(queue) == droptail_type && SLOT(queue, q_obs) == Py_None) {
        PyObject *buf = SLOT(queue, q_buffer);
        Py_ssize_t blen;
        if (buf != NULL) {
            blen = PyObject_Size(buf);
            if (blen < 0) {
                return NULL;
            }
            if (blen == 0) {
                Py_RETURN_NONE;
            }
            return PyObject_CallFunctionObjArgs(deque_popleft, buf, NULL);
        }
    }
    return PyObject_CallMethodObjArgs(queue, str_pop, NULL);
}

static PyObject *
clink_enqueue(PyObject *self, PyObject *packet)
{
    PyObject *up = SLOT(self, lk_up);
    PyObject *flr = SLOT(self, lk_fault_rate);
    PyObject *lm = SLOT(self, lk_loss_model);
    PyObject *busy;
    /* Any fault/loss condition -> the pure method handles everything
     * (it re-does the arrival count, which we have not touched yet). */
    if (up != Py_True || lm != Py_None || flr == NULL
        || !PyFloat_CheckExact(flr) || PyFloat_AS_DOUBLE(flr) != 0.0) {
        return PyObject_CallFunctionObjArgs(pure_link_enqueue, self, packet,
                                            NULL);
    }
    if (slot_add_ll(self, lk_arrived, 1) < 0) {
        return NULL;
    }
    busy = SLOT(self, lk_busy);
    if (busy == Py_True) {
        int pushed = queue_push_fast(SLOT(self, lk_queue), packet);
        if (pushed < 0) {
            return NULL;
        }
        if (pushed == 0) {
            return PyObject_CallMethodObjArgs(self, str_notify_drop, packet,
                                              NULL);
        }
        Py_RETURN_NONE;
    }
    if (busy != Py_False) {
        int b = PyObject_IsTrue(busy);
        if (b < 0) {
            return NULL;
        }
        if (b) {
            int pushed = queue_push_fast(SLOT(self, lk_queue), packet);
            if (pushed < 0) {
                return NULL;
            }
            if (pushed == 0) {
                return PyObject_CallMethodObjArgs(self, str_notify_drop,
                                                  packet, NULL);
            }
            Py_RETURN_NONE;
        }
    }
    return clink_start_impl(self, packet);
}

static PyObject *
clink_start_impl(PyObject *self, PyObject *packet)
{
    PyObject *size_obj = SLOT(packet, pk_size_bytes);
    PyObject *inv_obj = SLOT(self, lk_inv_bw);
    PyObject *sim = SLOT(self, lk_sim);
    double size, inv;
    int err;
    Py_XSETREF(SLOT(self, lk_busy), Py_NewRef(Py_True));
    if (size_obj == NULL || inv_obj == NULL || sim == NULL) {
        PyErr_SetString(PyExc_AttributeError, "link is not fully initialized");
        return NULL;
    }
    size = as_double(size_obj, &err);
    if (err) {
        return NULL;
    }
    inv = as_double(inv_obj, &err);
    if (err) {
        return NULL;
    }
    if (Py_IS_TYPE(sim, (PyTypeObject *)csim_type_obj)) {
        if (c_post_in_single(CSIM_ST(sim), size * inv,
                             SLOT(self, lk_finish_cb), packet,
                             SLOT(self, lk_label_tx)) < 0) {
            return NULL;
        }
        Py_RETURN_NONE;
    }
    {
        /* Mixed wiring (pure simulator, compiled link): go through the
         * cached bound post_in exactly like the pure method. */
        PyObject *delay = PyFloat_FromDouble(size * inv);
        PyObject *args, *r;
        if (delay == NULL) {
            return NULL;
        }
        args = PyTuple_Pack(1, packet);
        if (args == NULL) {
            Py_DECREF(delay);
            return NULL;
        }
        r = PyObject_CallFunctionObjArgs(SLOT(self, lk_post_in), delay,
                                         SLOT(self, lk_finish_cb), args,
                                         SLOT(self, lk_label_tx), NULL);
        Py_DECREF(args);
        Py_DECREF(delay);
        if (r == NULL) {
            return NULL;
        }
        Py_DECREF(r);
        Py_RETURN_NONE;
    }
}

static PyObject *
clink_start_transmission(PyObject *self, PyObject *packet)
{
    return clink_start_impl(self, packet);
}

static PyObject *
clink_finish_transmission(PyObject *self, PyObject *packet)
{
    PyObject *size_obj = SLOT(packet, pk_size_bytes);
    PyObject *dm, *sim, *dst, *receive, *next;
    double delay, scale, pdelay;
    long long size;
    int err;
    if (size_obj == NULL) {
        PyErr_SetString(PyExc_AttributeError, "size_bytes");
        return NULL;
    }
    size = PyLong_AsLongLong(size_obj);
    if (size == -1 && PyErr_Occurred()) {
        return NULL;
    }
    if (slot_add_ll(self, lk_tx_packets, 1) < 0
        || slot_add_ll(self, lk_tx_bytes, size) < 0
        || slot_add_ll(packet, pk_hops, 1) < 0) {
        return NULL;
    }
    dm = SLOT(self, lk_delay_model);
    if (dm == NULL || dm == Py_None) {
        delay = as_double(SLOT(self, lk_delay), &err);
        if (err) {
            return NULL;
        }
    }
    else {
        PyObject *r = PyObject_CallMethodObjArgs(dm, str_delay_for, packet,
                                                 NULL);
        if (r == NULL) {
            return NULL;
        }
        delay = as_double(r, &err);
        Py_DECREF(r);
        if (err) {
            return NULL;
        }
    }
    scale = as_double(SLOT(self, lk_delay_scale), &err);
    if (err) {
        return NULL;
    }
    pdelay = delay * scale;
    dst = SLOT(self, lk_dst);
    /* Per-event lookup on purpose: repro.obs.trace patches dst.receive. */
    receive = PyObject_GetAttr(dst, str_receive);
    if (receive == NULL) {
        return NULL;
    }
    sim = SLOT(self, lk_sim);
    if (Py_IS_TYPE(sim, (PyTypeObject *)csim_type_obj)) {
        if (c_post_in_single(CSIM_ST(sim), pdelay, receive, packet,
                             SLOT(self, lk_label_rx)) < 0) {
            Py_DECREF(receive);
            return NULL;
        }
    }
    else {
        PyObject *d = PyFloat_FromDouble(pdelay);
        PyObject *args, *r;
        if (d == NULL) {
            Py_DECREF(receive);
            return NULL;
        }
        args = PyTuple_Pack(1, packet);
        if (args == NULL) {
            Py_DECREF(d);
            Py_DECREF(receive);
            return NULL;
        }
        r = PyObject_CallFunctionObjArgs(SLOT(self, lk_post_in), d, receive,
                                         args, SLOT(self, lk_label_rx), NULL);
        Py_DECREF(args);
        Py_DECREF(d);
        if (r == NULL) {
            Py_DECREF(receive);
            return NULL;
        }
        Py_DECREF(r);
    }
    Py_DECREF(receive);
    if (SLOT(self, lk_up) != Py_True) {
        /* Link died mid-serialization: hold the queue. */
        Py_XSETREF(SLOT(self, lk_busy), Py_NewRef(Py_False));
        Py_RETURN_NONE;
    }
    next = queue_pop_fast(SLOT(self, lk_queue));
    if (next == NULL) {
        return NULL;
    }
    if (next == Py_None) {
        Py_DECREF(next);
        Py_XSETREF(SLOT(self, lk_busy), Py_NewRef(Py_False));
        Py_RETURN_NONE;
    }
    {
        PyObject *r = clink_start_impl(self, next);
        Py_DECREF(next);
        return r;
    }
}

static PyObject *
clink_reduce_ex(PyObject *self, PyObject *protocol)
{
    (void)protocol;
    return reduce_via(self, &unpickle_link_fn, "_unpickle_link");
}

static PyMethodDef clink_method_defs[] = {
    {"enqueue", (PyCFunction)clink_enqueue, METH_O, NULL},
    {"_start_transmission", (PyCFunction)clink_start_transmission, METH_O,
     NULL},
    {"_finish_transmission", (PyCFunction)clink_finish_transmission, METH_O,
     NULL},
    {"__reduce_ex__", (PyCFunction)clink_reduce_ex, METH_O, NULL},
    {NULL, NULL, 0, NULL},
};

/* ================================================================== */
/* Node                                                                */
/* ================================================================== */

static PyObject *
node_dead_letter(PyObject *self)
{
    PyObject *v = PyObject_GetAttr(self, str_dead_letters);
    long long n;
    PyObject *nv;
    int r;
    if (v == NULL) {
        return NULL;
    }
    n = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (n == -1 && PyErr_Occurred()) {
        return NULL;
    }
    nv = PyLong_FromLongLong(n + 1);
    if (nv == NULL) {
        return NULL;
    }
    r = PyObject_SetAttr(self, str_dead_letters, nv);
    Py_DECREF(nv);
    if (r < 0) {
        return NULL;
    }
    Py_RETURN_NONE;
}

/* ``mapping.get(key)`` — C-level for exact dicts (the only case the
 * codebase produces), the real method otherwise.  New reference;
 * Py_None on a missing key, matching dict.get's default. */
static PyObject *
mapping_get(PyObject *mapping, PyObject *key)
{
    if (PyDict_CheckExact(mapping)) {
        PyObject *v = PyDict_GetItemWithError(mapping, key);
        if (v == NULL) {
            if (PyErr_Occurred()) {
                return NULL;
            }
            Py_RETURN_NONE;
        }
        return Py_NewRef(v);
    }
    return PyObject_CallMethodObjArgs(mapping, str_get, key, NULL);
}

static PyObject *
link_enqueue_dispatch(PyObject *link, PyObject *packet)
{
    if (Py_IS_TYPE(link, (PyTypeObject *)clink_type_obj)) {
        return clink_enqueue(link, packet);
    }
    {
        PyObject *r = PyObject_CallMethodObjArgs(link, str_enqueue, packet,
                                                 NULL);
        if (r == NULL) {
            return NULL;
        }
        Py_DECREF(r);
        Py_RETURN_NONE;
    }
}

/* Destination-table forwarding — the inlined pure expression
 * ``links.get(routes.get(packet.dst))`` with dead-letter on None.      */
static PyObject *
cnode_forward_table(PyObject *self, PyObject *packet)
{
    PyObject *routes, *links, *hop, *link, *r;
    routes = PyObject_GetAttr(self, str_routes);
    if (routes == NULL) {
        return NULL;
    }
    hop = mapping_get(routes, SLOT(packet, pk_dst));
    Py_DECREF(routes);
    if (hop == NULL) {
        return NULL;
    }
    if (hop == Py_None) {
        Py_DECREF(hop);
        return node_dead_letter(self);
    }
    links = PyObject_GetAttr(self, str_links);
    if (links == NULL) {
        Py_DECREF(hop);
        return NULL;
    }
    link = mapping_get(links, hop);
    Py_DECREF(links);
    Py_DECREF(hop);
    if (link == NULL) {
        return NULL;
    }
    if (link == Py_None) {
        Py_DECREF(link);
        return node_dead_letter(self);
    }
    r = link_enqueue_dispatch(link, packet);
    Py_DECREF(link);
    return r;
}

/* _next_hop + link dispatch for exotic cases (non-list source routes). */
static PyObject *
cnode_forward_generic(PyObject *self, PyObject *packet)
{
    PyObject *hop =
        PyObject_CallFunctionObjArgs(pure_node_next_hop, self, packet, NULL);
    PyObject *links, *link, *r;
    if (hop == NULL) {
        return NULL;
    }
    if (hop == Py_None) {
        Py_DECREF(hop);
        return node_dead_letter(self);
    }
    links = PyObject_GetAttr(self, str_links);
    if (links == NULL) {
        Py_DECREF(hop);
        return NULL;
    }
    link = mapping_get(links, hop);
    Py_DECREF(links);
    Py_DECREF(hop);
    if (link == NULL) {
        return NULL;
    }
    if (link == Py_None) {
        Py_DECREF(link);
        return node_dead_letter(self);
    }
    r = link_enqueue_dispatch(link, packet);
    Py_DECREF(link);
    return r;
}

/* Intact-source-route forwarding (the fig6 multipath hot path).        */
static PyObject *
cnode_forward_route(PyObject *self, PyObject *packet, PyObject *route)
{
    PyObject *idx_obj = SLOT(packet, pk_route_index);
    PyObject *name, *next_name, *links, *link, *r;
    long long index;
    Py_ssize_t rlen;
    int eq;
    if (!PyList_CheckExact(route)) {
        return cnode_forward_generic(self, packet);
    }
    if (idx_obj == NULL) {
        PyErr_SetString(PyExc_AttributeError, "route_index");
        return NULL;
    }
    index = PyLong_AsLongLong(idx_obj);
    if (index == -1 && PyErr_Occurred()) {
        return NULL;
    }
    rlen = PyList_GET_SIZE(route);
    if (index < 0 || index + 1 >= rlen) {
        return cnode_forward_table(self, packet); /* broken route fallback */
    }
    name = PyObject_GetAttr(self, str_name);
    if (name == NULL) {
        return NULL;
    }
    {
        PyObject *cur = PyList_GET_ITEM(route, (Py_ssize_t)index);
        eq = (cur == name)
                 ? 1
                 : PyObject_RichCompareBool(cur, name, Py_EQ);
    }
    Py_DECREF(name);
    if (eq < 0) {
        return NULL;
    }
    if (!eq) {
        return cnode_forward_table(self, packet); /* broken route fallback */
    }
    next_name = PyList_GET_ITEM(route, (Py_ssize_t)index + 1);
    links = PyObject_GetAttr(self, str_links);
    if (links == NULL) {
        return NULL;
    }
    link = mapping_get(links, next_name);
    Py_DECREF(links);
    if (link == NULL) {
        return NULL;
    }
    if (link == Py_None) {
        Py_DECREF(link);
        return node_dead_letter(self);
    }
    r = link_enqueue_dispatch(link, packet);
    Py_DECREF(link);
    return r;
}

/* Deliver to the local agent for packet.flow_id, or dead-letter.       */
static PyObject *
cnode_deliver_local(PyObject *self, PyObject *packet)
{
    PyObject *agents = PyObject_GetAttr(self, str_agents);
    PyObject *agent, *recv, *r;
    if (agents == NULL) {
        return NULL;
    }
    agent = mapping_get(agents, SLOT(packet, pk_flow_id));
    Py_DECREF(agents);
    if (agent == NULL) {
        return NULL;
    }
    if (agent == Py_None) {
        Py_DECREF(agent);
        return node_dead_letter(self);
    }
    recv = PyObject_GetAttr(agent, str_receive);
    Py_DECREF(agent);
    if (recv == NULL) {
        return NULL;
    }
    r = PyObject_CallOneArg(recv, packet);
    Py_DECREF(recv);
    if (r == NULL) {
        return NULL;
    }
    Py_DECREF(r);
    Py_RETURN_NONE;
}

static PyObject *
cnode_receive(PyObject *self, PyObject *packet)
{
    PyObject *route = SLOT(packet, pk_route);
    PyObject *dst, *name;
    int is_local;
    if (route == NULL) {
        return PyObject_CallFunctionObjArgs(pure_node_receive, self, packet,
                                            NULL);
    }
    if (route != Py_None) {
        if (slot_add_ll(packet, pk_route_index, 1) < 0) {
            return NULL;
        }
    }
    dst = SLOT(packet, pk_dst);
    name = PyObject_GetAttr(self, str_name);
    if (name == NULL) {
        return NULL;
    }
    is_local = (dst == name) ? 1 : PyObject_RichCompareBool(dst, name, Py_EQ);
    Py_DECREF(name);
    if (is_local < 0) {
        return NULL;
    }
    if (is_local) {
        return cnode_deliver_local(self, packet);
    }
    if (route != Py_None) {
        return cnode_forward_route(self, packet, route);
    }
    return cnode_forward_table(self, packet);
}

static PyObject *
cnode_forward(PyObject *self, PyObject *packet)
{
    PyObject *route = SLOT(packet, pk_route);
    if (route != NULL && route != Py_None) {
        return cnode_forward_route(self, packet, route);
    }
    return cnode_forward_table(self, packet);
}

static PyObject *
cnode_reduce_ex(PyObject *self, PyObject *protocol)
{
    (void)protocol;
    return reduce_via(self, &unpickle_node_fn, "_unpickle_node");
}

static PyMethodDef cnode_method_defs[] = {
    {"receive", (PyCFunction)cnode_receive, METH_O, NULL},
    {"_forward", (PyCFunction)cnode_forward, METH_O, NULL},
    {"__reduce_ex__", (PyCFunction)cnode_reduce_ex, METH_O, NULL},
    {NULL, NULL, 0, NULL},
};

/* ================================================================== */
/* Module init                                                         */
/* ================================================================== */
static Py_ssize_t
slot_offset(PyObject *type, const char *name)
{
    PyObject *descr = PyObject_GetAttrString(type, name);
    Py_ssize_t off;
    if (descr == NULL) {
        return -1;
    }
    if (!Py_IS_TYPE(descr, &PyMemberDescr_Type)) {
        PyErr_Format(PyExc_TypeError,
                     "%s.%s is not a slot member descriptor (%s)",
                     ((PyTypeObject *)type)->tp_name, name,
                     Py_TYPE(descr)->tp_name);
        Py_DECREF(descr);
        return -1;
    }
    off = ((PyMemberDescrObject *)descr)->d_member->offset;
    Py_DECREF(descr);
    return off;
}

static PyObject *
import_attr(const char *module, const char *attr)
{
    PyObject *mod = PyImport_ImportModule(module);
    PyObject *obj;
    if (mod == NULL) {
        return NULL;
    }
    obj = PyObject_GetAttrString(mod, attr);
    Py_DECREF(mod);
    return obj;
}

static PyObject *
intern_str(const char *s)
{
    return PyUnicode_InternFromString(s);
}

/* Create a plain Python subclass of `base` named `name` and inject the
 * given C methods as method descriptors -- the subclass behaves exactly
 * like `class name(base): ...` with C-speed methods. */
static PyObject *
make_py_subclass(const char *name, PyObject *base, PyMethodDef *defs,
                 int add_empty_slots)
{
    PyObject *bases = PyTuple_Pack(1, base);
    PyObject *ns, *cls = NULL;
    PyMethodDef *def;
    if (bases == NULL) {
        return NULL;
    }
    ns = PyDict_New();
    if (ns == NULL) {
        Py_DECREF(bases);
        return NULL;
    }
    {
        PyObject *modname = PyUnicode_FromString("repro._cext._core");
        int r;
        if (modname == NULL) {
            goto done;
        }
        r = PyDict_SetItemString(ns, "__module__", modname);
        Py_DECREF(modname);
        if (r < 0) {
            goto done;
        }
    }
    if (add_empty_slots) {
        PyObject *slots = PyTuple_New(0);
        int r;
        if (slots == NULL) {
            goto done;
        }
        r = PyDict_SetItemString(ns, "__slots__", slots);
        Py_DECREF(slots);
        if (r < 0) {
            goto done;
        }
    }
    cls = PyObject_CallFunction((PyObject *)&PyType_Type, "s(O)O", name, base,
                                ns);
    if (cls == NULL) {
        goto done;
    }
    for (def = defs; def->ml_name != NULL; def++) {
        PyObject *descr = PyDescr_NewMethod((PyTypeObject *)cls, def);
        int r;
        if (descr == NULL) {
            Py_CLEAR(cls);
            goto done;
        }
        r = PyDict_SetItemString(((PyTypeObject *)cls)->tp_dict, def->ml_name,
                                 descr);
        Py_DECREF(descr);
        if (r < 0) {
            Py_CLEAR(cls);
            goto done;
        }
    }
    PyType_Modified((PyTypeObject *)cls);
done:
    Py_DECREF(ns);
    Py_DECREF(bases);
    return cls;
}

static int
core_exec(PyObject *module)
{
    PyObject *events_mod_cls = NULL, *queues_cls = NULL, *packet_cls = NULL;
    PyObject *bases = NULL;

    if ((pure_simulator = import_attr("repro.sim.engine", "Simulator")) == NULL
        || (pure_link = import_attr("repro.net.link", "Link")) == NULL
        || (pure_node = import_attr("repro.net.node", "Node")) == NULL
        || (events_mod_cls =
                import_attr("repro.sim.events", "EventHandle")) == NULL
        || (queues_cls =
                import_attr("repro.net.queues", "DropTailQueue")) == NULL
        || (packet_cls = import_attr("repro.net.packet", "Packet")) == NULL
        || (exc_schedule_in_past =
                import_attr("repro.sim.errors", "ScheduleInPastError")) == NULL
        || (exc_simulation_error =
                import_attr("repro.sim.errors", "SimulationError")) == NULL) {
        goto fail;
    }
    event_handle_type = (PyTypeObject *)events_mod_cls;
    droptail_type = (PyTypeObject *)queues_cls;

    if ((empty_tuple = PyTuple_New(0)) == NULL
        || (str_empty = intern_str("")) == NULL
        || (str_heap_high_water = intern_str("heap_high_water")) == NULL
        || (str_receive = intern_str("receive")) == NULL
        || (str_name = intern_str("name")) == NULL
        || (str_agents = intern_str("agents")) == NULL
        || (str_links = intern_str("links")) == NULL
        || (str_routes = intern_str("routes")) == NULL
        || (str_dead_letters = intern_str("dead_letters")) == NULL
        || (str_enqueue = intern_str("enqueue")) == NULL
        || (str_push = intern_str("push")) == NULL
        || (str_pop = intern_str("pop")) == NULL
        || (str_get = intern_str("get")) == NULL
        || (str_delay_for = intern_str("delay_for")) == NULL
        || (str_record = intern_str("record")) == NULL
        || (str_getstate = intern_str("__getstate__")) == NULL
        || (str_notify_drop = intern_str("_notify_drop")) == NULL
        || (str_run_checkpointed = intern_str("_run_checkpointed")) == NULL
        || (str_post_in = intern_str("post_in")) == NULL) {
        goto fail;
    }

    {
        PyObject *collections = PyImport_ImportModule("collections");
        PyObject *deque_type;
        if (collections == NULL) {
            goto fail;
        }
        deque_type = PyObject_GetAttrString(collections, "deque");
        Py_DECREF(collections);
        if (deque_type == NULL) {
            goto fail;
        }
        deque_append = PyObject_GetAttrString(deque_type, "append");
        deque_popleft = PyObject_GetAttrString(deque_type, "popleft");
        Py_DECREF(deque_type);
        if (deque_append == NULL || deque_popleft == NULL) {
            goto fail;
        }
    }

    if ((pure_link_enqueue =
             PyObject_GetAttrString(pure_link, "enqueue")) == NULL
        || (pure_node_receive =
                PyObject_GetAttrString(pure_node, "receive")) == NULL
        || (pure_node_next_hop =
                PyObject_GetAttrString(pure_node, "_next_hop")) == NULL) {
        goto fail;
    }

    /* ---- slot offsets ------------------------------------------- */
    {
        static const char *const sim_slots[NUM_SIM_BASE_SLOTS] = {
            "now",   "rng",      "sanitize", "_heap",    "_seq",
            "_dispatched", "_live", "_running", "_profile", "_components"};
        int i;
        for (i = 0; i < NUM_SIM_BASE_SLOTS; i++) {
            sim_base_slot_off[i] = slot_offset(pure_simulator, sim_slots[i]);
            if (sim_base_slot_off[i] < 0) {
                goto fail;
            }
        }
    }
#define RESOLVE(var, cls, name)                                               \
    do {                                                                      \
        var = slot_offset(cls, name);                                         \
        if (var < 0) {                                                        \
            goto fail;                                                        \
        }                                                                     \
    } while (0)

    RESOLVE(eh_time, events_mod_cls, "time");
    RESOLVE(eh_seq, events_mod_cls, "seq");
    RESOLVE(eh_callback, events_mod_cls, "callback");
    RESOLVE(eh_label, events_mod_cls, "label");
    RESOLVE(eh_owner, events_mod_cls, "_owner");

    RESOLVE(lk_sim, pure_link, "sim");
    RESOLVE(lk_dst, pure_link, "dst");
    RESOLVE(lk_delay, pure_link, "delay");
    RESOLVE(lk_queue, pure_link, "queue");
    RESOLVE(lk_loss_model, pure_link, "loss_model");
    RESOLVE(lk_delay_model, pure_link, "delay_model");
    RESOLVE(lk_finish_cb, pure_link, "_finish_cb");
    RESOLVE(lk_label_tx, pure_link, "_label_tx");
    RESOLVE(lk_label_rx, pure_link, "_label_rx");
    RESOLVE(lk_inv_bw, pure_link, "_inv_bandwidth");
    RESOLVE(lk_post_in, pure_link, "_post_in");
    RESOLVE(lk_busy, pure_link, "_busy");
    RESOLVE(lk_tx_packets, pure_link, "tx_packets");
    RESOLVE(lk_tx_bytes, pure_link, "tx_bytes");
    RESOLVE(lk_arrived, pure_link, "arrived_packets");
    RESOLVE(lk_up, pure_link, "up");
    RESOLVE(lk_delay_scale, pure_link, "delay_scale");
    RESOLVE(lk_fault_rate, pure_link, "fault_loss_rate");

    RESOLVE(pk_size_bytes, packet_cls, "size_bytes");
    RESOLVE(pk_hops, packet_cls, "hops");
    RESOLVE(pk_route, packet_cls, "route");
    RESOLVE(pk_route_index, packet_cls, "route_index");
    RESOLVE(pk_dst, packet_cls, "dst");
    RESOLVE(pk_flow_id, packet_cls, "flow_id");

    RESOLVE(q_capacity, queues_cls, "capacity");
    RESOLVE(q_buffer, queues_cls, "_buffer");
    RESOLVE(q_enqueued, queues_cls, "enqueued");
    RESOLVE(q_maxocc, queues_cls, "max_occupancy");
    RESOLVE(q_obs, queues_cls, "obs");
#undef RESOLVE

    /* ---- compiled Simulator (appended C state) ------------------- */
    {
        PyTypeObject *base = (PyTypeObject *)pure_simulator;
        csim_state_off = base->tp_basicsize;
        csim_spec.basicsize =
            (int)(base->tp_basicsize + (Py_ssize_t)sizeof(csim_state));
        bases = PyTuple_Pack(1, pure_simulator);
        if (bases == NULL) {
            goto fail;
        }
        csim_type_obj = PyType_FromSpecWithBases(&csim_spec, bases);
        Py_CLEAR(bases);
        if (csim_type_obj == NULL) {
            goto fail;
        }
    }

    /* ---- compiled Link / Node (plain subclasses, C methods) ------ */
    clink_type_obj = make_py_subclass("Link", pure_link, clink_method_defs, 1);
    if (clink_type_obj == NULL) {
        goto fail;
    }
    cnode_type_obj = make_py_subclass("Node", pure_node, cnode_method_defs, 0);
    if (cnode_type_obj == NULL) {
        goto fail;
    }

    if (PyModule_AddObjectRef(module, "Simulator", csim_type_obj) < 0
        || PyModule_AddObjectRef(module, "Link", clink_type_obj) < 0
        || PyModule_AddObjectRef(module, "Node", cnode_type_obj) < 0) {
        goto fail;
    }
    Py_CLEAR(packet_cls);
    return 0;
fail:
    Py_XDECREF(bases);
    Py_XDECREF(packet_cls);
    return -1;
}

static PyModuleDef_Slot core_slots[] = {
    {Py_mod_exec, (void *)core_exec},
    {0, NULL},
};

static struct PyModuleDef core_module = {
    PyModuleDef_HEAD_INIT,
    "repro._cext._core",
    "C accelerator for the repro hot core (see docs/COMPILED.md).",
    0,
    NULL,
    core_slots,
    NULL,
    NULL,
    NULL,
};

PyMODINIT_FUNC
PyInit__core(void)
{
    return PyModuleDef_Init(&core_module);
}

"""The TCP receiver: cumulative ACKs, SACK (RFC 2018), DSACK (RFC 2883).

One receiver implementation serves every sender in this repository —
including TCP-PR, which the paper emphasizes "neither requires changes to
the TCP receiver nor uses any special TCP header option".

Sequence numbers count segments.  The receiver ACKs every arriving data
segment immediately (no delayed ACKs, matching ns-2's default Sink and the
per-ACK window arithmetic in the paper's pseudo-code).

Out-of-order data is tracked as contiguous *runs* maintained
incrementally (merge-on-insert), so building the SACK option for an ACK
costs O(number of reported blocks), not O(buffered segments) — this
matters because heavy-reordering experiments hold hundreds of segments
above the cumulative point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.net.node import Agent
from repro.net.packet import ACK_SIZE_BYTES, Packet

if TYPE_CHECKING:
    from repro.net.node import Node
    from repro.sim.engine import Simulator

SackBlock = Tuple[int, int]


class TcpReceiver(Agent):
    """Receiving endpoint of a TCP flow.

    Args:
        sim: Owning simulator.
        node: Node this receiver is attached to.
        flow_id: Flow identifier shared with the sender.
        peer: Name of the sender's node (ACK destination).
        sack: Generate SACK blocks for out-of-order data.
        dsack: Report duplicate arrivals with a DSACK block.
        max_sack_blocks: Cap on SACK blocks per ACK (the TCP option space
            fits 3 when timestamps are in use, 4 otherwise).
        delayed_ack: RFC 1122 delayed ACKs — acknowledge every second
            in-order segment, or after ``delack_timeout``.  Out-of-order
            arrivals, hole fills, and duplicates are always acknowledged
            immediately (RFC 5681).  Off by default, matching ns-2's
            per-packet Sink and the paper's per-ACK window arithmetic.
        delack_timeout: Delayed-ACK timer (RFC 1122 caps it at 500 ms;
            200 ms is the common implementation value).

    Attributes:
        rcv_nxt: Next expected segment = cumulative ACK value.
        duplicates: Count of duplicate segment arrivals.
        total_received: All data arrivals, including duplicates.
    """

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        flow_id: int,
        peer: str,
        sack: bool = True,
        dsack: bool = True,
        max_sack_blocks: int = 3,
        delayed_ack: bool = False,
        delack_timeout: float = 0.2,
    ) -> None:
        super().__init__(sim, node, flow_id)
        self.peer = peer
        self.sack_enabled = sack
        self.dsack_enabled = dsack
        self.max_sack_blocks = max_sack_blocks
        if not 0.0 < delack_timeout <= 0.5:
            raise ValueError(
                f"delack_timeout must be in (0, 0.5] s, got {delack_timeout}"
            )
        self.delayed_ack_enabled = delayed_ack
        self.delack_timeout = delack_timeout
        self._pending_ack_for: Optional[Packet] = None
        self._delack_handle = None
        self._label_delack = f"delack f{flow_id}"
        self.delayed_acks_sent = 0
        self.rcv_nxt = 0
        #: Segments held above rcv_nxt (for duplicate detection).
        self._buffered: Set[int] = set()
        #: Contiguous runs of buffered segments: start -> end and end -> start.
        self._run_start_to_end: Dict[int, int] = {}
        self._run_end_to_start: Dict[int, int] = {}
        self.duplicates = 0
        self.total_received = 0
        self.acks_sent = 0
        self.reordered_arrivals = 0
        self._max_seq_seen = -1
        #: Metrics probe installed by repro.obs (None = not observed).
        self.obs = None
        #: Round-robin cursor so every SACK run gets reported periodically
        #: even when more runs exist than option slots (RFC 2018 §4).
        self._sack_rotation = 0

    # ------------------------------------------------------------------
    @property
    def delivered(self) -> int:
        """Segments delivered to the application in order."""
        return self.rcv_nxt

    @property
    def buffered_segments(self) -> int:
        """Out-of-order segments currently held above rcv_nxt."""
        return len(self._buffered)

    def sack_runs(self) -> List[SackBlock]:
        """All current out-of-order runs (unordered; for tests/diagnostics)."""
        return sorted(self._run_start_to_end.items())

    def receive(self, packet: Packet) -> None:
        if not packet.is_data:
            return  # a stray ACK routed here; receivers ignore it
        self.total_received += 1
        seq = packet.seq
        if seq < self._max_seq_seen:
            self.reordered_arrivals += 1
            if self.obs is not None:
                self.obs.reorder(self._max_seq_seen - seq)
        else:
            self._max_seq_seen = seq

        duplicate = seq < self.rcv_nxt or seq in self._buffered
        trigger_run: Optional[SackBlock] = None
        cumulative_before = self.rcv_nxt
        if duplicate:
            self.duplicates += 1
        else:
            trigger_run = self._insert(seq)
            if self.rcv_nxt in self._run_start_to_end:
                end = self._run_start_to_end.pop(self.rcv_nxt)
                del self._run_end_to_start[end]
                for delivered_seq in range(self.rcv_nxt, end):
                    self._buffered.discard(delivered_seq)
                self.rcv_nxt = end
                trigger_run = None
        filled_hole = self.rcv_nxt > cumulative_before + 1
        if self.obs is not None and self.rcv_nxt > cumulative_before:
            self.obs.delivered(self.rcv_nxt)
        self._send_ack(packet, duplicate, trigger_run, filled_hole)

    # ------------------------------------------------------------------
    def _insert(self, seq: int) -> SackBlock:
        """Buffer ``seq``, merging adjacent runs; returns the merged run."""
        self._buffered.add(seq)
        start, end = seq, seq + 1
        left_start = self._run_end_to_start.pop(seq, None)
        if left_start is not None:
            del self._run_start_to_end[left_start]
            start = left_start
        right_end = self._run_start_to_end.pop(seq + 1, None)
        if right_end is not None:
            del self._run_end_to_start[right_end]
            end = right_end
        self._run_start_to_end[start] = end
        self._run_end_to_start[end] = start
        return (start, end)

    # ------------------------------------------------------------------
    # Delayed ACKs
    # ------------------------------------------------------------------
    def _maybe_delay_ack(
        self,
        data_packet: Packet,
        duplicate: bool,
        trigger_run: Optional[SackBlock],
        filled_hole: bool,
    ) -> bool:
        """Apply RFC 1122/5681 delayed-ACK rules; True if the ACK is held."""
        if not self.delayed_ack_enabled:
            return False
        out_of_order = (
            duplicate
            or filled_hole
            or trigger_run is not None
            or bool(self._buffered)
        )
        if out_of_order:
            # Out-of-order / duplicate / hole-fill: ACK immediately, and
            # it supersedes any held ACK.
            self._cancel_delack()
            return False
        if self._pending_ack_for is not None:
            # Second in-order segment: ACK now (covers both).
            self._cancel_delack()
            return False
        self._pending_ack_for = data_packet
        self._delack_handle = self.sim.schedule_in(
            self.delack_timeout, self._delack_fire, label=self._label_delack
        )
        return True

    def _cancel_delack(self) -> None:
        self._pending_ack_for = None
        if self._delack_handle is not None:
            self._delack_handle.cancel()
            self._delack_handle = None

    def _delack_fire(self) -> None:
        pending = self._pending_ack_for
        self._delack_handle = None
        self._pending_ack_for = None
        if pending is not None:
            self.delayed_acks_sent += 1
            self._emit_ack(pending, duplicate=False, trigger_run=None)

    def _send_ack(
        self,
        data_packet: Packet,
        duplicate: bool,
        trigger_run: Optional[SackBlock],
        filled_hole: bool = False,
    ) -> None:
        if self._maybe_delay_ack(data_packet, duplicate, trigger_run, filled_hole):
            return
        self._emit_ack(data_packet, duplicate, trigger_run)

    def _emit_ack(
        self,
        data_packet: Packet,
        duplicate: bool,
        trigger_run: Optional[SackBlock],
    ) -> None:
        sack_blocks: Optional[List[SackBlock]] = None
        if self.sack_enabled and self._run_start_to_end:
            sack_blocks = self._build_sack_blocks(trigger_run)
        dsack = None
        if self.dsack_enabled and duplicate:
            dsack = (data_packet.seq, data_packet.seq + 1)
        ack = Packet(
            "ack",
            src=self.node.name,
            dst=self.peer,
            flow_id=self.flow_id,
            seq=data_packet.seq,
            ack=self.rcv_nxt,
            size_bytes=ACK_SIZE_BYTES,
            sack_blocks=sack_blocks,
            dsack=dsack,
            ts_echo=data_packet.ts_val,
        )
        self.acks_sent += 1
        self.inject(ack)

    def _build_sack_blocks(
        self, trigger_run: Optional[SackBlock]
    ) -> List[SackBlock]:
        """First block = the run containing the triggering segment (RFC
        2018), remaining slots cycle round-robin through the other runs
        so no run is starved under heavy reordering."""
        blocks: List[SackBlock] = []
        if trigger_run is not None:
            blocks.append(trigger_run)
        runs = self._run_start_to_end
        if len(runs) > len(blocks):
            starts = list(runs)
            attempts = 0
            while len(blocks) < self.max_sack_blocks and attempts < len(starts):
                start = starts[self._sack_rotation % len(starts)]
                self._sack_rotation += 1
                attempts += 1
                block = (start, runs[start])
                if block not in blocks:
                    blocks.append(block)
        return blocks

    # ------------------------------------------------------------------
    # StatefulComponent protocol (see repro.checkpoint.state)
    # ------------------------------------------------------------------
    #: Wiring excluded from snapshots: engine references, the probe,
    #: the live delayed-ACK handle, and the cached label.
    _SNAPSHOT_EXCLUDE = frozenset(
        {"sim", "node", "obs", "_delack_handle", "_label_delack"}
    )

    def snapshot_state(self) -> "Dict[str, Any]":
        from repro.checkpoint.state import snapshot_object

        return snapshot_object(self, exclude=self._SNAPSHOT_EXCLUDE)

    def restore_state(self, state: "Mapping[str, Any]") -> None:
        from repro.checkpoint.state import restore_object

        restore_object(self, state)

    def __repr__(self) -> str:
        return (
            f"<TcpReceiver flow={self.flow_id} rcv_nxt={self.rcv_nxt} "
            f"ooo={len(self._buffered)} dup={self.duplicates}>"
        )

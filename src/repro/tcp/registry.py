"""Name-based construction of TCP sender variants.

The experiment harness refers to protocols by the names used in the
paper's figures ("TCP-PR", "TD-FR", "DSACK-NM", "Inc by 1", "Inc by N",
"EWMA") as well as plain engineering names; :func:`make_sender` maps
either spelling to a configured sender instance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.core.pr import PrConfig, TcpPrSender
from repro.tcp.base import TcpConfig
from repro.tcp.door import DoorSender
from repro.tcp.dsack_response import (
    DsackSender,
    EwmaPolicy,
    IncrementByOnePolicy,
    IncrementToAveragePolicy,
    NoMitigationPolicy,
)
from repro.tcp.eifel import EifelSender
from repro.tcp.newreno import NewRenoSender
from repro.tcp.reno import RenoSender
from repro.tcp.rrtcp import RrTcpSender
from repro.tcp.sack import SackSender
from repro.tcp.tdfr import TdfrSender

if TYPE_CHECKING:
    from repro.net.node import Node
    from repro.sim.engine import Simulator

#: Canonical variant name -> factory(sim, node, flow_id, peer, tcp_config).
_FACTORIES: Dict[str, Callable] = {
    "reno": lambda sim, node, fid, peer, cfg: RenoSender(sim, node, fid, peer, cfg),
    "newreno": lambda sim, node, fid, peer, cfg: NewRenoSender(
        sim, node, fid, peer, cfg
    ),
    "sack": lambda sim, node, fid, peer, cfg: SackSender(sim, node, fid, peer, cfg),
    "tdfr": lambda sim, node, fid, peer, cfg: TdfrSender(sim, node, fid, peer, cfg),
    "dsack-nm": lambda sim, node, fid, peer, cfg: DsackSender(
        sim, node, fid, peer, cfg, policy=NoMitigationPolicy()
    ),
    "inc-by-1": lambda sim, node, fid, peer, cfg: DsackSender(
        sim, node, fid, peer, cfg, policy=IncrementByOnePolicy()
    ),
    "inc-by-n": lambda sim, node, fid, peer, cfg: DsackSender(
        sim, node, fid, peer, cfg, policy=IncrementToAveragePolicy()
    ),
    "ewma": lambda sim, node, fid, peer, cfg: DsackSender(
        sim, node, fid, peer, cfg, policy=EwmaPolicy()
    ),
    "eifel": lambda sim, node, fid, peer, cfg: EifelSender(sim, node, fid, peer, cfg),
    "door": lambda sim, node, fid, peer, cfg: DoorSender(sim, node, fid, peer, cfg),
    "rr-tcp": lambda sim, node, fid, peer, cfg: RrTcpSender(sim, node, fid, peer, cfg),
}

#: Figure-label spellings accepted as aliases.
_ALIASES: Dict[str, str] = {
    "tcp-pr": "tcp-pr",
    "tcppr": "tcp-pr",
    "pr": "tcp-pr",
    "tcp-sack": "sack",
    "tcp-reno": "reno",
    "tcp-newreno": "newreno",
    "td-fr": "tdfr",
    "dsack": "dsack-nm",
    "inc by 1": "inc-by-1",
    "inc by n": "inc-by-n",
    "rrtcp": "rr-tcp",
    "rr": "rr-tcp",
}


def canonical_name(name: str) -> str:
    """Resolve aliases and figure labels to a canonical variant name."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key != "tcp-pr" and key not in _FACTORIES:
        raise ValueError(
            f"unknown TCP variant {name!r}; available: {available_variants()}"
        )
    return key


def available_variants() -> list[str]:
    """All accepted canonical variant names."""
    return sorted([*_FACTORIES, "tcp-pr"])


def make_sender(
    name: str,
    sim: "Simulator",
    node: "Node",
    flow_id: int,
    peer: str,
    tcp_config: Optional[TcpConfig] = None,
    pr_config: Optional[PrConfig] = None,
):
    """Build a sender of the named variant attached to ``node``.

    Args:
        name: Variant name or figure-label alias (case-insensitive).
        tcp_config: Configuration for the Reno-family variants.
        pr_config: Configuration for TCP-PR.

    Returns:
        A :class:`~repro.tcp.base.TcpSenderBase` or
        :class:`~repro.core.pr.TcpPrSender` instance.
    """
    key = canonical_name(name)
    if key == "tcp-pr":
        return TcpPrSender(sim, node, flow_id, peer, pr_config)
    return _FACTORIES[key](sim, node, flow_id, peer, tcp_config)

"""TCP NewReno (RFC 2582/3782): partial-ACK handling in fast recovery.

Where classic Reno leaves recovery on the first new ACK (and stalls when
several segments from one window are lost), NewReno stays in recovery
until the ACK covers ``recovery_point`` (the highest segment outstanding
when recovery began), retransmitting one hole per partial ACK.
"""

from __future__ import annotations

from repro.net.packet import Packet
from repro.tcp.base import TcpSenderBase


class NewRenoSender(TcpSenderBase):
    """TCP NewReno sender."""

    variant = "newreno"

    def _recovery_ack(self, packet: Packet, newly_acked: int) -> None:
        if packet.ack >= self.recovery_point:
            # Full ACK: recovery complete.
            self._exit_recovery()
            return
        # Partial ACK: the next hole starts exactly at the new snd_una
        # (snd_una was already advanced by the caller).  Retransmit it,
        # deflate the window by the amount acknowledged (keeping the
        # inflation consistent), and stay in recovery.
        self.cwnd = max(self.ssthresh, self.cwnd - newly_acked + 1)
        self._retransmit(self.snd_una)

"""TCP senders and receivers.

Baselines (Section 4/5 of the paper):

* :class:`RenoSender` — classic Reno fast retransmit / fast recovery.
* :class:`NewRenoSender` — partial-ACK handling (RFC 2582).
* :class:`SackSender` — SACK loss recovery with a scoreboard and pipe
  (RFC 2018 + RFC 3517 style), the paper's main fairness baseline.

Reordering-robust baselines from Blanton & Allman (Figure 6):

* :class:`TdfrSender` — time-delayed fast recovery (Paxson).
* :class:`DsackSender` with a :class:`DupthreshPolicy` — DSACK-based
  spurious-retransmit undo with dupthresh mitigation: no mitigation
  (DSACK-NM), increment-by-one, increment-to-average ("Inc by N"), EWMA.

Extensions: :class:`EifelSender` (timestamp-based undo) and
:class:`DoorSender` (TCP-DOOR-style out-of-order response).

The receiver (:class:`TcpReceiver`) is shared by every sender, including
TCP-PR: cumulative ACKs, optional SACK blocks, optional DSACK reporting.
"""

from repro.tcp.base import TcpConfig, TcpSenderBase
from repro.tcp.door import DoorSender
from repro.tcp.dsack_response import (
    DsackSender,
    DupthreshPolicy,
    EwmaPolicy,
    IncrementByOnePolicy,
    IncrementToAveragePolicy,
    NoMitigationPolicy,
)
from repro.tcp.eifel import EifelSender
from repro.tcp.newreno import NewRenoSender
from repro.tcp.receiver import TcpReceiver
from repro.tcp.registry import available_variants, make_sender
from repro.tcp.reno import RenoSender
from repro.tcp.rrtcp import PercentilePolicy, RrTcpSender
from repro.tcp.rto import RtoEstimator
from repro.tcp.sack import SackSender
from repro.tcp.scoreboard import Scoreboard
from repro.tcp.tdfr import TdfrSender

__all__ = [
    "DoorSender",
    "DsackSender",
    "DupthreshPolicy",
    "EifelSender",
    "EwmaPolicy",
    "IncrementByOnePolicy",
    "IncrementToAveragePolicy",
    "NewRenoSender",
    "NoMitigationPolicy",
    "PercentilePolicy",
    "RenoSender",
    "RrTcpSender",
    "RtoEstimator",
    "SackSender",
    "Scoreboard",
    "TcpConfig",
    "TcpReceiver",
    "TcpSenderBase",
    "TdfrSender",
    "available_variants",
    "make_sender",
]

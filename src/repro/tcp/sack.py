"""TCP SACK sender (RFC 2018 options + RFC 3517-style recovery).

This is the paper's principal fairness baseline ("specifically,
TCP-SACK").  Loss recovery differs from Reno/NewReno in two ways:

* the scoreboard knows exactly which segments the receiver holds, so
  only genuinely missing segments are retransmitted, and
* transmission during recovery is governed by the ``pipe`` estimate of
  packets in flight rather than by window inflation.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.net.packet import Packet
from repro.tcp.base import TcpSenderBase
from repro.tcp.scoreboard import Scoreboard


class SackSender(TcpSenderBase):
    """TCP SACK sender."""

    variant = "sack"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.scoreboard = Scoreboard()
        self._high_rxt = -1

    # ------------------------------------------------------------------
    # ACK option processing
    # ------------------------------------------------------------------
    def _process_ack_options(self, packet: Packet) -> None:
        self.scoreboard.record_blocks(packet.sack_blocks, self.snd_una)

    def _after_new_ack(self, packet: Packet, newly_acked: int) -> None:
        self.scoreboard.advance(self.snd_una)

    # ------------------------------------------------------------------
    # Loss recovery
    # ------------------------------------------------------------------
    def _on_dupack_event(self, packet: Packet) -> None:
        if self.in_recovery:
            return  # pipe-based sending; no window inflation
        if self.dupacks >= self.dupthresh or self.scoreboard.is_lost(
            self.snd_una, self.dupthresh
        ):
            self._enter_fast_recovery(inflate=False)
        elif self.config.limited_transmit and self.dupacks <= 2:
            self._limited_transmit_allowance = min(self.dupacks, 2)

    def _enter_fast_recovery(self, inflate: bool) -> None:
        # SACK never inflates the window; pipe accounting replaces it.
        super()._enter_fast_recovery(inflate=False)

    def _recovery_ack(self, packet: Packet, newly_acked: int) -> None:
        if packet.ack >= self.recovery_point:
            self._exit_recovery()

    def _exit_recovery(self) -> None:
        super()._exit_recovery()
        self._high_rxt = -1

    def _on_timeout_hook(self) -> None:
        # Keep SACKed segments (we skip them during the replay) but drop
        # retransmission marks: everything unSACKed is presumed lost.
        self.scoreboard.clear_retransmitted()
        self._high_rxt = -1

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def _send_available(self) -> None:
        if not self.in_recovery:
            super()._send_available()
            return
        # Pipe-governed sending (RFC 3517): compute pipe once per burst and
        # count each transmission against it, instead of rescanning the
        # whole window per packet.
        window = math.floor(min(self.cwnd, float(self.config.receiver_window)))
        pipe = self.scoreboard.pipe(self.snd_una, self.snd_max, self.dupthresh)
        receiver_limit = self.snd_una + self.config.receiver_window
        while pipe < window:
            seq = self._next_seq()
            if seq is None or seq >= receiver_limit:
                break
            self._transmit(seq)
            pipe += 1

    def _next_seq(self) -> Optional[int]:
        if self.in_recovery:
            lost = self.scoreboard.next_lost_to_retransmit(
                max(self.snd_una, self._high_rxt + 1),
                self.snd_max,
                self.dupthresh,
            )
            if lost is not None:
                return lost
            return super()._next_seq()
        # Outside recovery (including the post-RTO replay), skip segments
        # the receiver already holds.
        while self.snd_nxt < self.snd_max and self.scoreboard.is_sacked(self.snd_nxt):
            self.snd_nxt += 1
        return super()._next_seq()

    def _on_segment_sent(self, seq: int, is_retransmit: bool) -> None:
        if self.in_recovery and is_retransmit:
            self.scoreboard.mark_retransmitted(seq)
            if seq > self._high_rxt:
                self._high_rxt = seq

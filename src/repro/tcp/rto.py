"""Retransmission-timeout estimation per RFC 2988 (Paxson & Allman).

srtt / rttvar smoothing with the standard gains (1/8, 1/4), a configurable
minimum RTO (RFC 2988 recommends 1 second, which is also what the paper
leans on when it makes TCP-PR's extreme-loss mode wait ``max(mxrtt, 1 s)``),
and binary exponential backoff capped at ``max_rto``.
"""

from __future__ import annotations

from typing import Optional


class RtoEstimator:
    """RFC 2988 RTO computation.

    Attributes:
        srtt: Smoothed RTT (None until the first sample).
        rttvar: RTT variance estimate.
        backoff: Current backoff multiplier (1, 2, 4, ...).
    """

    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0
    K = 4.0

    def __init__(
        self,
        initial_rto: float = 3.0,
        min_rto: float = 1.0,
        max_rto: float = 64.0,
        granularity: float = 0.0,
    ) -> None:
        if not 0 < min_rto <= max_rto:
            raise ValueError("need 0 < min_rto <= max_rto")
        self.initial_rto = initial_rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.granularity = granularity
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0
        self.backoff: int = 1

    def on_sample(self, rtt: float) -> None:
        """Feed one RTT measurement (seconds); resets backoff."""
        if rtt < 0:
            raise ValueError(f"negative RTT sample {rtt}")
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * abs(
                self.srtt - rtt
            )
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt
        self.backoff = 1

    @property
    def rto(self) -> float:
        """Current timeout, including backoff, clamped to [min_rto, max_rto]."""
        if self.srtt is None:
            base = self.initial_rto
        else:
            base = self.srtt + max(self.granularity, self.K * self.rttvar)
        base = max(self.min_rto, base)
        return min(self.max_rto, base * self.backoff)

    def on_timeout(self) -> None:
        """Apply exponential backoff after a retransmission timeout."""
        self.backoff = min(self.backoff * 2, 64)

    def reset_backoff(self) -> None:
        self.backoff = 1

    def __repr__(self) -> str:
        srtt = f"{self.srtt:.4f}" if self.srtt is not None else "None"
        return f"<RtoEstimator srtt={srtt} rto={self.rto:.4f} backoff={self.backoff}>"

"""RR-TCP-style reordering-robust sender (extension).

The paper's Related Work cites RR-TCP [21] (Zhang, Karp, Floyd,
Peterson) but could not compare against it: "Since the simulation
implementation of this method is not yet available, it was not included
in this comparison."  This module adds a simplified implementation so
the comparison can finally be run.

RR-TCP's core idea: measure the *distribution* of reordering event
lengths (how many duplicate ACKs a falsely-suspected hole generates
before it fills) using DSACK feedback, and set dupthresh to a chosen
percentile of that distribution — high enough to avoid most false fast
retransmits, bounded so genuine losses are still caught before an RTO.
The full paper adds a cost function trading false fast retransmits
against timeouts; here the percentile is a parameter (their default
regime corresponds to ~0.95), and dupthresh is bounded by the congestion
window (a fast retransmit needs at least dupthresh dupacks to arrive,
which a window smaller than dupthresh can never produce).
"""

from __future__ import annotations

import math
from typing import List

from repro.tcp.dsack_response import DsackSender, DupthreshPolicy


class PercentilePolicy(DupthreshPolicy):
    """dupthresh = the given percentile of observed reorder lengths."""

    name = "percentile"

    def __init__(self, percentile: float = 0.95, history: int = 100) -> None:
        if not 0.0 < percentile <= 1.0:
            raise ValueError(f"percentile must be in (0, 1], got {percentile}")
        if history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        self.percentile = percentile
        self.history = history
        self._samples: List[int] = []

    def observe(self, reorder_len: int) -> None:
        self._samples.append(reorder_len)
        if len(self._samples) > self.history:
            del self._samples[0]

    def adjust(self, current: int, reorder_len: int) -> int:
        self.observe(reorder_len)
        ordered = sorted(self._samples)
        index = min(
            len(ordered) - 1, math.ceil(self.percentile * len(ordered)) - 1
        )
        # One above the percentile displacement: that many dupacks were
        # *not* enough evidence of a real loss.
        return max(1, ordered[max(0, index)] + 1)


class RrTcpSender(DsackSender):
    """SACK + DSACK sender with RR-TCP-style percentile dupthresh.

    Differences from the plain :class:`DsackSender` variants:

    * dupthresh tracks a percentile of the reordering-length history
      (not a fixed increment or plain average);
    * dupthresh is clamped below the congestion window, so loss
      detection never requires more duplicate ACKs than a window can
      generate (RR-TCP's RTO-avoidance constraint);
    * after a retransmission timeout the sampled history is kept but the
      working dupthresh is re-derived, since an RTO signals that
      dupthresh may have grown past what the window can support.
    """

    variant = "rr-tcp"

    def __init__(self, *args, percentile: float = 0.95, **kwargs) -> None:
        self._target_dupthresh = 3  # written via the property during init
        kwargs.setdefault("policy", PercentilePolicy(percentile=percentile))
        super().__init__(*args, **kwargs)

    @property
    def dupthresh(self) -> int:  # type: ignore[override]
        """The percentile target, clamped to what the window can prove.

        A fast retransmit needs ``dupthresh`` duplicate ACKs; a window of
        W outstanding segments can generate at most W-1 of them, so any
        larger target would silently convert every loss into an RTO.
        """
        window = min(self.cwnd, float(max(self.flightsize(), 1)))
        window_bound = max(1, int(window) - 1)
        return max(1, min(self._target_dupthresh, window_bound))

    @dupthresh.setter
    def dupthresh(self, value: int) -> None:
        self._target_dupthresh = int(value)

    @property
    def target_dupthresh(self) -> int:
        """The unbounded percentile-derived target (diagnostics)."""
        return self._target_dupthresh

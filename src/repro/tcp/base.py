"""Common TCP sender machinery.

:class:`TcpSenderBase` implements everything the Reno family shares:

* segment-granularity send window (``cwnd`` in packets, like ns-2 and the
  paper's pseudo-code),
* slow start / congestion avoidance growth,
* a single RFC 2988 retransmission timer with exponential backoff,
* Karn-compliant RTT sampling (one timed segment at a time, never a
  retransmission),
* limited transmit (RFC 3042),
* an infinite-bulk application model (optionally capped).

Loss recovery is the variant-specific part: subclasses override the
``_on_dupack_event`` / ``_recovery_ack`` / ``_next_seq`` hooks.  The base
class by itself behaves exactly like classic Reno (fast retransmit at
``dupthresh`` duplicate ACKs, window inflation, exit recovery on the first
new ACK); :class:`~repro.tcp.reno.RenoSender` is a thin alias.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional

from repro.net.node import Agent
from repro.net.packet import Packet
from repro.tcp.rto import RtoEstimator

if TYPE_CHECKING:
    from repro.net.node import Node
    from repro.sim.engine import Simulator
    from repro.sim.events import EventHandle

#: A practically-infinite ssthresh sentinel (segments).
INFINITE_SSTHRESH = float("inf")


@dataclass
class TcpConfig:
    """Tunable parameters shared by all TCP sender variants.

    Attributes:
        mss_bytes: Segment size on the wire.
        initial_cwnd: Initial congestion window (segments).
        initial_ssthresh: Initial slow-start threshold (segments).
        dupthresh: Duplicate-ACK threshold for fast retransmit.
        receiver_window: Advertised window cap (segments).
        initial_rto / min_rto / max_rto: RFC 2988 timer parameters.
        limited_transmit: Send new data on the first two duplicate ACKs.
        total_segments: Stop after this many segments (None = infinite bulk).
        timestamps: Carry an RFC 1323-style timestamp on data segments
            (needed by the Eifel variant; harmless otherwise).
    """

    mss_bytes: int = 1000
    initial_cwnd: float = 1.0
    initial_ssthresh: float = INFINITE_SSTHRESH
    dupthresh: int = 3
    #: Advertised receiver window (segments).  Finite like every real
    #: receiver's: it bounds how far past snd_una the sender can run when
    #: loss recovery stalls on an unlucky hole.
    receiver_window: int = 1_000
    initial_rto: float = 3.0
    min_rto: float = 1.0
    max_rto: float = 64.0
    limited_transmit: bool = True
    total_segments: Optional[int] = None
    timestamps: bool = False


@dataclass
class TcpStats:
    """Counters exposed by every sender for tests and experiments."""

    data_packets_sent: int = 0
    retransmits: int = 0
    fast_retransmits: int = 0
    timeouts: int = 0
    acks_received: int = 0
    dupacks_received: int = 0
    recoveries_entered: int = 0
    spurious_retransmits_detected: int = 0
    rtt_samples: int = 0
    cwnd_peak: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)


class TcpSenderBase(Agent):
    """Base TCP sender (classic Reno behaviour).

    Args:
        sim: Owning simulator.
        node: Node the sender is attached to.
        flow_id: Flow identifier (shared with the receiver).
        peer: Name of the receiver's node.
        config: Protocol parameters; defaults are paper-era standards.
    """

    #: Human-readable variant name, overridden by subclasses.
    variant: str = "reno"

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        flow_id: int,
        peer: str,
        config: Optional[TcpConfig] = None,
    ) -> None:
        super().__init__(sim, node, flow_id)
        self.peer = peer
        self.config = config if config is not None else TcpConfig()
        self.rto = RtoEstimator(
            initial_rto=self.config.initial_rto,
            min_rto=self.config.min_rto,
            max_rto=self.config.max_rto,
        )
        self.cwnd: float = self.config.initial_cwnd
        self.ssthresh: float = self.config.initial_ssthresh
        self.snd_una = 0  # oldest unacknowledged segment
        self.snd_nxt = 0  # next segment to send (may roll back after RTO)
        self.snd_max = 0  # highest segment ever sent + 1
        self.dupacks = 0
        self.dupthresh = self.config.dupthresh
        self.in_recovery = False
        self.recovery_point = -1
        self.stats = TcpStats()
        #: Metrics probe installed by repro.obs (None = not observed;
        #: every hook below is a single is-not-None check then).
        self.obs: Optional[Any] = None
        self._started = False
        #: The one live RTO heap event (None = disarmed).  Restarts that
        #: only push the deadline *later* don't touch the heap — the
        #: event fires at the old deadline and lazily re-arms itself at
        #: ``_timer_deadline`` (with the tie-break seq reserved at the
        #: restart), so the per-ACK cancel/re-schedule churn is gone.
        self._timer_handle: Optional["EventHandle"] = None
        self._timer_deadline: Optional[float] = None
        self._timer_stamp = 0
        self._rto_cb = self._on_rto_fire
        self._label_rto = f"rto f{flow_id}"
        self._label_start = f"tcp start f{flow_id}"
        # Karn RTT timing: one segment timed at a time.
        self._timed_seq: Optional[int] = None
        self._timed_at = 0.0
        self._ever_retransmitted: set[int] = set()
        self._limited_transmit_allowance = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, at: float = 0.0) -> None:
        """Begin transmitting at simulation time ``at``."""
        if self._started:
            return
        self._started = True
        self.sim.post(at, self._send_available, None, self._label_start)

    @property
    def done(self) -> bool:
        """True once a capped transfer has been fully acknowledged."""
        total = self.config.total_segments
        return total is not None and self.snd_una >= total

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        if not packet.is_ack:
            return
        self.stats.acks_received += 1
        self._process_ack_options(packet)
        if packet.ack > self.snd_una:
            self._on_new_ack(packet)
        elif packet.ack == self.snd_una and self.flightsize() > 0:
            self._on_dupack(packet)
        # else: stale ACK below snd_una — ignore.

    def _process_ack_options(self, packet: Packet) -> None:
        """Hook for SACK/DSACK/timestamp option processing (subclasses)."""

    def _on_new_ack(self, packet: Packet) -> None:
        ack = packet.ack
        newly_acked = ack - self.snd_una
        self._take_rtt_sample(ack)
        self.snd_una = ack
        if self.snd_nxt < self.snd_una:
            self.snd_nxt = self.snd_una
        self._ever_retransmitted = {
            seq for seq in self._ever_retransmitted if seq >= self.snd_una
        }
        if self.in_recovery:
            self._recovery_ack(packet, newly_acked)
        else:
            self.dupacks = 0
            self._limited_transmit_allowance = 0
            self._grow_cwnd()
        self._after_new_ack(packet, newly_acked)
        if self.obs is not None:
            self.obs.on_ack(self)
        self._restart_timer()
        self._send_available()

    def _after_new_ack(self, packet: Packet, newly_acked: int) -> None:
        """Hook invoked after common new-ACK processing (subclasses)."""

    def _on_dupack(self, packet: Packet) -> None:
        self.stats.dupacks_received += 1
        self.dupacks += 1
        self._on_dupack_event(packet)
        self._send_available()

    # -- default (classic Reno) loss recovery ---------------------------
    def _on_dupack_event(self, packet: Packet) -> None:
        """Duplicate-ACK state machine; base implements classic Reno."""
        if self.in_recovery:
            # Window inflation: each dupack signals a departure.
            self.cwnd += 1
            return
        if self.dupacks >= self.dupthresh:
            self._enter_fast_recovery(inflate=True)
        elif self.config.limited_transmit and self.dupacks <= 2:
            self._limited_transmit_allowance = min(self.dupacks, 2)

    def _enter_fast_recovery(self, inflate: bool) -> None:
        """Halve the window and retransmit the oldest outstanding segment."""
        self.in_recovery = True
        self.recovery_point = self.snd_max
        # Halve the *congestion estimate*: cwnd where flight exceeds it
        # (flightsize can overshoot cwnd while a prior recovery stalls on
        # a lost retransmission, and must not snowball into ssthresh).
        self.ssthresh = max(min(self.flightsize(), self.cwnd) / 2.0, 2.0)
        self.cwnd = self.ssthresh + (self.dupacks if inflate else 0)
        self._limited_transmit_allowance = 0
        self.stats.fast_retransmits += 1
        self.stats.recoveries_entered += 1
        if self.obs is not None:
            self.obs.on_loss(self)
        self._retransmit(self.snd_una)
        self._restart_timer()

    def _recovery_ack(self, packet: Packet, newly_acked: int) -> None:
        """New ACK while in recovery; classic Reno exits immediately."""
        self._exit_recovery()

    def _exit_recovery(self) -> None:
        self.in_recovery = False
        self.recovery_point = -1
        self.dupacks = 0
        self._limited_transmit_allowance = 0
        self.cwnd = self.ssthresh

    # ------------------------------------------------------------------
    # Window growth
    # ------------------------------------------------------------------
    def _grow_cwnd(self) -> None:
        """One new-ACK worth of growth: slow start or congestion avoidance."""
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0
        else:
            self.cwnd += 1.0 / self.cwnd
        if self.cwnd > self.stats.cwnd_peak:
            self.stats.cwnd_peak = self.cwnd

    def flightsize(self) -> int:
        """Outstanding segments by the standard definition."""
        return self.snd_max - self.snd_una

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def _send_available(self) -> None:
        """Send as much as the window (plus limited transmit) permits."""
        while True:
            seq = self._next_seq()
            if seq is None:
                break
            if not self._window_allows(seq):
                break
            self._transmit(seq)

    def _next_seq(self) -> Optional[int]:
        """Next segment to send, or None if nothing is eligible.

        Base behaviour: the in-order stream at ``snd_nxt`` (which replays
        old data after an RTO rolled it back).
        """
        total = self.config.total_segments
        if total is not None and self.snd_nxt >= total:
            return None
        return self.snd_nxt

    def _window_allows(self, seq: int) -> bool:
        window = min(self.cwnd, float(self.config.receiver_window))
        usable = math.floor(window) + self._limited_transmit_allowance
        return seq < self.snd_una + usable

    def _transmit(self, seq: int) -> None:
        """Put segment ``seq`` on the wire and update send state."""
        # Anything below snd_max was transmitted before: a retransmission.
        is_retransmit = seq < self.snd_max
        if is_retransmit:
            self.stats.retransmits += 1
            self._ever_retransmitted.add(seq)
            if self.obs is not None:
                self.obs.on_retransmit(self)
        packet = Packet(
            "data",
            src=self.node.name,
            dst=self.peer,
            flow_id=self.flow_id,
            seq=seq,
            size_bytes=self.config.mss_bytes,
            ts_val=self.sim.now if self.config.timestamps else None,
            retransmit=is_retransmit,
        )
        self.stats.data_packets_sent += 1
        if self._timed_seq is None and not is_retransmit:
            self._timed_seq = seq
            self._timed_at = self.sim.now
        if seq == self.snd_nxt:
            self.snd_nxt += 1
        if self.snd_nxt > self.snd_max:
            self.snd_max = self.snd_nxt
        if self._timer_handle is None:
            self._restart_timer()
        self._on_segment_sent(seq, is_retransmit)
        self.inject(packet)

    def _on_segment_sent(self, seq: int, is_retransmit: bool) -> None:
        """Hook called after each transmission (subclasses)."""

    def _retransmit(self, seq: int) -> None:
        """Immediately retransmit ``seq`` outside the normal window loop."""
        self._ever_retransmitted.add(seq)
        self._transmit(seq)

    # ------------------------------------------------------------------
    # RTT sampling
    # ------------------------------------------------------------------
    def _take_rtt_sample(self, ack: int) -> None:
        if self._timed_seq is None or ack <= self._timed_seq:
            return
        if self._timed_seq not in self._ever_retransmitted:
            self.rto.on_sample(self.sim.now - self._timed_at)
            self.stats.rtt_samples += 1
        self._timed_seq = None

    @property
    def srtt(self) -> Optional[float]:
        return self.rto.srtt

    # ------------------------------------------------------------------
    # Retransmission timer
    # ------------------------------------------------------------------
    def _restart_timer(self) -> None:
        if self.flightsize() <= 0:
            self._cancel_timer()
            return
        deadline = self.sim.now + self.rto.rto
        self._timer_deadline = deadline
        self._timer_stamp = self.sim.reserve_seq()
        handle = self._timer_handle
        if handle is not None:
            if handle.time <= deadline:
                return  # live event fires no later; it re-arms itself
            handle.cancel()
        self._timer_handle = self.sim.schedule(
            deadline, self._rto_cb, label=self._label_rto,
            seq=self._timer_stamp,
        )

    def _cancel_timer(self) -> None:
        self._timer_deadline = None
        if self._timer_handle is not None:
            self._timer_handle.cancel()
            self._timer_handle = None

    def _on_rto_fire(self) -> None:
        """The heap event behind the lazily-extended RTO timer."""
        self._timer_handle = None
        deadline = self._timer_deadline
        if deadline is None:
            return
        if self.sim.now < deadline:
            # Extended since this event was armed: re-arm at the real
            # deadline, with the tie-break seq reserved at the restart so
            # same-time ordering matches an eagerly-rescheduled timer.
            self._timer_handle = self.sim.schedule(
                deadline, self._rto_cb, label=self._label_rto,
                seq=self._timer_stamp,
            )
            return
        self._on_timeout()

    def _has_more_data(self) -> bool:
        total = self.config.total_segments
        return total is None or self.snd_nxt < total

    def _on_timeout(self) -> None:
        """Retransmission timeout: slow-start restart with backoff."""
        self._timer_handle = None
        if self.flightsize() <= 0:
            return
        self.stats.timeouts += 1
        if self.obs is not None:
            self.obs.on_loss(self)
        self.rto.on_timeout()
        self.ssthresh = max(min(self.flightsize(), self.cwnd) / 2.0, 2.0)
        self.cwnd = 1.0
        self.dupacks = 0
        self.in_recovery = False
        self.recovery_point = -1
        self._limited_transmit_allowance = 0
        self._timed_seq = None
        self._on_timeout_hook()
        # Go back to the oldest hole; segments already received will be
        # re-ACKed by the receiver and the cumulative ACK jumps forward.
        self.snd_nxt = self.snd_una
        self._restart_timer()
        self._send_available()

    def _on_timeout_hook(self) -> None:
        """Extra timeout processing for subclasses (e.g. scoreboard)."""

    # ------------------------------------------------------------------
    # StatefulComponent protocol (see repro.checkpoint.state)
    # ------------------------------------------------------------------
    #: Wiring excluded from snapshots: the engine references, the probe,
    #: the live RTO heap handle, and the cached callback/labels.
    #: Subclasses with extra live handles extend this set.
    _SNAPSHOT_EXCLUDE = frozenset(
        {"sim", "node", "obs", "_timer_handle", "_rto_cb", "_label_rto", "_label_start"}
    )

    def snapshot_state(self) -> Dict[str, Any]:
        from repro.checkpoint.state import snapshot_object

        return snapshot_object(self, exclude=self._SNAPSHOT_EXCLUDE)

    def restore_state(self, state: Mapping[str, Any]) -> None:
        from repro.checkpoint.state import restore_object

        restore_object(self, state)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} flow={self.flow_id} cwnd={self.cwnd:.2f} "
            f"una={self.snd_una} nxt={self.snd_nxt} max={self.snd_max} "
            f"{'REC' if self.in_recovery else 'OPEN'}>"
        )

"""Classic TCP Reno.

All of Reno's behaviour lives in :class:`~repro.tcp.base.TcpSenderBase`
(fast retransmit at ``dupthresh`` duplicate ACKs, window inflation during
recovery, exit on the first new ACK, RTO slow-start restart).  This module
just gives it its public name.
"""

from __future__ import annotations

from repro.tcp.base import TcpSenderBase


class RenoSender(TcpSenderBase):
    """TCP Reno sender (fast retransmit + classic fast recovery)."""

    variant = "reno"

"""TCP-DOOR (Wang & Zhang [20]) — extension variant.

TCP-DOOR, aimed at MANETs, detects **out-of-order delivery events** and
responds by (1) temporarily disabling congestion responses for an
interval T1 after an OOO event, and (2) "instant recovery": if a
congestion response happened within the last RTT before the OOO event was
detected, the pre-response state is restored.

The original uses extra header options (a per-transmission packet
sequence number, and a DUPACK ordinal) so both data-path and ACK-path
reordering are visible.  In the simulator the sender observes ACK-path
reordering directly — every ACK's ``sent_at`` stamp is the receiver's
emission time, a strictly increasing sequence, so an ACK arriving with a
smaller stamp than an earlier-seen one is an out-of-order delivery.  This
carries exactly the information TCP-DOOR's ADSN option conveys.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.packet import Packet
from repro.tcp.newreno import NewRenoSender


class DoorSender(NewRenoSender):
    """NewReno with TCP-DOOR out-of-order detection and response.

    Args:
        t1_factor: T1 (the congestion-response-disable interval) as a
            multiple of the smoothed RTT.
    """

    variant = "door"

    def __init__(self, *args, t1_factor: float = 1.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.t1_factor = t1_factor
        self._max_ack_stamp = -1.0
        self._ooo_disable_until = -1.0
        #: (time, prior_cwnd, prior_ssthresh) of the last congestion response.
        self._last_response: Optional[Tuple[float, float, float]] = None
        self.stats.extra["ooo_events"] = 0
        self.stats.extra["instant_recoveries"] = 0

    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        if packet.is_ack:
            self._detect_ooo(packet)
        super().receive(packet)

    def _detect_ooo(self, packet: Packet) -> None:
        if packet.sent_at < self._max_ack_stamp:
            self.stats.extra["ooo_events"] += 1
            rtt = self.srtt if self.srtt is not None else 0.5
            self._ooo_disable_until = self.sim.now + self.t1_factor * rtt
            self._maybe_instant_recovery(rtt)
        else:
            self._max_ack_stamp = packet.sent_at

    def _maybe_instant_recovery(self, rtt: float) -> None:
        if self._last_response is None:
            return
        when, prior_cwnd, prior_ssthresh = self._last_response
        if self.sim.now - when <= rtt:
            self._last_response = None
            self.stats.extra["instant_recoveries"] += 1
            if self.in_recovery:
                self._exit_recovery()
            self.cwnd = max(prior_cwnd, 2.0)
            self.ssthresh = max(prior_ssthresh, 2.0)

    # ------------------------------------------------------------------
    @property
    def _congestion_response_disabled(self) -> bool:
        return self.sim.now < self._ooo_disable_until

    def _enter_fast_recovery(self, inflate: bool) -> None:
        if self._congestion_response_disabled:
            # Retransmit the suspected hole but keep the window intact.
            self._retransmit(self.snd_una)
            self.dupacks = 0
            return
        self._last_response = (self.sim.now, self.cwnd, self.ssthresh)
        super()._enter_fast_recovery(inflate)

    def _on_timeout(self) -> None:
        if self._congestion_response_disabled and self.flightsize() > 0:
            # Keep RTO and cwnd constant; retransmit and re-arm.
            self._timer_handle = None
            self.stats.timeouts += 1
            self._retransmit(self.snd_una)
            self._restart_timer()
            return
        if self.flightsize() > 0:
            self._last_response = (self.sim.now, self.cwnd, self.ssthresh)
        super()._on_timeout()

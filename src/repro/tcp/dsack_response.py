"""DSACK-based spurious-retransmit detection and dupthresh mitigation.

Implements the sender responses to DSACK notifications proposed by
Blanton & Allman [3] and summarized in Section 2 of the paper:

* every variant restores the congestion state held before a spurious fast
  retransmit (slow-starting back up to the prior window, per the paper's
  footnote 3), and additionally adjusts the duplicate-ACK threshold
  ``dupthresh`` according to a pluggable policy:

  - :class:`NoMitigationPolicy` — restore only ("DSACK-NM" in Figure 6);
  - :class:`IncrementByOnePolicy` — ``dupthresh += 1`` ("Inc by 1");
  - :class:`IncrementToAveragePolicy` — average of the current dupthresh
    and the length of the reordering event ("Inc by N");
  - :class:`EwmaPolicy` — exponentially weighted moving average of event
    lengths ("EWMA").

The *length of a reordering event* is measured as the number of duplicate
ACKs observed between the event's first duplicate ACK and the cumulative
ACK that filled the hole — the sender-side view of how far the reordered
segment was displaced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.net.packet import Packet
from repro.tcp.sack import SackSender


class DupthreshPolicy:
    """Strategy for adjusting dupthresh after a spurious fast retransmit."""

    name = "abstract"

    def adjust(self, current: int, reorder_len: int) -> int:
        raise NotImplementedError


class NoMitigationPolicy(DupthreshPolicy):
    """Leave dupthresh alone (DSACK-NM)."""

    name = "nm"

    def adjust(self, current: int, reorder_len: int) -> int:
        return current


class IncrementByOnePolicy(DupthreshPolicy):
    """dupthresh += constant (1 by default)."""

    name = "inc-by-1"

    def __init__(self, step: int = 1) -> None:
        self.step = step

    def adjust(self, current: int, reorder_len: int) -> int:
        return current + self.step


class IncrementToAveragePolicy(DupthreshPolicy):
    """dupthresh = ceil(mean(current, reorder event length)) ("Inc by N")."""

    name = "inc-by-n"

    def adjust(self, current: int, reorder_len: int) -> int:
        return math.ceil((current + reorder_len) / 2.0)


class EwmaPolicy(DupthreshPolicy):
    """dupthresh = EWMA of reordering event lengths."""

    name = "ewma"

    def __init__(self, gain: float = 0.25) -> None:
        if not 0 < gain <= 1:
            raise ValueError(f"gain must be in (0, 1], got {gain}")
        self.gain = gain
        self._ewma: Optional[float] = None

    def adjust(self, current: int, reorder_len: int) -> int:
        if self._ewma is None:
            self._ewma = float(current)
        self._ewma = (1 - self.gain) * self._ewma + self.gain * reorder_len
        return max(1, math.ceil(self._ewma))


@dataclass
class _RecoveryRecord:
    """What we need to undo a fast retransmit if it proves spurious."""

    trigger_seq: int
    prior_cwnd: float
    prior_ssthresh: float
    event_start_dupacks: int
    undone: bool = False


class DsackSender(SackSender):
    """TCP SACK with DSACK-driven undo and dupthresh mitigation.

    Args:
        policy: dupthresh adjustment policy (default: no mitigation).
        max_dupthresh: Safety cap on dupthresh growth.
    """

    variant = "dsack"

    def __init__(
        self,
        *args,
        policy: Optional[DupthreshPolicy] = None,
        max_dupthresh: int = 10_000,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.policy = policy if policy is not None else NoMitigationPolicy()
        self.max_dupthresh = max_dupthresh
        self._last_recovery: Optional[_RecoveryRecord] = None
        self._event_dupacks = 0
        self.stats.extra["dupthresh_final"] = float(self.dupthresh)
        self.stats.extra["undos"] = 0

    # ------------------------------------------------------------------
    def _on_dupack_event(self, packet: Packet) -> None:
        if self.dupacks == 1 and not self.in_recovery:
            self._event_dupacks = 0
        self._event_dupacks += 1
        if not self.in_recovery and self.config.limited_transmit:
            # Extended limited transmit [3]: one new segment per duplicate
            # ACK keeps the self-clock alive while dupthresh is large.
            self._limited_transmit_allowance = self.dupacks
        super()._on_dupack_event(packet)

    def _enter_fast_recovery(self, inflate: bool) -> None:
        self._last_recovery = _RecoveryRecord(
            trigger_seq=self.snd_una,
            prior_cwnd=self.cwnd,
            prior_ssthresh=self.ssthresh,
            event_start_dupacks=self._event_dupacks,
        )
        super()._enter_fast_recovery(inflate)

    # ------------------------------------------------------------------
    def _process_ack_options(self, packet: Packet) -> None:
        super()._process_ack_options(packet)
        if packet.dsack is not None:
            self._on_dsack(packet.dsack[0])

    def _on_dsack(self, dup_seq: int) -> None:
        record = self._last_recovery
        if record is None or record.undone or dup_seq != record.trigger_seq:
            return
        record.undone = True
        self.stats.spurious_retransmits_detected += 1
        self.stats.extra["undos"] += 1
        # Undo the window reduction: raise ssthresh to the prior cwnd so
        # slow start climbs back to it (footnote 3: no instantaneous jump,
        # to avoid injecting sudden bursts).
        halved_cwnd = self.cwnd
        self.ssthresh = max(record.prior_cwnd, 2.0)
        if self.in_recovery:
            self._exit_recovery()
        self.cwnd = max(min(halved_cwnd, self.ssthresh), 2.0)
        # Mitigate: adapt dupthresh to the observed reordering length.
        reorder_len = max(self._event_dupacks, self.dupthresh)
        new_dupthresh = self.policy.adjust(self.dupthresh, reorder_len)
        self.dupthresh = max(1, min(self.max_dupthresh, new_dupthresh))
        self.stats.extra["dupthresh_final"] = float(self.dupthresh)
        self._send_available()

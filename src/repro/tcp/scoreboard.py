"""SACK scoreboard (RFC 3517 style, segment granularity).

Tracks which outstanding segments the receiver has reported via SACK
blocks, which segments the sender has deduced to be lost, and which it has
retransmitted — enough to compute the ``pipe`` estimate that drives SACK
loss recovery.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import List, Optional, Sequence, Tuple

SackBlock = Tuple[int, int]


class Scoreboard:
    """Per-connection record of SACKed / retransmitted segments."""

    def __init__(self) -> None:
        self._sacked_sorted: List[int] = []
        self._sacked: set[int] = set()
        self._retransmitted: set[int] = set()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def record_blocks(
        self, blocks: Optional[Sequence[SackBlock]], snd_una: int
    ) -> int:
        """Absorb SACK blocks from an ACK; returns how many segments are new."""
        if not blocks:
            return 0
        newly = 0
        for start, end in blocks:
            for seq in range(max(start, snd_una), end):
                if seq not in self._sacked:
                    self._sacked.add(seq)
                    insort(self._sacked_sorted, seq)
                    newly += 1
        return newly

    def advance(self, snd_una: int) -> None:
        """Forget all state below the cumulative ACK point."""
        if self._sacked_sorted and self._sacked_sorted[0] < snd_una:
            cut = bisect_right(self._sacked_sorted, snd_una - 1)
            for seq in self._sacked_sorted[:cut]:
                self._sacked.discard(seq)
            del self._sacked_sorted[:cut]
        if self._retransmitted:
            self._retransmitted = {
                seq for seq in self._retransmitted if seq >= snd_una
            }

    def mark_retransmitted(self, seq: int) -> None:
        self._retransmitted.add(seq)

    def clear_retransmitted(self) -> None:
        """Forget retransmission marks (after an RTO restarts recovery)."""
        self._retransmitted.clear()

    def reset(self) -> None:
        self._sacked_sorted.clear()
        self._sacked.clear()
        self._retransmitted.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_sacked(self, seq: int) -> bool:
        return seq in self._sacked

    def was_retransmitted(self, seq: int) -> bool:
        return seq in self._retransmitted

    def sacked_above(self, seq: int) -> int:
        """Number of SACKed segments with sequence number > ``seq``."""
        return len(self._sacked_sorted) - bisect_right(self._sacked_sorted, seq)

    def sacked_count(self) -> int:
        return len(self._sacked_sorted)

    def highest_sacked(self) -> Optional[int]:
        return self._sacked_sorted[-1] if self._sacked_sorted else None

    def is_lost(self, seq: int, dupthresh: int) -> bool:
        """RFC 3517 IsLost at segment granularity.

        A segment is deduced lost when at least ``dupthresh`` SACKed
        segments lie above it.
        """
        return not self.is_sacked(seq) and self.sacked_above(seq) >= dupthresh

    def next_lost_to_retransmit(
        self, start: int, end: int, dupthresh: int
    ) -> Optional[int]:
        """Smallest lost, un-SACKed, un-retransmitted segment in [start, end)."""
        highest = self.highest_sacked()
        if highest is None:
            return None
        # No segment at or above highest_sacked can satisfy IsLost.
        scan_end = min(end, highest)
        for seq in range(start, scan_end):
            if (
                seq not in self._sacked
                and seq not in self._retransmitted
                and self.sacked_above(seq) >= dupthresh
            ):
                return seq
        return None

    def pipe(self, snd_una: int, snd_max: int, dupthresh: int) -> int:
        """RFC 3517 pipe: estimated segments currently in the network."""
        total = 0
        for seq in range(snd_una, snd_max):
            if seq in self._sacked:
                continue
            if not self.is_lost(seq, dupthresh):
                total += 1
            if seq in self._retransmitted:
                total += 1
        return total

    def __repr__(self) -> str:
        return (
            f"<Scoreboard sacked={len(self._sacked_sorted)} "
            f"retx={len(self._retransmitted)}>"
        )

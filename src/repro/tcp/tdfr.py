"""Time-delayed fast recovery (TD-FR).

First proposed by Paxson [18] and analysed by Blanton & Allman [3]; the
paper describes it as: *"It sets a timer when the first DUPACK is
observed.  If DUPACKs persist longer than a threshold, then fast
retransmit is entered and the congestion window is reduced.  The timer
threshold is max(RTT/2, DT), where DT is the difference between the
arrival of the first and third DUPACK."*

Until the third duplicate ACK arrives the threshold is unknown, so the
decision point is evaluated when the third DUPACK lands; if the deadline
``t1 + max(RTT/2, t3 - t1)`` is already past, fast retransmit fires
immediately, otherwise a timer is armed for the remainder.  A cumulative
ACK advancing past the hole disarms everything.
"""

from __future__ import annotations

from typing import Optional

from repro.net.packet import Packet
from repro.tcp.newreno import NewRenoSender


class TdfrSender(NewRenoSender):
    """NewReno with time-delayed fast recovery."""

    variant = "tdfr"

    #: RTT fallback used before the first RTT sample exists.
    DEFAULT_RTT = 0.5

    #: The fast-recovery timer is a live heap handle, like the base RTO.
    _SNAPSHOT_EXCLUDE = NewRenoSender._SNAPSHOT_EXCLUDE | {
        "_fr_timer",
        "_label_tdfr",
    }

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._first_dup_time: Optional[float] = None
        self._third_dup_time: Optional[float] = None
        self._armed_una: Optional[int] = None
        self._fr_timer = None
        self._label_tdfr = f"tdfr f{self.flow_id}"
        self.stats.extra["tdfr_delayed_triggers"] = 0
        self.stats.extra["tdfr_cancelled_triggers"] = 0

    # ------------------------------------------------------------------
    def _on_dupack_event(self, packet: Packet) -> None:
        if self.in_recovery:
            self.cwnd += 1  # NewReno window inflation
            return
        if self.dupacks == 1:
            self._first_dup_time = self.sim.now
            self._third_dup_time = None
        if self.config.limited_transmit and self.dupacks <= 2:
            self._limited_transmit_allowance = min(self.dupacks, 2)
        if self.dupacks == 3 and self._first_dup_time is not None:
            # Blanton & Allman's reading: when the third DUPACK arrives,
            # wait a further max(RTT/2, DT) before retransmitting, DT
            # being the spread between the first and third DUPACKs.
            self._third_dup_time = self.sim.now
            rtt = self.srtt if self.srtt is not None else self.DEFAULT_RTT
            threshold = max(rtt / 2.0, self._third_dup_time - self._first_dup_time)
            self._arm(self._third_dup_time + threshold)

    def _arm(self, deadline: float) -> None:
        self._disarm()
        self._armed_una = self.snd_una
        self._fr_timer = self.sim.schedule(
            deadline, self._on_fr_timer, label=self._label_tdfr
        )

    def _disarm(self) -> None:
        if self._fr_timer is not None:
            self._fr_timer.cancel()
            self._fr_timer = None
        self._armed_una = None

    def _on_fr_timer(self) -> None:
        self._fr_timer = None
        if self.in_recovery or self._armed_una != self.snd_una or self.dupacks < 3:
            # The hole filled (or state changed) before the deadline.
            self.stats.extra["tdfr_cancelled_triggers"] += 1
            return
        self.stats.extra["tdfr_delayed_triggers"] += 1
        self._trigger()
        self._send_available()

    def _trigger(self) -> None:
        self._disarm()
        self._enter_fast_recovery(inflate=True)

    # ------------------------------------------------------------------
    def _after_new_ack(self, packet: Packet, newly_acked: int) -> None:
        super()._after_new_ack(packet, newly_acked)
        # Cumulative progress: the suspected hole was filled.
        self._disarm()
        if not self.in_recovery:
            self._first_dup_time = None
            self._third_dup_time = None

    def _on_timeout_hook(self) -> None:
        super()._on_timeout_hook()
        self._disarm()
        self._first_dup_time = None
        self._third_dup_time = None

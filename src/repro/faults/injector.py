"""Arming fault schedules on a live simulation.

An :class:`Injector` binds a :class:`~repro.faults.schedule.FaultSchedule`
to a :class:`~repro.net.network.Network`: :meth:`Injector.arm` resolves
every event's target (link or routing policy), schedules the state
changes on the simulator, and records what it applied.  Resolution
happens eagerly at arm time so a schedule naming a nonexistent link or a
policy without blackout support fails immediately with a
:class:`FaultTargetError` instead of mid-run.

Pass a :class:`~repro.obs.monitors.FaultTimelineMonitor` (or anything
with the same ``record`` method) as ``monitor`` to get a trace of the
applied faults alongside the packet trace — most conveniently via
:meth:`repro.obs.Instrumentation.fault_timeline`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from repro.faults.schedule import (
    AckLoss,
    DelaySpike,
    FaultEvent,
    FaultSchedule,
    LinkDown,
    LinkUp,
    PathBlackout,
)
from repro.sim.errors import SimulationError

if TYPE_CHECKING:
    from repro.net.link import Link
    from repro.net.network import Network


class FaultTargetError(SimulationError):
    """A fault event names a target the network cannot provide."""


class Injector:
    """Schedules a fault schedule's state changes on a network.

    Args:
        network: The network to break.
        schedule: What to break and when.
        monitor: Optional fault-timeline recorder (duck-typed:
            ``monitor.record(time, kind, target, detail)``).

    Attributes:
        applied: ``(time, event)`` pairs in application order, filled in
            as the simulation dispatches the armed events.
    """

    def __init__(
        self,
        network: "Network",
        schedule: FaultSchedule,
        monitor: Optional[Any] = None,
    ) -> None:
        self.network = network
        self.schedule = schedule
        self.monitor = monitor
        self.applied: List[Tuple[float, FaultEvent]] = []
        self._armed = False

    # ------------------------------------------------------------------
    def arm(self) -> "Injector":
        """Validate targets and schedule every event; returns self."""
        if self._armed:
            raise SimulationError("Injector.arm() called twice")
        for event in self.schedule:
            self._validate_target(event)
        for event in self.schedule:
            self._schedule(event)
        self._armed = True
        return self

    # ------------------------------------------------------------------
    # Target resolution
    # ------------------------------------------------------------------
    def _link(self, src: str, dst: str) -> "Link":
        try:
            return self.network.link(src, dst)
        except SimulationError as exc:
            raise FaultTargetError(
                f"fault schedule names unknown link {src}->{dst}"
            ) from exc

    def _policy(self, event: PathBlackout) -> Any:
        try:
            node = self.network.node(event.origin)
        except SimulationError as exc:
            raise FaultTargetError(
                f"fault schedule names unknown node {event.origin!r}"
            ) from exc
        policy = node.path_policy
        if policy is None:
            raise FaultTargetError(
                f"node {event.origin!r} has no path policy to blackout"
            )
        if not hasattr(policy, "disable_path") or not hasattr(
            policy, "enable_path"
        ):
            raise FaultTargetError(
                f"path policy {type(policy).__name__} on {event.origin!r} "
                "does not support blackouts (needs disable_path/enable_path)"
            )
        return policy

    def _validate_target(self, event: FaultEvent) -> None:
        if isinstance(event, (LinkDown, LinkUp, DelaySpike, AckLoss)):
            self._link(event.src, event.dst)
        elif isinstance(event, PathBlackout):
            self._policy(event)
        else:
            raise FaultTargetError(
                f"injector cannot apply event kind {event.kind!r}"
            )

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def _schedule(self, event: FaultEvent) -> None:
        sim = self.network.sim
        label = f"fault {event.kind}"
        if isinstance(event, LinkDown):
            link = self._link(event.src, event.dst)
            sim.schedule(
                event.time,
                lambda: self._apply(
                    event, f"link {link.name}", "down",
                    lambda: link.set_up(False, flush=event.flush),
                ),
                label=label,
            )
        elif isinstance(event, LinkUp):
            link = self._link(event.src, event.dst)
            sim.schedule(
                event.time,
                lambda: self._apply(
                    event, f"link {link.name}", "up",
                    lambda: link.set_up(True),
                ),
                label=label,
            )
        elif isinstance(event, PathBlackout):
            policy = self._policy(event)
            target = f"path[{event.path_index}] {event.origin}->{event.dst}"
            sim.schedule(
                event.time,
                lambda: self._apply(
                    event, target, "blackout",
                    lambda: policy.disable_path(event.dst, event.path_index),
                ),
                label=label,
            )
            sim.schedule(
                event.end,
                lambda: self._apply(
                    event, target, "restored",
                    lambda: policy.enable_path(event.dst, event.path_index),
                ),
                label=label,
            )
        elif isinstance(event, DelaySpike):
            link = self._link(event.src, event.dst)
            sim.schedule(
                event.time,
                lambda: self._apply(
                    event, f"link {link.name}", f"delay x{event.factor:g}",
                    lambda: setattr(link, "delay_scale", event.factor),
                ),
                label=label,
            )
            sim.schedule(
                event.end,
                lambda: self._apply(
                    event, f"link {link.name}", "delay restored",
                    lambda: setattr(link, "delay_scale", 1.0),
                ),
                label=label,
            )
        elif isinstance(event, AckLoss):
            link = self._link(event.src, event.dst)
            sim.schedule(
                event.time,
                lambda: self._apply(
                    event, f"link {link.name}", f"loss p={event.rate:g}",
                    lambda: setattr(link, "fault_loss_rate", event.rate),
                ),
                label=label,
            )
            sim.schedule(
                event.end,
                lambda: self._apply(
                    event, f"link {link.name}", "loss cleared",
                    lambda: setattr(link, "fault_loss_rate", 0.0),
                ),
                label=label,
            )

    def _apply(self, event, target: str, detail: str, action) -> None:
        action()
        self.applied.append((self.network.sim.now, event))
        if self.monitor is not None:
            self.monitor.record(self.network.sim.now, event.kind, target, detail)


def inject(
    network: "Network",
    schedule: FaultSchedule,
    monitor: Optional[Any] = None,
) -> Injector:
    """One-call convenience: build an :class:`Injector` and arm it."""
    return Injector(network, schedule, monitor=monitor).arm()

"""Declarative fault schedules.

A :class:`FaultSchedule` is a time-ordered list of :class:`FaultEvent`
records describing *when the network breaks and how*: links going down
and up, multipath blackouts, delay spikes, and reverse-path loss
windows.  Schedules are plain data — every event round-trips through
JSON (:meth:`FaultSchedule.to_jsonable` / :meth:`FaultSchedule.from_jsonable`)
so a schedule can ride inside a :class:`~repro.exec.spec.SweepCell`'s
parameters, cross a process boundary, and participate in the result
cache's content hash.

The paper's extreme scenarios map directly onto these events:

* route flaps / MANET route recomputation — :class:`PathBlackout`
  intervals forcing the routing policy onto surviving paths;
* "all packets within a window dropped" regimes of the Section 4
  extreme-loss analysis — :class:`LinkDown`/:class:`LinkUp` pairs;
* the RTT jump after a route change — :class:`DelaySpike`;
* asymmetric ACK-path outages — :class:`AckLoss`.

Arming a schedule on a live simulation is the
:class:`~repro.faults.injector.Injector`'s job.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, ClassVar, Dict, Iterable, List, Sequence, Tuple, Type


class FaultScheduleError(ValueError):
    """A structurally invalid fault event or schedule."""


#: Event-kind tag -> event class, for JSON round-tripping.
_EVENT_KINDS: Dict[str, Type["FaultEvent"]] = {}


def fault_event(kind: str):
    """Class decorator registering a :class:`FaultEvent` subclass."""

    def register(cls: Type["FaultEvent"]) -> Type["FaultEvent"]:
        cls.kind = kind
        _EVENT_KINDS[kind] = cls
        return cls

    return register


def registered_event_kinds() -> Dict[str, Type["FaultEvent"]]:
    """A copy of the kind registry (introspection/tests)."""
    return dict(_EVENT_KINDS)


@dataclass(frozen=True)
class FaultEvent:
    """Base class: something that happens to the network at ``time``."""

    kind: ClassVar[str] = "abstract"

    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise FaultScheduleError(
                f"{type(self).__name__}.time must be >= 0, got {self.time}"
            )
        self.validate()

    def validate(self) -> None:
        """Subclass hook for field validation (raise FaultScheduleError)."""

    # -- JSON round-trip ------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        return {"kind": self.kind, **asdict(self)}

    @staticmethod
    def from_jsonable(data: Dict[str, Any]) -> "FaultEvent":
        blob = dict(data)
        kind = blob.pop("kind", None)
        cls = _EVENT_KINDS.get(kind)
        if cls is None:
            raise FaultScheduleError(
                f"unknown fault event kind {kind!r} "
                f"(known: {sorted(_EVENT_KINDS)})"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(blob) - known
        if unknown:
            raise FaultScheduleError(
                f"{kind!r} event has unknown fields {sorted(unknown)}"
            )
        try:
            return cls(**blob)
        except TypeError as exc:
            raise FaultScheduleError(f"bad {kind!r} event: {exc}") from exc


@dataclass(frozen=True)
class _WindowedEvent(FaultEvent):
    """A fault active over ``[time, time + duration)``."""

    duration: float = 0.0

    @property
    def end(self) -> float:
        return self.time + self.duration

    def validate(self) -> None:
        if self.duration <= 0:
            raise FaultScheduleError(
                f"{type(self).__name__}.duration must be positive, "
                f"got {self.duration}"
            )


@fault_event("link-down")
@dataclass(frozen=True)
class LinkDown(FaultEvent):
    """Take link ``src -> dst`` down at ``time``.

    ``flush=True`` discards packets buffered in the link's queue (a
    failed line card); ``flush=False`` holds them until a later
    :class:`LinkUp` (a frozen interface).  Arrivals while down are
    dropped and counted in ``link.fault_drops``.
    """

    src: str = ""
    dst: str = ""
    flush: bool = False

    def validate(self) -> None:
        if not self.src or not self.dst:
            raise FaultScheduleError("LinkDown needs non-empty src and dst")


@fault_event("link-up")
@dataclass(frozen=True)
class LinkUp(FaultEvent):
    """Restore link ``src -> dst`` at ``time`` (resumes any held queue)."""

    src: str = ""
    dst: str = ""

    def validate(self) -> None:
        if not self.src or not self.dst:
            raise FaultScheduleError("LinkUp needs non-empty src and dst")


@fault_event("path-blackout")
@dataclass(frozen=True)
class PathBlackout(_WindowedEvent):
    """The routing policy on ``origin`` loses path ``path_index`` to ``dst``.

    For the window's duration the policy (an
    :class:`~repro.routing.multipath.EpsilonMultipathPolicy` or a
    :class:`~repro.routing.flap.RouteFlapper`) must reroute the path's
    traffic onto the survivors; at ``time + duration`` the path returns
    to service.
    """

    origin: str = ""
    dst: str = ""
    path_index: int = 0

    def validate(self) -> None:
        super().validate()
        if not self.origin or not self.dst:
            raise FaultScheduleError("PathBlackout needs origin and dst")
        if self.path_index < 0:
            raise FaultScheduleError(
                f"path_index must be >= 0, got {self.path_index}"
            )


@fault_event("delay-spike")
@dataclass(frozen=True)
class DelaySpike(_WindowedEvent):
    """Multiply link ``src -> dst``'s propagation delay by ``factor``.

    The transient RTT inflation a route change produces (paper §1); the
    scale reverts to 1.0 when the window ends.  Overlapping spikes on
    one link don't stack — the most recent event wins.
    """

    src: str = ""
    dst: str = ""
    factor: float = 1.0

    def validate(self) -> None:
        super().validate()
        if not self.src or not self.dst:
            raise FaultScheduleError("DelaySpike needs non-empty src and dst")
        if self.factor <= 0:
            raise FaultScheduleError(
                f"factor must be positive, got {self.factor}"
            )


@fault_event("ack-loss")
@dataclass(frozen=True)
class AckLoss(_WindowedEvent):
    """Bernoulli-drop arrivals on link ``src -> dst`` for the window.

    Intended for the *reverse* (ACK) direction of a flow — the
    asymmetric outages that starve a sender of feedback while its data
    keeps arriving.  ``rate=1.0`` is a total blackout of the direction.
    """

    src: str = ""
    dst: str = ""
    rate: float = 1.0

    def validate(self) -> None:
        super().validate()
        if not self.src or not self.dst:
            raise FaultScheduleError("AckLoss needs non-empty src and dst")
        if not 0.0 < self.rate <= 1.0:
            raise FaultScheduleError(
                f"rate must be in (0, 1], got {self.rate}"
            )


class FaultSchedule:
    """An immutable, time-ordered collection of fault events.

    Construction sorts events by ``(time, registration order)`` so the
    injector arms them deterministically.  Schedules compare by value
    and survive a JSON round-trip unchanged, which is what lets a
    schedule live inside a sweep cell's cache key.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        ordered = sorted(
            enumerate(events), key=lambda pair: (pair[1].time, pair[0])
        )
        self.events: Tuple[FaultEvent, ...] = tuple(
            event for _, event in ordered
        )
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise FaultScheduleError(
                    f"FaultSchedule takes FaultEvent instances, got {event!r}"
                )

    # -- collection protocol -------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultSchedule) and self.events == other.events

    def __hash__(self) -> int:
        return hash(self.events)

    def __repr__(self) -> str:
        kinds = [event.kind for event in self.events]
        return f"<FaultSchedule n={len(self.events)} kinds={kinds}>"

    @property
    def horizon(self) -> float:
        """Time of the last scheduled state change (0.0 when empty)."""
        horizon = 0.0
        for event in self.events:
            horizon = max(horizon, getattr(event, "end", event.time))
        return horizon

    def extend(self, events: Iterable[FaultEvent]) -> "FaultSchedule":
        """A new schedule with ``events`` merged in."""
        return FaultSchedule([*self.events, *events])

    # -- JSON round-trip ------------------------------------------------
    def to_jsonable(self) -> List[Dict[str, Any]]:
        return [event.to_jsonable() for event in self.events]

    @classmethod
    def from_jsonable(cls, data: Sequence[Dict[str, Any]]) -> "FaultSchedule":
        return cls(FaultEvent.from_jsonable(blob) for blob in data)

    # -- convenience builders ------------------------------------------
    @classmethod
    def link_outage(
        cls,
        src: str,
        dst: str,
        start: float,
        duration: float,
        flush: bool = False,
        duplex: bool = False,
    ) -> "FaultSchedule":
        """A single down/up window on one link (both directions if duplex)."""
        if duration <= 0:
            raise FaultScheduleError(
                f"outage duration must be positive, got {duration}"
            )
        events: List[FaultEvent] = [
            LinkDown(time=start, src=src, dst=dst, flush=flush),
            LinkUp(time=start + duration, src=src, dst=dst),
        ]
        if duplex:
            events.append(LinkDown(time=start, src=dst, dst=src, flush=flush))
            events.append(LinkUp(time=start + duration, src=dst, dst=src))
        return cls(events)

    @classmethod
    def periodic_blackouts(
        cls,
        origin: str,
        dst: str,
        path_index: int,
        period: float,
        duration: float,
        until: float,
        first: float | None = None,
    ) -> "FaultSchedule":
        """Blackout ``path_index`` for ``duration`` every ``period`` seconds."""
        if period <= 0:
            raise FaultScheduleError(f"period must be positive, got {period}")
        events: List[FaultEvent] = []
        start = period if first is None else first
        while start + duration <= until:
            events.append(
                PathBlackout(
                    time=start,
                    duration=duration,
                    origin=origin,
                    dst=dst,
                    path_index=path_index,
                )
            )
            start += period
        return cls(events)

"""Fault injection: declarative schedules of network failures.

The simulator's loss models express *statistical* damage; this package
expresses *structural* damage — scheduled link outages, multipath
blackouts, delay spikes, and reverse-path loss windows — so experiments
can script the route-flap and extreme-loss regimes the paper reasons
about and watch each TCP variant degrade (or not).

* :mod:`repro.faults.schedule` — :class:`FaultSchedule` and the
  :class:`FaultEvent` family (:class:`LinkDown`, :class:`LinkUp`,
  :class:`PathBlackout`, :class:`DelaySpike`, :class:`AckLoss`),
  JSON-round-trippable plain data;
* :mod:`repro.faults.injector` — :class:`Injector`/:func:`inject`,
  arming a schedule on a live :class:`~repro.net.network.Network`.

See ``docs/FAULTS.md`` for semantics and examples.
"""

from repro.faults.injector import FaultTargetError, Injector, inject
from repro.faults.schedule import (
    AckLoss,
    DelaySpike,
    FaultEvent,
    FaultSchedule,
    FaultScheduleError,
    LinkDown,
    LinkUp,
    PathBlackout,
    fault_event,
    registered_event_kinds,
)

__all__ = [
    "AckLoss",
    "DelaySpike",
    "FaultEvent",
    "FaultSchedule",
    "FaultScheduleError",
    "FaultTargetError",
    "Injector",
    "LinkDown",
    "LinkUp",
    "PathBlackout",
    "fault_event",
    "inject",
    "registered_event_kinds",
]

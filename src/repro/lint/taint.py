"""Interprocedural determinism taint analysis (REP11x family).

Sources are the nondeterminism primitives (global-``random`` draws,
wall-clock reads, ``os.urandom``/``secrets``, random UUIDs, ``id()``,
``hash()``, set iteration order).  Dict iteration is *not* a source:
insertion order is guaranteed and the tree relies on it.

Taint propagates along resolved call edges through return values
(:class:`repro.lint.callgraph.CallGraph`) and is reported at two sink
kinds:

* **REP111 / taint-state** — a ``self.<attr> = ...`` write in a
  simulation-state package whose value derives from a source, directly
  or through any chain of calls.  The finding carries the call path
  (``via stream() at sim/rng.py:50``) so the laundering route is
  visible in the report.
* **REP112 / taint-schedule** — a tainted event time or delay passed to
  ``schedule``/``schedule_in``/``post``/``post_in``, in any module:
  once a tainted timestamp enters the event heap the whole dispatch
  order is poisoned, so this sink has no package scoping.

Exemptions mirror the shallow rules: taint is never *generated* in a
module allowlisted for that source kind (``sim/rng.py`` for
module-random — its seeded streams are the sanctioned RNG; the
engine/profiler/executor for wallclock), and a source whose line
carries an ``allow-<kind>`` pragma (or the matching shallow-rule slug)
is treated as blessed at the origin rather than re-flagged at every
downstream sink.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.lint.callgraph import CallGraph
from repro.lint.findings import Finding
from repro.lint.project import (
    SOURCE_KINDS,
    FunctionSummary,
    Influence,
    ModuleSummary,
)

__all__ = [
    "STATE_RULE_CODE",
    "STATE_RULE_SLUG",
    "TIME_RULE_CODE",
    "TIME_RULE_SLUG",
    "analyze_taint",
    "compute_return_taint",
]

STATE_RULE_SLUG = "taint-state"
STATE_RULE_CODE = "REP111"
TIME_RULE_SLUG = "taint-schedule"
TIME_RULE_CODE = "REP112"

#: Packages whose ``self.*`` attributes are simulation state.
_STATE_PREFIXES = (
    "sim/", "net/", "tcp/", "routing/", "app/", "core/", "obs/",
    "scenarios/", "faults/", "topologies/",
)

#: Source kind -> module rels where that kind is legitimate at origin
#: (kept in sync with the shallow-rule allowlists in rules.py).
_ORIGIN_ALLOWLIST: Dict[str, Tuple[str, ...]] = {
    "module-random": ("sim/rng.py",),
    "wallclock": ("sim/engine.py", "sim/profile.py", "exec/runner.py"),
}

#: Source kind -> additional pragma slugs (beyond the kind itself) that
#: bless the source at its origin line.
_ORIGIN_PRAGMA_ALIASES: Dict[str, Tuple[str, ...]] = {
    "set-order": ("set-iteration",),
}

#: kind -> chain of hop strings back to the ultimate source.
TaintMap = Dict[str, Tuple[str, ...]]


def _source_blessed(summary: ModuleSummary, kind: str, line: int) -> bool:
    """True when a source occurrence must not generate taint."""
    if summary.rel in _ORIGIN_ALLOWLIST.get(kind, ()):
        return True
    slugs = (kind,) + _ORIGIN_PRAGMA_ALIASES.get(kind, ())
    for candidate in (line, line - 1):
        for slug, _reason in summary.pragmas.get(candidate, ()):
            if slug in slugs:
                return True
    return False


def _source_hop(summary: ModuleSummary, kind: str, line: int) -> str:
    return f"{SOURCE_KINDS[kind]} at {summary.rel}:{line}"


def _callee_hop(graph: CallGraph, callee: str) -> str:
    fn = graph.functions[callee]
    rel = graph.owner[callee].rel
    return f"{fn.qualname}() at {rel}:{fn.line}"


def compute_return_taint(graph: CallGraph) -> Dict[str, TaintMap]:
    """Fixpoint: which source kinds can a function's return carry?

    Each function keeps the *first* chain discovered per kind (chains
    only ever get appended, never replaced), so the fixpoint terminates
    in at most ``|kinds|`` productive updates per function and the
    reported paths are stable across runs.
    """
    taint: Dict[str, TaintMap] = {fid: {} for fid in graph.functions}
    for fid, fn in graph.functions.items():
        summary = graph.owner[fid]
        for kind, line, _col in fn.returns.sources:
            if kind not in taint[fid] and not _source_blessed(
                summary, kind, line
            ):
                taint[fid][kind] = (_source_hop(summary, kind, line),)

    changed = True
    while changed:
        changed = False
        for fid, fn in graph.functions.items():
            summary = graph.owner[fid]
            for raw, _line, _col in fn.returns.calls:
                callee = graph.resolve_call(summary, fn, raw)
                if callee is None:
                    continue
                for kind, chain in taint[callee].items():
                    if kind not in taint[fid]:
                        taint[fid][kind] = (
                            _callee_hop(graph, callee),
                        ) + chain
                        changed = True
    return taint


def _tainted_kinds(
    graph: CallGraph,
    summary: ModuleSummary,
    fn: FunctionSummary,
    influence: Influence,
    return_taint: Mapping[str, TaintMap],
) -> List[Tuple[str, Tuple[str, ...]]]:
    """(kind, chain) rows feeding one influence, first chain per kind."""
    found: Dict[str, Tuple[str, ...]] = {}
    for kind, line, _col in influence.sources:
        if kind not in found and not _source_blessed(summary, kind, line):
            found[kind] = (_source_hop(summary, kind, line),)
    for raw, _line, _col in influence.calls:
        callee = graph.resolve_call(summary, fn, raw)
        if callee is None:
            continue
        for kind, chain in return_taint.get(callee, {}).items():
            if kind not in found:
                found[kind] = (_callee_hop(graph, callee),) + chain
    return sorted(found.items())


def _sink_exempt(summary: ModuleSummary, kind: str) -> bool:
    """A kind allowlisted for the sink's own module stays silent there
    (the engine writing wallclock profiling stats into its state)."""
    return summary.rel in _ORIGIN_ALLOWLIST.get(kind, ())


def analyze_taint(graph: CallGraph) -> List[Finding]:
    """Run the REP111/REP112 sinks over a resolved call graph."""
    return_taint = compute_return_taint(graph)
    findings: List[Finding] = []

    for fid in sorted(graph.functions):
        fn = graph.functions[fid]
        summary = graph.owner[fid]

        if summary.rel.startswith(_STATE_PREFIXES):
            for attr, line, col, influence in fn.state_writes:
                for kind, chain in _tainted_kinds(
                    graph, summary, fn, influence, return_taint
                ):
                    if _sink_exempt(summary, kind):
                        continue
                    findings.append(
                        Finding(
                            rule=STATE_RULE_SLUG,
                            code=STATE_RULE_CODE,
                            path=summary.path,
                            line=line,
                            col=col,
                            message=(
                                f"simulation state 'self.{attr}' (in "
                                f"{fn.qualname}) is tainted by "
                                f"{SOURCE_KINDS[kind]}; route it through "
                                "the seeded RngRegistry / Simulator.now"
                            ),
                            trace=chain,
                        )
                    )

        for name, line, col, influence in fn.time_args:
            for kind, chain in _tainted_kinds(
                graph, summary, fn, influence, return_taint
            ):
                if _sink_exempt(summary, kind):
                    continue
                findings.append(
                    Finding(
                        rule=TIME_RULE_SLUG,
                        code=TIME_RULE_CODE,
                        path=summary.path,
                        line=line,
                        col=col,
                        message=(
                            f"event time passed to {name}() in "
                            f"{fn.qualname} derives from "
                            f"{SOURCE_KINDS[kind]}; event order becomes "
                            "host-dependent"
                        ),
                        trace=chain,
                    )
                )

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings

"""The rule catalog: determinism, hot-path discipline, and hygiene.

Each rule is a small AST pass over one parsed module.  Rules are
project-specific on purpose — they encode invariants of *this*
reproduction (the seeded-RNG discipline of ``sim/rng.py``, the PR 4
zero-allocation dispatch contract, the Table 1/2 sender invariants) that
a generic linter cannot know.  ``docs/STATIC_ANALYSIS.md`` documents
every rule with its rationale and examples; keep it in sync when adding
one.

A rule sees a :class:`~repro.lint.engine.ParsedModule` and yields
:class:`~repro.lint.findings.Finding` objects.  Scoping (which files a
rule applies to) keys off the module path *relative to the repro
package* (``mod.rel``), so fixture tests can exercise any scope by
passing ``rel=...`` to :func:`~repro.lint.engine.lint_source`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding

__all__ = [
    "DEEP_RULES",
    "DeepRuleInfo",
    "RULES",
    "Rule",
    "deep_rule_by_slug",
    "rule_by_slug",
]


class Rule:
    """Base class: one named, scoped AST check."""

    #: Slug used in pragmas (``# lint: allow-<slug>(reason)``).
    slug: str = ""
    #: Stable code (``REP1xx`` determinism, ``REP2xx`` hot path,
    #: ``REP3xx`` hygiene).
    code: str = ""
    #: One-line description shown by ``repro lint --list-rules``.
    summary: str = ""

    def applies(self, mod: "ParsedModule") -> bool:  # noqa: F821
        return True

    def check(self, mod: "ParsedModule") -> Iterator[Finding]:  # noqa: F821
        raise NotImplementedError

    def finding(
        self,
        mod: "ParsedModule",  # noqa: F821
        node: ast.AST,
        message: str,
        anchor: Optional[ast.AST] = None,
    ) -> Finding:
        """Build a finding at ``node``.

        ``anchor`` (default: ``node`` itself) is the definition the
        finding belongs to; when it is a decorated ``def``/``class``,
        a pragma above the first decorator — or on/above the ``def``
        line itself — also suppresses the finding, so callers never
        have to thread a comment between decorators and signature.
        """
        return Finding(
            rule=self.slug,
            code=self.code,
            path=mod.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            suppress_lines=_anchor_lines(anchor if anchor is not None else node),
        )


def _anchor_lines(node: ast.AST) -> Tuple[int, ...]:
    """Extra pragma-anchor lines for a decorated definition: the ``def``
    line, the line above it (below the last decorator), and the line
    above the first decorator."""
    decorators = getattr(node, "decorator_list", None)
    if not decorators:
        return ()
    lineno = getattr(node, "lineno", 1)
    first = min(dec.lineno for dec in decorators)
    return (lineno, lineno - 1, first - 1)


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def _module_aliases(tree: ast.AST, module: str) -> Set[str]:
    """Names that refer to ``module`` after ``import module [as alias]``."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == module:
                    aliases.add(item.asname or item.name)
    return aliases


def _attr_tail(node: ast.expr) -> Optional[str]:
    """The final identifier of a Name/Attribute chain, or None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _base_name(node: ast.expr) -> Optional[str]:
    return _attr_tail(node)


# ----------------------------------------------------------------------
# Determinism family (REP1xx)
# ----------------------------------------------------------------------
#: ``random``-module callables that draw from (or reseed) an RNG.
_RANDOM_BANNED = frozenset(
    {
        "random", "seed", "randint", "randrange", "randbytes", "choice",
        "choices", "shuffle", "sample", "uniform", "gauss", "expovariate",
        "normalvariate", "lognormvariate", "betavariate", "gammavariate",
        "triangular", "vonmisesvariate", "paretovariate", "weibullvariate",
        "getrandbits", "binomialvariate", "Random", "SystemRandom",
    }
)


class ModuleRandomRule(Rule):
    """No global-``random`` draws or ad-hoc RNG construction.

    Every random draw must come from a named, seeded stream of
    :class:`repro.sim.rng.RngRegistry` — the module-level functions use
    one hidden process-global ``Random``, so any call to them makes
    results depend on import order and on every other component's draw
    history.  Constructing ``random.Random(...)`` directly is flagged
    too: a stream that does not go through ``derive_child_seed`` breaks
    the add-a-component-without-perturbing-others guarantee.  Annotating
    with ``random.Random`` (no call) is fine.
    """

    slug = "module-random"
    code = "REP101"
    summary = "random draws must come from the seeded RngRegistry"

    _EXEMPT = ("sim/rng.py",)

    def applies(self, mod: "ParsedModule") -> bool:  # noqa: F821
        return mod.rel not in self._EXEMPT

    def check(self, mod: "ParsedModule") -> Iterator[Finding]:  # noqa: F821
        aliases = _module_aliases(mod.tree, "random")
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for item in node.names:
                    if item.name in _RANDOM_BANNED:
                        yield self.finding(
                            mod,
                            node,
                            f"'from random import {item.name}' bypasses the "
                            "seeded RngRegistry; draw from a named "
                            "sim.rng.stream(...) instead",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in aliases
                    and func.attr in _RANDOM_BANNED
                ):
                    yield self.finding(
                        mod,
                        node,
                        f"call to random.{func.attr}() outside sim/rng.py; "
                        "use a named RngRegistry stream so runs stay "
                        "reproducible",
                    )


#: Wall-clock readers (and ``sleep``, which has no place in simulated
#: time either).
_TIME_BANNED = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns", "sleep",
    }
)


class WallclockRule(Rule):
    """No wall-clock reads outside the engine/executor/profiler.

    Simulation logic must read :attr:`Simulator.now`; a ``time.time()``
    in a component couples results to host speed, which is exactly the
    silent-divergence failure mode of mis-specified timer arithmetic.
    The engine (watchdog + profiling) and the sweep executor (per-cell
    wall budgets, retry backoff) legitimately measure real time.
    """

    slug = "wallclock"
    code = "REP102"
    summary = "wall-clock reads only in sim/engine.py, sim/profile.py, exec/runner.py"

    _ALLOWED = ("sim/engine.py", "sim/profile.py", "exec/runner.py")

    def applies(self, mod: "ParsedModule") -> bool:  # noqa: F821
        return mod.rel not in self._ALLOWED

    def check(self, mod: "ParsedModule") -> Iterator[Finding]:  # noqa: F821
        aliases = _module_aliases(mod.tree, "time")
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for item in node.names:
                    if item.name in _TIME_BANNED:
                        yield self.finding(
                            mod,
                            node,
                            f"'from time import {item.name}' in simulation "
                            "code; read Simulator.now instead of the wall "
                            "clock",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in aliases
                    and func.attr in _TIME_BANNED
                ):
                    yield self.finding(
                        mod,
                        node,
                        f"wall-clock call time.{func.attr}() outside the "
                        "engine/executor allowlist; simulation logic must "
                        "use Simulator.now",
                    )


def _is_set_expr(node: ast.expr, set_vars: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _attr_tail(node.func)
        if name in ("set", "frozenset") and isinstance(node.func, ast.Name):
            return True
    if isinstance(node, ast.Name) and node.id in set_vars:
        return True
    return False


class SetIterationRule(Rule):
    """No iteration over bare sets (iterate ``sorted(...)`` instead).

    Set iteration order depends on hash values and insertion/deletion
    history; if that order reaches scheduling decisions (which packet to
    retransmit first, which flow starts first), two runs of the same
    seed can diverge.  The rule flags ``for``/comprehension iteration
    directly over a set literal, a ``set()``/``frozenset()`` call, or a
    local assigned one in the same scope — wrap in ``sorted(...)`` to
    fix.
    """

    slug = "set-iteration"
    code = "REP103"
    summary = "iterate sorted(set), never a bare set (ordering determinism)"

    def check(self, mod: "ParsedModule") -> Iterator[Finding]:  # noqa: F821
        scopes: List[ast.AST] = [mod.tree]
        scopes.extend(
            node
            for node in ast.walk(mod.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            set_vars: Set[str] = set()
            for node in ast.walk(scope):
                if node is not scope and isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue  # inner scopes handled by their own pass
                if isinstance(node, ast.Assign) and _is_set_expr(
                    node.value, set()
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            set_vars.add(target.id)
            iterables: List[ast.expr] = []
            for node in ast.walk(scope):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iterables.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    iterables.extend(gen.iter for gen in node.generators)
            for iterable in iterables:
                if _is_set_expr(iterable, set_vars):
                    yield self.finding(
                        mod,
                        iterable,
                        "iteration over a bare set: order is "
                        "hash/history-dependent; iterate sorted(...) so "
                        "ordering cannot leak into scheduling",
                    )


class UnsortedJsonRule(Rule):
    """Hash inputs must serialize with ``sort_keys=True``.

    In modules that compute content hashes (anything importing
    ``hashlib`` — the result cache being the canonical case), a
    ``json.dumps`` without ``sort_keys=True`` makes the digest depend on
    dict construction order: two semantically identical cells would get
    different cache keys, silently defeating result reuse.
    """

    slug = "unsorted-json"
    code = "REP104"
    summary = "json.dumps in hashing modules must pass sort_keys=True"

    def applies(self, mod: "ParsedModule") -> bool:  # noqa: F821
        return bool(_module_aliases(mod.tree, "hashlib"))

    def check(self, mod: "ParsedModule") -> Iterator[Finding]:  # noqa: F821
        aliases = _module_aliases(mod.tree, "json")
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in aliases
                and func.attr == "dumps"
            ):
                continue
            sorts = any(
                keyword.arg == "sort_keys"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords
            )
            if not sorts:
                yield self.finding(
                    mod,
                    node,
                    "json.dumps() in a hashing module without "
                    "sort_keys=True: the digest becomes sensitive to dict "
                    "construction order",
                )


#: Serialization modules whose byte output is interpreter-dependent
#: and whose load side executes arbitrary reduction callables.
_PICKLE_MODULES = frozenset(
    {"pickle", "cPickle", "_pickle", "dill", "cloudpickle", "shelve", "marshal"}
)


class PickleRule(Rule):
    """Pickle only inside the checkpoint subsystem (and the cache).

    Pickle bytes are not a stable artifact format: they are
    protocol/refactor-sensitive, and loading them executes arbitrary
    ``__reduce__`` callables.  Results, traces, and metrics must travel
    through the registered JSON codecs
    (:mod:`repro.experiments.serialize`, ``repro.obs/v1``) so cached
    artifacts survive refactors and stay inspectable.  The one sanctioned
    consumer is :mod:`repro.checkpoint` — a checkpoint *is* a live object
    graph, same-version by construction (the schema/version meta is
    verified before the graph section is ever unpickled).
    """

    slug = "pickle"
    code = "REP105"
    summary = "pickle-family imports only in repro.checkpoint (and exec/cache.py)"

    _ALLOWED_PREFIXES = ("checkpoint/",)
    _ALLOWED = ("exec/cache.py",)

    def applies(self, mod: "ParsedModule") -> bool:  # noqa: F821
        if mod.rel in self._ALLOWED:
            return False
        return not mod.rel.startswith(self._ALLOWED_PREFIXES)

    def check(self, mod: "ParsedModule") -> Iterator[Finding]:  # noqa: F821
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    root = item.name.split(".")[0]
                    if root in _PICKLE_MODULES:
                        yield self.finding(
                            mod,
                            node,
                            f"import of {item.name!r} outside the checkpoint "
                            "subsystem: persistent artifacts must use the "
                            "registered JSON codecs, not pickle bytes",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                root = node.module.split(".")[0]
                if root in _PICKLE_MODULES:
                    yield self.finding(
                        mod,
                        node,
                        f"'from {node.module} import ...' outside the "
                        "checkpoint subsystem: persistent artifacts must "
                        "use the registered JSON codecs, not pickle bytes",
                    )


# ----------------------------------------------------------------------
# Hot-path family (REP2xx)
# ----------------------------------------------------------------------
_EXCEPTION_SUFFIXES = ("Error", "Exception", "Warning")


def _is_exception_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = _base_name(base)
        if name is None:
            continue
        if name in ("Exception", "BaseException") or name.endswith(
            _EXCEPTION_SUFFIXES
        ):
            return True
    return False


def _has_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(
                isinstance(target, ast.Name) and target.id == "__slots__"
                for target in stmt.targets
            ):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            ):
                return True
    return False


def _is_slotted_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        if _attr_tail(decorator.func) != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "slots"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


class SlotsRule(Rule):
    """Hot-path classes must declare ``__slots__``.

    Everything under ``sim/`` plus :class:`Packet` and :class:`Link` is
    instantiated or touched per event; ``__slots__`` removes the
    per-instance ``__dict__`` (smaller, faster attribute access) and —
    just as important after the PR 4 overhaul — makes an accidental new
    attribute (a typo'd counter, a stray cache) an immediate
    ``AttributeError`` instead of a silent slow leak.  Exception classes
    and ``Protocol`` definitions are exempt; ``@dataclass(slots=True)``
    counts as slotted.
    """

    slug = "slots"
    code = "REP201"
    summary = "classes in sim/, net/packet.py, net/link.py need __slots__"

    def applies(self, mod: "ParsedModule") -> bool:  # noqa: F821
        return mod.rel.startswith("sim/") or mod.rel in (
            "net/packet.py",
            "net/link.py",
        )

    def check(self, mod: "ParsedModule") -> Iterator[Finding]:  # noqa: F821
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _is_exception_class(node):
                continue
            if any(_base_name(base) == "Protocol" for base in node.bases):
                continue
            if _has_slots(node) or _is_slotted_dataclass(node):
                continue
            yield self.finding(
                mod,
                node,
                f"hot-path class {node.name!r} has no __slots__ (and is "
                "not a slots=True dataclass): per-instance __dict__ costs "
                "memory and attribute-lookup time on the event path",
            )


_POST_NAMES = frozenset({"post", "post_in", "_post_in"})


class PostKwargsRule(Rule):
    """``post``/``post_in`` call sites: positional args, no lambdas.

    These are the fire-and-forget hot-path schedulers; a keyword call
    packs a per-call dict and a lambda allocates a closure per event —
    both of which PR 4 removed on purpose (cached bound method + args
    tuple).  Timers that need cancellation use ``schedule`` instead,
    which is not restricted.
    """

    slug = "post-kwargs"
    code = "REP202"
    summary = "post()/post_in() call sites must be positional and lambda-free"

    def check(self, mod: "ParsedModule") -> Iterator[Finding]:  # noqa: F821
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _attr_tail(node.func)
            if name not in _POST_NAMES:
                continue
            if node.keywords:
                yield self.finding(
                    mod,
                    node,
                    f"keyword arguments in a {name}() call: hot-path "
                    "dispatch must pass (time, callback, args, label) "
                    "positionally (keyword calls pack a dict per event)",
                )
            for arg in node.args:
                if isinstance(arg, ast.Lambda):
                    yield self.finding(
                        mod,
                        arg,
                        f"lambda passed to {name}(): allocates a closure "
                        "per event; pass a cached bound method plus an "
                        "args tuple instead",
                    )


_HANDLE_ATTRS = frozenset({"time", "seq", "callback"})


class HandleMutationRule(Rule):
    """Never mutate a scheduled event's ordering fields outside ``sim/``.

    Heap entries are ``(time, seq, ...)`` tuples compared during sift;
    the :class:`EventHandle` inside carries the same ``time``/``seq``
    and a ``callback`` that the engine clears on dispatch.  Writing any
    of them from component code desynchronizes the handle from its heap
    entry — the timer then fires at the *old* position while
    introspection reports the new one, the classic silently-diverging
    timer bug.  Cancel and reschedule instead.
    """

    slug = "handle-mutation"
    code = "REP203"
    summary = "no writes to EventHandle time/seq/callback outside sim/"

    def applies(self, mod: "ParsedModule") -> bool:  # noqa: F821
        return not mod.rel.startswith("sim/")

    def check(self, mod: "ParsedModule") -> Iterator[Finding]:  # noqa: F821
        # Locals assigned from a .schedule()/.schedule_in() call, per
        # enclosing scope: any attribute write on them is flagged.
        scopes: List[ast.AST] = [mod.tree]
        scopes.extend(
            node
            for node in ast.walk(mod.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            handle_vars: Set[str] = set()
            for node in ast.walk(scope):
                if node is not scope and isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call
                ):
                    called = _attr_tail(node.value.func)
                    if called in ("schedule", "schedule_in"):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                handle_vars.add(target.id)
            for node in ast.walk(scope):
                if node is not scope and isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                targets: Sequence[ast.expr] = ()
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = (node.target,)
                for target in targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    owner = target.value
                    owner_name = _attr_tail(owner) or ""
                    from_schedule = (
                        isinstance(owner, ast.Name)
                        and owner.id in handle_vars
                    )
                    handle_ish = "handle" in owner_name.lower()
                    if target.attr in _HANDLE_ATTRS and (
                        from_schedule or handle_ish
                    ):
                        yield self.finding(
                            mod,
                            target,
                            f"write to {owner_name}.{target.attr}: mutating "
                            "a scheduled event's ordering/dispatch fields "
                            "desynchronizes it from its heap entry — "
                            "cancel() and reschedule instead",
                        )
                    elif from_schedule:
                        yield self.finding(
                            mod,
                            target,
                            f"attribute write on {owner_name} (a handle "
                            "returned by schedule()): handles are "
                            "engine-owned; cancel() and reschedule instead",
                        )


#: Modules with a compiled counterpart: mirrored by the C accelerator
#: (``repro._cext._core`` subclasses Simulator/Link/Node and resolves
#: their attributes by fixed slot offset) or on the experimental mypyc
#: leaf allowlist (``setup.py``, ``REPRO_BUILD_MYPYC``).  Kept in sync
#: with docs/COMPILED.md.
_COMPILED_MODULES = (
    "sim/engine.py",
    "net/link.py",
    "net/node.py",
    "net/queues.py",
    "sim/rng.py",
    "sim/profile.py",
)


class CompiledCompatRule(Rule):
    """No dynamic-attribute patterns in compiled-mirrored modules.

    The compiled engine resolves these classes' attributes by fixed slot
    offset at extension-init time, and mypyc compiles leaf modules to
    native attribute access; both break — at runtime, on the compiled
    build only — under patterns plain CPython tolerates:

    * ``del obj.attr`` / ``delattr(...)`` empties a typed slot that
      compiled readers assume is always filled;
    * ``setattr(obj, name, ...)`` with a computed name can create
      attributes no slot (hence no C offset) exists for;
    * ``obj.__dict__`` reads assume an instance dict that slotted and
      compiled instances do not have.

    Because the failure only reproduces on a checkout that built the
    extension, the lint flags the pattern on every build.
    """

    slug = "compiled-compat"
    code = "REP205"
    summary = (
        "compiled-mirrored modules: no del-attribute/setattr/__dict__ "
        "(breaks fixed-offset attribute access on the compiled build)"
    )

    def applies(self, mod: "ParsedModule") -> bool:  # noqa: F821
        return mod.rel in _COMPILED_MODULES

    def check(self, mod: "ParsedModule") -> Iterator[Finding]:  # noqa: F821
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        yield self.finding(
                            mod,
                            target,
                            f"del of attribute .{target.attr} in a "
                            "compiled-mirrored module: emptying a typed "
                            "slot breaks fixed-offset reads on the "
                            "compiled build — assign None instead",
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name
            ):
                if node.func.id in ("setattr", "delattr"):
                    yield self.finding(
                        mod,
                        node,
                        f"{node.func.id}() in a compiled-mirrored module: "
                        "dynamic attribute names bypass the slot layout "
                        "the compiled build resolves at init time — use "
                        "a direct attribute assignment",
                    )
            elif isinstance(node, ast.Attribute) and node.attr == "__dict__":
                yield self.finding(
                    mod,
                    node,
                    "__dict__ access in a compiled-mirrored module: "
                    "slotted/compiled instances have no instance dict — "
                    "use object.__getstate__() or explicit attributes",
                )


# ----------------------------------------------------------------------
# Hygiene family (REP3xx)
# ----------------------------------------------------------------------
def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler's last statement is a bare ``raise``."""
    if not handler.body:
        return False
    last = handler.body[-1]
    return isinstance(last, ast.Raise) and last.exc is None


class BroadExceptRule(Rule):
    """No ``except Exception`` without a reasoned pragma.

    A broad handler swallows :class:`SimulationError` subclasses — the
    watchdog and sanitizer signals that exist precisely to stop a
    silently-diverging run.  Handlers that end in a bare ``raise``
    (cleanup-then-propagate) are exempt; deliberate catch-alls (the
    sweep worker's capture-as-data guard) must carry
    ``# lint: allow-broad-except(reason)``.
    """

    slug = "broad-except"
    code = "REP301"
    summary = "no bare/broad except without a reasoned pragma"

    def check(self, mod: "ParsedModule") -> Iterator[Finding]:  # noqa: F821
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                broad = "bare except:"
            else:
                name = _attr_tail(node.type)
                if name not in ("Exception", "BaseException"):
                    continue
                broad = f"except {name}"
            if _reraises(node):
                continue
            yield self.finding(
                mod,
                node,
                f"{broad} swallows SimulationError/watchdog/sanitizer "
                "signals; narrow it, re-raise, or annotate with "
                "# lint: allow-broad-except(reason)",
            )


_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


class MutableDefaultRule(Rule):
    """No mutable default argument values."""

    slug = "mutable-default"
    code = "REP302"
    summary = "no mutable default argument values"

    def check(self, mod: "ParsedModule") -> Iterator[Finding]:  # noqa: F821
        for node in ast.walk(mod.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                mutable = isinstance(
                    default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)
                ) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CALLS
                )
                if mutable:
                    yield self.finding(
                        mod,
                        default,
                        f"mutable default argument in {node.name}(): shared "
                        "across calls; default to None and construct inside",
                        anchor=node,
                    )


def _is_time_operand(node: ast.expr) -> bool:
    name = _attr_tail(node)
    if name is None:
        return False
    return (
        name == "now"
        or name.endswith("_time")
        or name in ("mxrtt", "deadline", "sent_time", "fire_at")
    )


class FloatTimeEqRule(Rule):
    """No ``==``/``!=`` on simulated-time quantities.

    Simulation times are accumulated floats (``now + delay`` chains);
    exact equality silently stops matching after enough accumulation —
    the divergence shows up as a timer that never coincides again, not
    as a crash.  Compare with ``<=``/``>=`` or an explicit tolerance.
    """

    slug = "float-time-eq"
    code = "REP303"
    summary = "no float == on simulated time; use ordering or a tolerance"

    def check(self, mod: "ParsedModule") -> Iterator[Finding]:  # noqa: F821
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if isinstance(left, ast.Constant) and left.value is None:
                    continue
                if isinstance(right, ast.Constant) and right.value is None:
                    continue
                if _is_time_operand(left) or _is_time_operand(right):
                    yield self.finding(
                        mod,
                        node,
                        "float equality on a simulated-time quantity: "
                        "accumulated-float == comparisons diverge silently; "
                        "use ordering comparisons or an explicit tolerance",
                    )


#: The registered rule set, in catalog order.
RULES: Tuple[Rule, ...] = (
    ModuleRandomRule(),
    WallclockRule(),
    SetIterationRule(),
    UnsortedJsonRule(),
    PickleRule(),
    SlotsRule(),
    PostKwargsRule(),
    HandleMutationRule(),
    CompiledCompatRule(),
    BroadExceptRule(),
    MutableDefaultRule(),
    FloatTimeEqRule(),
)

_BY_SLUG: Dict[str, Rule] = {rule.slug: rule for rule in RULES}


def rule_by_slug(slug: str) -> Optional[Rule]:
    """Look a rule up by its pragma slug."""
    return _BY_SLUG.get(slug)


# ----------------------------------------------------------------------
# Deep (whole-program) rule catalog
# ----------------------------------------------------------------------
class DeepRuleInfo:
    """Catalog metadata for a pass-based rule.

    The interprocedural and cross-artifact rules are not per-module AST
    visitors — they run as whole-program passes (:mod:`repro.lint.taint`,
    :mod:`repro.lint.xartifact`) under ``repro lint --deep``.  This
    record gives them the same catalog surface (code, pragma slug,
    ``--list-rules`` summary) as the syntactic rules.
    """

    __slots__ = ("slug", "code", "summary")

    def __init__(self, slug: str, code: str, summary: str) -> None:
        self.slug = slug
        self.code = code
        self.summary = summary


#: Whole-program rules, in catalog order.  REP11x extends the REP10x
#: determinism family across call/return boundaries; REP4xx checks the
#: python tree against its sibling artifacts (the C mirror, the
#: checkpoint contract, the observability schema docs).
DEEP_RULES: Tuple[DeepRuleInfo, ...] = (
    DeepRuleInfo(
        "taint-state",
        "REP111",
        "no nondeterministic value may reach simulation state, even "
        "through call chains (path-reported)",
    ),
    DeepRuleInfo(
        "taint-schedule",
        "REP112",
        "no nondeterministic value may reach an event time argument "
        "(schedule/post/post_in), even through call chains",
    ),
    DeepRuleInfo(
        "c-mirror-drift",
        "REP401",
        "pure Simulator/Link/Node surface must be mirrored by the C "
        "extension tables or declared delegated in mirror_manifest.json",
    ),
    DeepRuleInfo(
        "snapshot-drift",
        "REP402",
        "component wiring attributes must be listed in _SNAPSHOT_EXCLUDE; "
        "excluded names must exist",
    ),
    DeepRuleInfo(
        "obs-schema-drift",
        "REP403",
        "emitted repro.obs/v1 record fields must match the schema tables "
        "in docs/OBSERVABILITY.md",
    ),
)

_DEEP_BY_SLUG: Dict[str, DeepRuleInfo] = {info.slug: info for info in DEEP_RULES}


def deep_rule_by_slug(slug: str) -> Optional[DeepRuleInfo]:
    """Look a whole-program rule up by its pragma slug."""
    return _DEEP_BY_SLUG.get(slug)

"""Cross-artifact consistency checks (REP4xx family).

Three contracts in this tree span more than one artifact, so no
single-file rule can see them drift:

* **REP401 / c-mirror-drift** — the compiled engine
  (``src/repro/_cext/_coremodule.c``) shadows ``Simulator`` slots with
  getsets and mirrors hot methods.  The getset/method tables are parsed
  straight out of the C source (lightweight regex over the
  ``static PyGetSetDef/PyMethodDef name[] = {...};`` blocks) and diffed
  against the pure classes, with intentional non-mirroring declared in
  ``src/repro/_cext/mirror_manifest.json`` (``delegated_*`` = inherited
  from the pure base on purpose).  Both directions are checked: a pure
  slot/method the C side neither shadows nor delegates, a C entry whose
  pure counterpart is gone, and stale manifest entries.
* **REP402 / snapshot-drift** — checkpointable components exclude their
  engine wiring from snapshots via ``_SNAPSHOT_EXCLUDE``
  (:mod:`repro.checkpoint.state`).  An attribute assigned from a wiring
  constructor parameter (:data:`~repro.checkpoint.state.WIRING_PARAM_NAMES`),
  from a bound method of ``self``, or from a scheduler handle is wiring
  by construction; if it is not excluded, ``snapshot_object`` will
  deep-copy half the object graph.  Stale exclude entries (naming an
  attribute the class no longer has) are flagged too.
* **REP403 / obs-schema-drift** — every ``{"record": "<kind>", ...}``
  literal emitted by the obs-stream producers (``obs/``, ``scenarios/``,
  ``traces/``, ``exec/telemetry.py``) must use a record kind documented
  in the ``repro.obs/v1`` table of ``docs/OBSERVABILITY.md``, with its
  explicit fields a subset of the documented ones (the schema is
  append-only, so the doc is the source of truth).  ``exec/journal.py``
  is out of scope: its records live in the private resume journal, not
  the obs stream.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.checkpoint.state import WIRING_PARAM_NAMES
from repro.lint.findings import Finding
from repro.lint.project import ClassSummary, ModuleSummary, Project

__all__ = [
    "MIRROR_RULE_CODE",
    "MIRROR_RULE_SLUG",
    "OBS_RULE_CODE",
    "OBS_RULE_SLUG",
    "SNAPSHOT_RULE_CODE",
    "SNAPSHOT_RULE_SLUG",
    "Artifacts",
    "analyze_xartifact",
    "classify_wiring",
    "parse_c_tables",
    "parse_obs_schema_doc",
]

MIRROR_RULE_SLUG = "c-mirror-drift"
MIRROR_RULE_CODE = "REP401"
SNAPSHOT_RULE_SLUG = "snapshot-drift"
SNAPSHOT_RULE_CODE = "REP402"
OBS_RULE_SLUG = "obs-schema-drift"
OBS_RULE_CODE = "REP403"

#: Modules whose record literals must match the documented obs schema.
_OBS_SCOPE_PREFIXES = ("obs/", "scenarios/", "traces/")
_OBS_SCOPE_FILES = ("exec/telemetry.py",)

_SCHEDULER_TAILS = frozenset(
    {"schedule", "schedule_in", "post", "post_in", "post_batch"}
)


# ----------------------------------------------------------------------
# Wiring classification (used by project.py while summarizing classes)
# ----------------------------------------------------------------------
def classify_wiring(
    value: ast.expr, params: Sequence[str], methods: Sequence[str]
) -> Optional[str]:
    """Why a ``self.<attr> = value`` assignment is engine wiring, or None.

    Conservative on purpose: only shapes that are wiring *by
    construction* qualify, so every REP402 finding is actionable.
    """
    node = value
    # `self.x = param` / `self.x = param.attr.chain`
    root = node
    depth = 0
    while isinstance(root, ast.Attribute):
        root = root.value
        depth += 1
    if isinstance(root, ast.Name):
        if (
            root.id in WIRING_PARAM_NAMES
            and root.id in params
            and depth <= 1
        ):
            return f"assigned from wiring parameter '{root.id}'"
        # `self.x = self.method` (a bound method — never snapshotable)
        if (
            root.id == "self"
            and depth == 1
            and isinstance(node, ast.Attribute)
            and node.attr in methods
        ):
            return f"bound method self.{node.attr}"
    # `self.x = <sim>.schedule(...)` — a live EventHandle
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _SCHEDULER_TAILS:
            return f"live handle from {node.func.attr}()"
    return None


# ----------------------------------------------------------------------
# Artifact loading
# ----------------------------------------------------------------------
_TABLE_RE = re.compile(
    r"static\s+Py(GetSetDef|MethodDef)\s+(\w+)\[\]\s*=\s*\{(.*?)\};",
    re.DOTALL,
)
_ENTRY_RE = re.compile(r'\{\s*"([A-Za-z0-9_]+)"')


def parse_c_tables(c_source: str) -> Dict[str, Tuple[str, ...]]:
    """``table name -> entry names`` for every getset/method table."""
    tables: Dict[str, Tuple[str, ...]] = {}
    for match in _TABLE_RE.finditer(c_source):
        body = match.group(3)
        tables[match.group(2)] = tuple(
            entry.group(1) for entry in _ENTRY_RE.finditer(body)
        )
    return tables


_DOC_ROW_RE = re.compile(r"^\|\s*`([A-Za-z0-9_]+)`\s*\|(.*)\|\s*$")
_DOC_FIELD_RE = re.compile(r"`([A-Za-z_][A-Za-z0-9_]*)`")


def parse_obs_schema_doc(doc_text: str) -> Dict[str, Set[str]]:
    """``record kind -> documented field names`` from the schema table.

    Every backticked identifier in a row's Fields cell counts as
    documented — that deliberately includes enum values (```send```),
    which only ever widens the allowed set.
    """
    schema: Dict[str, Set[str]] = {}
    for line in doc_text.splitlines():
        match = _DOC_ROW_RE.match(line.strip())
        if match is None:
            continue
        kind = match.group(1)
        if kind == "record":  # the table's own header row
            continue
        schema[kind] = set(_DOC_FIELD_RE.findall(match.group(2)))
    return schema


@dataclass(frozen=True)
class Artifacts:
    """The non-Python inputs of the cross-artifact pass."""

    c_source: Optional[str] = None
    c_path: str = ""
    manifest: Optional[Dict[str, Any]] = None
    manifest_path: str = ""
    manifest_error: str = ""
    obs_doc: Optional[str] = None
    obs_doc_path: str = ""
    #: Content digest over all three artifacts (cache key component).
    digest: str = ""

    @classmethod
    def from_package_root(cls, package_root: str) -> "Artifacts":
        """Load artifacts relative to the ``src/repro`` package dir.

        Missing files simply disable their checks — a partial tree (a
        test fixture, a vendored subset) lints without them.
        """
        project_root = os.path.dirname(os.path.dirname(package_root))
        c_path = os.path.join(package_root, "_cext", "_coremodule.c")
        manifest_path = os.path.join(
            package_root, "_cext", "mirror_manifest.json"
        )
        obs_path = os.path.join(project_root, "docs", "OBSERVABILITY.md")

        hasher = hashlib.sha256()
        c_source = _read_text(c_path)
        manifest_text = _read_text(manifest_path)
        obs_doc = _read_text(obs_path)
        for text in (c_source, manifest_text, obs_doc):
            hasher.update(b"\x00")
            if text is not None:
                hasher.update(text.encode("utf-8"))

        manifest: Optional[Dict[str, Any]] = None
        manifest_error = ""
        if manifest_text is not None:
            try:
                loaded = json.loads(manifest_text)
            except ValueError as exc:
                manifest_error = str(exc)
            else:
                if isinstance(loaded, dict):
                    manifest = loaded
                else:
                    manifest_error = "manifest root must be a JSON object"

        return cls(
            c_source=c_source,
            c_path=c_path,
            manifest=manifest,
            manifest_path=manifest_path,
            manifest_error=manifest_error,
            obs_doc=obs_doc,
            obs_doc_path=obs_path,
            digest=hasher.hexdigest(),
        )


def _read_text(path: str) -> Optional[str]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError:
        return None


def discover_package_root(project: Project) -> Optional[str]:
    """The on-disk ``src/repro`` directory the linted modules live in."""
    for summary in project.modules.values():
        norm = summary.path.replace(os.sep, "/")
        if norm.endswith("/" + summary.rel):
            return summary.path[: -len(summary.rel) - 1] or os.sep
    return None


# ----------------------------------------------------------------------
# REP401: pure <-> C mirror
# ----------------------------------------------------------------------
@dataclass
class _MirrorChecker:
    project: Project
    artifacts: Artifacts
    findings: List[Finding] = field(default_factory=list)

    def _emit(
        self, path: str, line: int, message: str, trace: Tuple[str, ...] = ()
    ) -> None:
        self.findings.append(
            Finding(
                rule=MIRROR_RULE_SLUG,
                code=MIRROR_RULE_CODE,
                path=path,
                line=line,
                col=0,
                message=message,
                trace=trace,
            )
        )

    def run(self) -> List[Finding]:
        if self.artifacts.c_source is None:
            return []
        if self.artifacts.manifest_error:
            self._emit(
                self.artifacts.manifest_path,
                1,
                f"unreadable mirror manifest: {self.artifacts.manifest_error}",
            )
            return self.findings
        if self.artifacts.manifest is None:
            self._emit(
                self.artifacts.c_path,
                1,
                "C engine source present but mirror_manifest.json is "
                "missing; the mirror contract cannot be checked",
            )
            return self.findings
        tables = parse_c_tables(self.artifacts.c_source)
        classes = self.artifacts.manifest.get("classes")
        if not isinstance(classes, dict):
            self._emit(
                self.artifacts.manifest_path,
                1,
                "mirror manifest has no 'classes' object",
            )
            return self.findings
        for class_name in sorted(classes):
            spec = classes[class_name]
            if isinstance(spec, dict):
                self._check_class(class_name, spec, tables)
        return self.findings

    def _check_class(
        self,
        class_name: str,
        spec: Mapping[str, Any],
        tables: Mapping[str, Tuple[str, ...]],
    ) -> None:
        module = str(spec.get("pure_module", ""))
        summary = self.project.modules.get(module)
        klass = (
            summary.classes.get(class_name) if summary is not None else None
        )
        if summary is None or klass is None:
            self._emit(
                self.artifacts.manifest_path,
                1,
                f"mirror manifest names {module}.{class_name}, which does "
                "not exist in the analyzed tree",
            )
            return

        # Union slots/methods across the project-visible MRO so
        # inherited surface counts as part of the pure class.
        slots: Set[str] = set()
        methods: Set[str] = set()
        for _owner, entry in self.project.class_mro(
            summary.module, class_name
        ):
            slots.update(entry.slots)
            methods.update(entry.methods)

        delegated_attrs = {str(n) for n in spec.get("delegated_attrs", ())}
        delegated_methods = {str(n) for n in spec.get("delegated_methods", ())}
        getset_table = str(spec.get("getset_table", ""))
        method_table = str(spec.get("method_table", ""))
        getsets = set(tables.get(getset_table, ())) if getset_table else set()
        c_methods = set(tables.get(method_table, ())) if method_table else set()

        for table_key in (getset_table, method_table):
            if table_key and table_key not in tables:
                self._emit(
                    self.artifacts.c_path,
                    1,
                    f"mirror manifest references C table '{table_key}' for "
                    f"{class_name}, but _coremodule.c defines no such table",
                )

        pure_loc = (summary.path, klass.line)

        if bool(spec.get("mirror_attrs", False)):
            for slot in sorted(slots):
                if slot.startswith("__"):
                    continue
                if slot not in getsets and slot not in delegated_attrs:
                    self._emit(
                        *pure_loc,
                        f"slot '{slot}' of {class_name} has no C getset in "
                        f"{getset_table} and is not listed as delegated in "
                        "mirror_manifest.json",
                    )
            for name in sorted(getsets):
                if name not in slots:
                    self._emit(
                        *pure_loc,
                        f"C getset '{name}' in {getset_table} shadows no "
                        f"pure slot of {class_name} (stale mirror entry)",
                    )
            for name in sorted(delegated_attrs):
                if name not in slots:
                    self._emit(
                        *pure_loc,
                        f"mirror manifest delegates attribute '{name}' of "
                        f"{class_name}, but the pure class has no such slot",
                    )

        for method in sorted(methods):
            if method.startswith("_"):
                continue  # private/dunder surface is not part of the API
            if method not in c_methods and method not in delegated_methods:
                self._emit(
                    *pure_loc,
                    f"public method '{method}' of {class_name} is neither "
                    f"mirrored in {method_table} nor listed as delegated in "
                    "mirror_manifest.json",
                )
        for name in sorted(c_methods):
            if name.startswith("_"):
                continue
            if name not in methods:
                self._emit(
                    *pure_loc,
                    f"C method '{name}' in {method_table} has no pure "
                    f"counterpart on {class_name}",
                )
        for name in sorted(delegated_methods):
            if name not in methods:
                self._emit(
                    *pure_loc,
                    f"mirror manifest delegates method '{name}' of "
                    f"{class_name}, but the pure class defines no such "
                    "method",
                )


# ----------------------------------------------------------------------
# REP402: snapshot excludes vs wiring attributes
# ----------------------------------------------------------------------
def _effective_exclude(
    project: Project,
    module: str,
    class_name: str,
    seen: Optional[Set[Tuple[str, str]]] = None,
) -> Optional[Set[str]]:
    """The resolved ``_SNAPSHOT_EXCLUDE`` set a class snapshots with, or
    None when no MRO member declares one / the declaration is dynamic."""
    if seen is None:
        seen = set()
    if (module, class_name) in seen:
        return None
    seen.add((module, class_name))
    for owner, klass in project.class_mro(module, class_name):
        if not klass.has_snapshot_exclude:
            continue
        if klass.snapshot_exclude_dynamic:
            return None
        names = set(klass.snapshot_exclude)
        if klass.snapshot_exclude_base:
            base = klass.snapshot_exclude_base.rpartition(".")[2]
            parent = _effective_exclude(project, owner, base, seen)
            if parent is None:
                return None
            names |= parent
        return names
    return None


def _class_attr_universe(
    project: Project, module: str, class_name: str
) -> Set[str]:
    names: Set[str] = set()
    for _owner, klass in project.class_mro(module, class_name):
        names.update(klass.slots)
        names.update(klass.methods)
        names.update(attr for attr, _l, _c in klass.self_attrs)
    return names


def _check_snapshot_drift(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for summary in project.modules.values():
        for class_name in sorted(summary.classes):
            klass = summary.classes[class_name]
            exclude = _effective_exclude(project, summary.module, class_name)
            if exclude is None:
                continue
            for attr, line, col, why in klass.wiring_writes:
                if attr in exclude:
                    continue
                findings.append(
                    Finding(
                        rule=SNAPSHOT_RULE_SLUG,
                        code=SNAPSHOT_RULE_CODE,
                        path=summary.path,
                        line=line,
                        col=col,
                        message=(
                            f"'self.{attr}' in {class_name} is engine "
                            f"wiring ({why}) but is missing from "
                            "_SNAPSHOT_EXCLUDE; snapshot_object would "
                            "deep-copy the wired object graph"
                        ),
                    )
                )
            if klass.has_snapshot_exclude and not klass.snapshot_exclude_dynamic:
                universe = _class_attr_universe(
                    project, summary.module, class_name
                )
                for name in sorted(klass.snapshot_exclude):
                    if name not in universe:
                        findings.append(
                            Finding(
                                rule=SNAPSHOT_RULE_SLUG,
                                code=SNAPSHOT_RULE_CODE,
                                path=summary.path,
                                line=klass.line,
                                col=0,
                                message=(
                                    f"_SNAPSHOT_EXCLUDE of {class_name} "
                                    f"names '{name}', but the class has no "
                                    "such attribute (stale exclude entry)"
                                ),
                            )
                        )
    return findings


# ----------------------------------------------------------------------
# REP403: emitted record literals vs documented schema
# ----------------------------------------------------------------------
def _obs_in_scope(summary: ModuleSummary) -> bool:
    return summary.rel.startswith(_OBS_SCOPE_PREFIXES) or (
        summary.rel in _OBS_SCOPE_FILES
    )


def _check_obs_schema(
    project: Project, artifacts: Artifacts
) -> List[Finding]:
    if artifacts.obs_doc is None:
        return []
    documented = parse_obs_schema_doc(artifacts.obs_doc)
    if not documented:
        return []
    findings: List[Finding] = []
    for summary in project.modules.values():
        if not _obs_in_scope(summary):
            continue
        for kind, fields, _dynamic, line, col in summary.record_literals:
            if kind not in documented:
                findings.append(
                    Finding(
                        rule=OBS_RULE_SLUG,
                        code=OBS_RULE_CODE,
                        path=summary.path,
                        line=line,
                        col=col,
                        message=(
                            f"record kind '{kind}' is emitted here but has "
                            "no row in the repro.obs/v1 table of "
                            "docs/OBSERVABILITY.md (the schema is "
                            "append-only: document it first)"
                        ),
                    )
                )
                continue
            allowed = documented[kind]
            extra = sorted(
                name
                for name in fields
                if name != "record" and name not in allowed
            )
            if extra:
                findings.append(
                    Finding(
                        rule=OBS_RULE_SLUG,
                        code=OBS_RULE_CODE,
                        path=summary.path,
                        line=line,
                        col=col,
                        message=(
                            f"record '{kind}' emits undocumented field(s) "
                            f"{', '.join(repr(n) for n in extra)}; add them "
                            "to the repro.obs/v1 table in "
                            "docs/OBSERVABILITY.md"
                        ),
                    )
                )
    return findings


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def analyze_xartifact(
    project: Project, artifacts: Artifacts
) -> List[Finding]:
    """Run REP401 + REP402 + REP403 over the assembled project."""
    findings = _MirrorChecker(project, artifacts).run()
    findings.extend(_check_snapshot_drift(project))
    findings.extend(_check_obs_schema(project, artifacts))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings

"""Finding records and the suppression-pragma syntax.

A pragma is a comment of the form::

    some_code()  # lint: allow-broad-except(worker guard must capture everything)

It suppresses findings of the named rule on its own line, or — when the
comment stands alone — on the line directly below it.  The
parenthesized reason is mandatory: suppressions without a recorded
rationale rot, so an empty or missing reason is reported as a finding
of the ``pragma`` pseudo-rule (which itself cannot be suppressed).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Code used for malformed pragmas (reserved; real rules use REP1xx+).
PRAGMA_CODE = "REP001"
PRAGMA_SLUG = "pragma"

#: ``# lint: allow-<slug>(<reason>)`` — the reason may be empty here so
#: the parser can flag it as malformed instead of silently ignoring it.
_PRAGMA_RE = re.compile(r"lint:\s*allow-([A-Za-z0-9_-]+)\(([^)]*)\)")
#: A marker the strict pattern did not match at all (an ``allow-<rule>``
#: written with the parenthesized reason forgotten).
_MARKER_RE = re.compile(r"lint:\s*allow-[A-Za-z0-9_-]+")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: Rule slug (the name used in suppression pragmas).
        code: Stable rule code (``REP101`` ...).
        path: Path of the offending file, as given to the linter.
        line: 1-based line number.
        col: 0-based column offset (the text formatter prints it
            1-based, editor-style; ``to_record`` keeps the raw offset).
        message: Human-readable description of the violation.
        trace: For interprocedural findings, the call path from the
            reported site back to the nondeterministic origin — one
            ``"name() at path:line"`` string per hop.
        suppress_lines: Extra lines (beyond the finding's own line and
            the line above) where a pragma counts as covering this
            finding — the ``def``/first-decorator lines of a decorated
            definition.  Presentation metadata: not part of the record
            schema.
    """

    rule: str
    code: str
    path: str
    line: int
    col: int
    message: str
    trace: Tuple[str, ...] = ()
    suppress_lines: Tuple[int, ...] = ()

    def format(self) -> str:
        text = (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.code} [{self.rule}] {self.message}"
        )
        for hop in self.trace:
            text += f"\n    via {hop}"
        return text

    def to_record(self) -> Dict[str, object]:
        """The stable record schema (pinned by a golden test) — the
        ``suppress_lines`` presentation metadata is deliberately absent."""
        return {
            "rule": self.rule,
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "trace": list(self.trace),
        }

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "Finding":
        """Rebuild a finding from :meth:`to_record` output (cache load)."""
        return cls(
            rule=str(record["rule"]),
            code=str(record["code"]),
            path=str(record["path"]),
            line=int(record["line"]),  # type: ignore[call-overload]
            col=int(record["col"]),  # type: ignore[call-overload]
            message=str(record["message"]),
            trace=tuple(
                str(hop) for hop in record.get("trace", ())  # type: ignore[union-attr]
            ),
        )


def parse_pragmas(
    source: str, path: str
) -> Tuple[Dict[int, List[Tuple[str, str]]], List[Finding]]:
    """Extract suppression pragmas from ``source``.

    Returns ``(pragmas, problems)`` where ``pragmas`` maps a line number
    to the ``(slug, reason)`` pairs declared on it, and ``problems``
    holds findings for malformed pragmas (missing/empty reason).
    """
    pragmas: Dict[int, List[Tuple[str, str]]] = {}
    problems: List[Finding] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.start[1], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):
        # The AST parse will report the real syntax problem.
        return {}, []
    for line, col, text in comments:
        matched_spans = []
        for match in _PRAGMA_RE.finditer(text):
            matched_spans.append(match.span())
            slug = match.group(1)
            reason = match.group(2).strip()
            if not reason:
                problems.append(
                    Finding(
                        rule=PRAGMA_SLUG,
                        code=PRAGMA_CODE,
                        path=path,
                        line=line,
                        col=col,
                        message=(
                            f"pragma 'allow-{slug}' has an empty reason; write "
                            f"# lint: allow-{slug}(why this is intentional)"
                        ),
                    )
                )
                continue
            pragmas.setdefault(line, []).append((slug, reason))
        # A marker the strict pattern missed entirely: no parentheses.
        for marker in _MARKER_RE.finditer(text):
            if not any(
                start <= marker.start() < end for start, end in matched_spans
            ):
                problems.append(
                    Finding(
                        rule=PRAGMA_SLUG,
                        code=PRAGMA_CODE,
                        path=path,
                        line=line,
                        col=col,
                        message=(
                            "malformed lint pragma (missing parenthesized "
                            "reason): use # lint: allow-<rule>(reason)"
                        ),
                    )
                )
    return pragmas, problems


def is_suppressed(
    finding: Finding, pragmas: Dict[int, List[Tuple[str, str]]]
) -> bool:
    """True when a pragma on the finding's line (or the line above, or a
    declared extra anchor line such as a decorated ``def``) names its
    rule."""
    candidates = {finding.line, finding.line - 1}
    candidates.update(finding.suppress_lines)
    for line in sorted(candidates):
        for slug, _reason in pragmas.get(line, ()):
            if slug == finding.rule:
                return True
    return False

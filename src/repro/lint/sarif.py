"""SARIF 2.1.0 serialization of lint findings.

One run, one driver (``repro-lint``), rule metadata drawn from the
static catalogs so GitHub code scanning can render per-rule help.  Only
the stable subset of SARIF is emitted — ``ruleId``, ``message``, one
physical location per result — which is exactly what the PR-annotation
pipeline consumes.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Sequence

from repro.lint.findings import Finding
from repro.lint.rules import DEEP_RULES, RULES

__all__ = ["SARIF_VERSION", "to_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Pseudo-rules emitted by the engine rather than the catalogs.
_PSEUDO_RULES = (
    ("REP000", "io-error", "file could not be read or parsed"),
    ("REP001", "pragma", "malformed or reasonless suppression pragma"),
)


def _rule_catalog() -> List[Dict[str, Any]]:
    rules: List[Dict[str, Any]] = []
    seen = set()
    for code, slug, summary in _PSEUDO_RULES:
        rules.append(
            {
                "id": code,
                "name": slug,
                "shortDescription": {"text": summary},
            }
        )
        seen.add(code)
    for rule in RULES:
        if rule.code not in seen:
            seen.add(rule.code)
            rules.append(
                {
                    "id": rule.code,
                    "name": rule.slug,
                    "shortDescription": {"text": rule.summary},
                }
            )
    for info in DEEP_RULES:
        if info.code not in seen:
            seen.add(info.code)
            rules.append(
                {
                    "id": info.code,
                    "name": info.slug,
                    "shortDescription": {"text": info.summary},
                }
            )
    return rules


def _result(finding: Finding) -> Dict[str, Any]:
    text = finding.message
    for hop in finding.trace:
        text += f"\nvia {hop}"
    return {
        "ruleId": finding.code,
        "level": "error",
        "message": {"text": text},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace(os.sep, "/"),
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col + 1, 1),
                    },
                }
            }
        ],
    }


def to_sarif(findings: Sequence[Finding]) -> Dict[str, Any]:
    """The complete SARIF log object for one lint invocation."""
    return {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": _rule_catalog(),
                    }
                },
                "results": [_result(finding) for finding in findings],
            }
        ],
    }

"""Orchestration for ``repro lint``: cached parsing, parallel analysis,
and the whole-program (``--deep``) passes.

The per-file stage (read → parse → shallow rules → summarize) is a pure
function of the file's source, so it is cached content-addressed and
fanned out over a process pool when enough files miss.  The deep stage
(taint + cross-artifact) is a pure function of the project summaries
plus the non-Python artifacts, cached per module keyed by its
transitive-import closure — see :mod:`repro.lint.cache` for the keying
discipline.

Internal analyzer errors are collected on a separate channel from
findings: the CLI maps findings to exit 1 and analyzer errors to
exit 2, so CI can distinguish "the tree is dirty" from "the linter is
broken".
"""

from __future__ import annotations

import concurrent.futures
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.lint.cache import CacheStats, LintCache, content_digest
from repro.lint.callgraph import build_callgraph
from repro.lint.engine import iter_python_files, parse_module, _check_module
from repro.lint.findings import Finding, is_suppressed
from repro.lint.project import ModuleSummary, Project, summarize_module
from repro.lint.rules import RULES
from repro.lint.taint import analyze_taint
from repro.lint.xartifact import (
    Artifacts,
    analyze_xartifact,
    discover_package_root,
)

__all__ = ["AnalysisResult", "DEFAULT_CACHE_DIR", "run_analysis"]

DEFAULT_CACHE_DIR = os.path.join(".repro-cache", "lint")

#: Pseudo-module key for deep findings attributed to non-Python
#: artifacts (mirror manifest, C source).
_PSEUDO = "<artifacts>"


@dataclass
class AnalysisResult:
    """Everything one ``repro lint`` invocation produced."""

    findings: List[Finding] = field(default_factory=list)
    stats: CacheStats = field(default_factory=CacheStats)
    #: Internal analyzer failures (not findings): "path: message".
    errors: List[str] = field(default_factory=list)


def _analyze_file(path: str) -> Dict[str, Any]:
    """Per-file stage, shaped for both in-process and pool execution.

    Returns a picklable payload: ``status`` is ``ok`` (summary +
    findings), ``finding`` (an REP000 pseudo-finding for io/syntax
    problems), or ``error`` (an internal analyzer fault).
    """
    try:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            return {
                "status": "finding",
                "path": path,
                "record": Finding(
                    rule="io-error",
                    code="REP000",
                    path=path,
                    line=1,
                    col=0,
                    message=f"cannot read file: {exc}",
                ).to_record(),
            }
        try:
            mod = parse_module(path, source)
        except SyntaxError as exc:
            return {
                "status": "finding",
                "path": path,
                "record": Finding(
                    rule="syntax-error",
                    code="REP000",
                    path=path,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}",
                ).to_record(),
            }
        findings = _check_module(mod, RULES)
        summary = summarize_module(mod)
        return {
            "status": "ok",
            "path": path,
            "source": source,
            "summary": summary.to_jsonable(),
            "findings": [f.to_record() for f in findings],
        }
    except Exception as exc:  # lint: allow-broad-except(analyzer-fault channel: any bug in a rule or the summarizer must surface as exit 2, not crash the whole run)
        return {
            "status": "error",
            "path": path,
            "message": f"{type(exc).__name__}: {exc}",
        }


def _run_file_stage(
    files: Sequence[str],
    cache: LintCache,
    stats: CacheStats,
    jobs: int,
) -> Tuple[List[Finding], Dict[str, ModuleSummary], Dict[str, str], List[str]]:
    """Read/parse/summarize every file, through the cache.

    Returns ``(shallow findings, summaries by path, source digest by
    path, errors)``.
    """
    findings: List[Finding] = []
    summaries: Dict[str, ModuleSummary] = {}
    digests: Dict[str, str] = {}
    errors: List[str] = []
    misses: List[str] = []
    miss_keys: Dict[str, str] = {}

    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            findings.append(
                Finding(
                    rule="io-error",
                    code="REP000",
                    path=path,
                    line=1,
                    col=0,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        key = cache.module_key(source)
        entry = cache.load_module(key)
        if entry is not None:
            try:
                summary = ModuleSummary.from_jsonable(entry["summary"])
                cached = [
                    Finding.from_record(record)
                    for record in entry.get("findings", ())
                ]
            except (KeyError, TypeError, ValueError):
                entry = None  # corrupt entry: fall through to a miss
            else:
                stats.parse_hits += 1
                summaries[path] = summary
                digests[path] = content_digest(source)
                findings.extend(cached)
        if entry is None:
            misses.append(path)
            miss_keys[path] = key
            digests[path] = content_digest(source)

    results = _analyze_many(misses, jobs)
    for payload in results:
        path = str(payload["path"])
        status = payload["status"]
        if status == "ok":
            stats.parse_misses += 1
            summary = ModuleSummary.from_jsonable(payload["summary"])
            fresh = [
                Finding.from_record(record)
                for record in payload["findings"]
            ]
            summaries[path] = summary
            findings.extend(fresh)
            key = miss_keys.get(path) or cache.module_key(
                str(payload["source"])
            )
            cache.store_module(key, summary, fresh)
        elif status == "finding":
            findings.append(Finding.from_record(payload["record"]))
            digests.pop(path, None)
        else:
            errors.append(f"{path}: {payload['message']}")
            digests.pop(path, None)
    return findings, summaries, digests, errors


def _analyze_many(paths: Sequence[str], jobs: int) -> List[Dict[str, Any]]:
    """Fan the per-file stage out over a pool, falling back to serial."""
    if jobs > 1 and len(paths) > 3:
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=jobs
            ) as pool:
                return list(pool.map(_analyze_file, paths))
        except Exception:  # lint: allow-broad-except(a pool that cannot start or dies mid-flight — no semaphores, fork forbidden — must degrade to the serial path, not abort the lint)
            pass
    return [_analyze_file(path) for path in paths]


def _deep_stage(
    summaries: Dict[str, ModuleSummary],
    digests: Dict[str, str],
    cache: LintCache,
    stats: CacheStats,
) -> Tuple[List[Finding], List[str]]:
    """The whole-program passes, through the per-module deep cache."""
    project = Project(summaries.values())
    package_root = discover_package_root(project)
    artifacts = (
        Artifacts.from_package_root(package_root)
        if package_root is not None
        else Artifacts(digest="no-artifacts")
    )

    module_digest = {
        summary.module: digests[path]
        for path, summary in summaries.items()
        if path in digests
    }
    project_digest = content_digest(
        "\x00".join(sorted(module_digest.values()))
    )
    # Adding/removing a module can change name resolution in modules
    # whose own closure is untouched, so the module-name roster is part
    # of every deep key (editing a module never changes it).
    roster_digest = content_digest("\x00".join(sorted(project.modules)))

    keys: Dict[str, str] = {}
    for name, summary in project.modules.items():
        if name not in module_digest:
            continue
        dep_digests = [
            module_digest[dep]
            for dep in project.transitive_deps(name)
            if dep in module_digest
        ]
        dep_digests.append(roster_digest)
        keys[name] = cache.deep_key(
            module_digest[name], dep_digests, artifacts.digest
        )
    keys[_PSEUDO] = cache.deep_key(project_digest, (), artifacts.digest)

    cached: Dict[str, List[Finding]] = {}
    missed: List[str] = []
    for name in sorted(keys):
        records = cache.load_deep(keys[name])
        if records is None:
            missed.append(name)
        else:
            cached[name] = [Finding.from_record(r) for r in records]
    stats.deep_hits += len(cached)
    stats.deep_misses += len(missed)
    stats.reanalyzed.extend(
        project.modules[name].rel for name in missed if name in project.modules
    )

    findings: List[Finding] = []
    errors: List[str] = []
    for rows in cached.values():
        findings.extend(rows)
    if missed:
        try:
            graph = build_callgraph(project)
            computed = analyze_taint(graph)
            computed.extend(analyze_xartifact(project, artifacts))
        except Exception as exc:  # lint: allow-broad-except(analyzer-fault channel: a bug in the deep passes must surface as exit 2, not a traceback)
            errors.append(f"deep analysis failed: {type(exc).__name__}: {exc}")
            return findings, errors
        by_path = {summary.path: summary for summary in project.modules.values()}
        by_module: Dict[str, List[Finding]] = {name: [] for name in keys}
        for finding in computed:
            owner = by_path.get(finding.path)
            if owner is not None and is_suppressed(finding, owner.pragmas):
                continue
            bucket = owner.module if owner is not None else _PSEUDO
            by_module.setdefault(bucket, []).append(finding)
        for name in missed:
            rows = by_module.get(name, [])
            findings.extend(rows)
            cache.store_deep(keys[name], rows)
    return findings, errors


def run_analysis(
    paths: Sequence[str],
    *,
    deep: bool = False,
    use_cache: bool = True,
    cache_dir: str = DEFAULT_CACHE_DIR,
    jobs: Optional[int] = None,
    select: Optional[Sequence[str]] = None,
) -> AnalysisResult:
    """Run the linter over ``paths``; the single entry point the CLI uses.

    ``select`` filters the final findings to codes matching any of the
    given prefixes (``["REP1"]`` keeps the determinism family only).
    """
    if jobs is None or jobs <= 0:
        jobs = min(os.cpu_count() or 1, 8)
    cache = LintCache(cache_dir, enabled=use_cache)
    result = AnalysisResult(stats=CacheStats(enabled=use_cache))

    files = list(iter_python_files(paths))
    shallow, summaries, digests, errors = _run_file_stage(
        files, cache, result.stats, jobs
    )
    result.findings.extend(shallow)
    result.errors.extend(errors)

    if deep and summaries:
        deep_findings, deep_errors = _deep_stage(
            summaries, digests, cache, result.stats
        )
        result.findings.extend(deep_findings)
        result.errors.extend(deep_errors)

    if select:
        prefixes = tuple(prefix.strip() for prefix in select if prefix.strip())
        if prefixes:
            result.findings = [
                finding
                for finding in result.findings
                if finding.code.startswith(prefixes)
            ]
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return result

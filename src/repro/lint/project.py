"""Project-wide symbol table: one :class:`ModuleSummary` per module.

The whole-program passes (:mod:`repro.lint.taint`,
:mod:`repro.lint.xartifact`) never touch an AST — they work over
*module summaries*: small, JSON-serializable digests of everything the
interprocedural analyses need (name bindings, per-function taint
skeletons, class layouts, emitted record literals, pragmas).  The split
buys three things at once:

* **Parallel parsing.**  Summaries are plain data, so the parse +
  shallow-rules + summarize step fans out over a process pool and the
  results merge deterministically in the parent.
* **Incremental caching.**  A summary is a pure function of the module
  source and the analyzer itself, so it is content-addressed under
  ``.repro-cache/lint/`` (:mod:`repro.lint.cache`); a second run over an
  unchanged tree re-analyzes nothing.
* **Cheap fixpoints.**  The interprocedural fixpoint iterates over a few
  hundred function skeletons, not a few hundred thousand AST nodes.

:class:`Project` assembles the summaries, exposes the import-dependency
graph (used to key the per-module deep-finding cache: a module's deep
findings depend on its own summary plus the summaries of everything it
transitively imports), and is the input to
:func:`repro.lint.callgraph.build_callgraph`.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.lint.engine import ParsedModule, parse_module

__all__ = [
    "ClassSummary",
    "FunctionSummary",
    "Influence",
    "ModuleSummary",
    "Project",
    "module_name_for",
    "summarize_module",
]


# ----------------------------------------------------------------------
# Nondeterminism sources
# ----------------------------------------------------------------------
#: ``random``-module callables (kept in sync with rules._RANDOM_BANNED).
_RANDOM_FUNCS = frozenset(
    {
        "random", "seed", "randint", "randrange", "randbytes", "choice",
        "choices", "shuffle", "sample", "uniform", "gauss", "expovariate",
        "normalvariate", "lognormvariate", "betavariate", "gammavariate",
        "triangular", "vonmisesvariate", "paretovariate", "weibullvariate",
        "getrandbits", "binomialvariate", "Random", "SystemRandom",
    }
)
_WALLCLOCK_FUNCS = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns",
    }
)
_UUID_FUNCS = frozenset({"uuid1", "uuid4"})

#: kind -> human description used in taint finding messages.
SOURCE_KINDS: Dict[str, str] = {
    "module-random": "a global-random draw",
    "wallclock": "a wall-clock read",
    "os-urandom": "os.urandom() entropy",
    "uuid": "a random UUID",
    "object-id": "an id() value (address-dependent)",
    "object-hash": "a hash() value (PYTHONHASHSEED-dependent for strings)",
    "set-order": "set iteration order (hash/history-dependent)",
}


# ----------------------------------------------------------------------
# Summary records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Influence:
    """What feeds one expression: direct nondet sources, call results,
    and (already-resolved-away at summary time) local names.

    ``sources`` rows are ``(kind, line, col)``; ``calls`` rows are
    ``(raw_callee, line, col)`` where ``raw_callee`` is the dotted name
    as written (``self._helper``, ``rng_stream``, ``mod.func``).
    """

    sources: Tuple[Tuple[str, int, int], ...] = ()
    calls: Tuple[Tuple[str, int, int], ...] = ()

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "sources": [list(row) for row in self.sources],
            "calls": [list(row) for row in self.calls],
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "Influence":
        return cls(
            sources=tuple(
                (str(k), int(l), int(c)) for k, l, c in data.get("sources", ())
            ),
            calls=tuple(
                (str(k), int(l), int(c)) for k, l, c in data.get("calls", ())
            ),
        )

    def merged(self, other: "Influence") -> "Influence":
        return Influence(
            sources=self.sources + other.sources,
            calls=self.calls + other.calls,
        )

    @property
    def empty(self) -> bool:
        return not self.sources and not self.calls


@dataclass(frozen=True)
class FunctionSummary:
    """The taint skeleton of one function or method."""

    #: Qualified name within the module (``Class.method`` or ``func``).
    qualname: str
    line: int
    col: int
    #: Enclosing class name, or "" for module-level functions.
    owner: str = ""
    #: What feeds this function's return value.
    returns: Influence = field(default_factory=Influence)
    #: ``self.<attr> = expr`` writes: (attr, line, col, influence).
    state_writes: Tuple[Tuple[str, int, int, Influence], ...] = ()
    #: Event-time arguments of schedule/post/post_in calls:
    #: (scheduler name, line, col, influence of the time/delay arg).
    time_args: Tuple[Tuple[str, int, int, Influence], ...] = ()
    #: Every call site (raw name, line) — the call-graph edge list.
    calls: Tuple[Tuple[str, int], ...] = ()

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "col": self.col,
            "owner": self.owner,
            "returns": self.returns.to_jsonable(),
            "state_writes": [
                [attr, line, col, influence.to_jsonable()]
                for attr, line, col, influence in self.state_writes
            ],
            "time_args": [
                [name, line, col, influence.to_jsonable()]
                for name, line, col, influence in self.time_args
            ],
            "calls": [list(row) for row in self.calls],
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=str(data["qualname"]),
            line=int(data["line"]),
            col=int(data["col"]),
            owner=str(data.get("owner", "")),
            returns=Influence.from_jsonable(data.get("returns", {})),
            state_writes=tuple(
                (str(attr), int(line), int(col), Influence.from_jsonable(inf))
                for attr, line, col, inf in data.get("state_writes", ())
            ),
            time_args=tuple(
                (str(name), int(line), int(col), Influence.from_jsonable(inf))
                for name, line, col, inf in data.get("time_args", ())
            ),
            calls=tuple((str(n), int(l)) for n, l in data.get("calls", ())),
        )


@dataclass(frozen=True)
class ClassSummary:
    """Layout facts about one class definition."""

    name: str
    line: int
    #: Base-class names as written (resolved against bindings later).
    bases: Tuple[str, ...] = ()
    #: ``__slots__`` entries when declared as a literal.
    slots: Tuple[str, ...] = ()
    has_slots: bool = False
    #: Method names defined in the class body (including properties).
    methods: Tuple[str, ...] = ()
    #: Attributes assigned on ``self`` anywhere in the class body, with
    #: the first assignment site: name -> (line, col).
    self_attrs: Tuple[Tuple[str, int, int], ...] = ()
    #: ``self.<attr> = <wiring>`` assignments that look like engine
    #: wiring (see xartifact.py): (attr, line, col, why).
    wiring_writes: Tuple[Tuple[str, int, int, str], ...] = ()
    #: Literal names in a class-body ``_SNAPSHOT_EXCLUDE`` assignment.
    snapshot_exclude: Tuple[str, ...] = ()
    #: Raw dotted base reference in ``Base._SNAPSHOT_EXCLUDE | {...}``.
    snapshot_exclude_base: str = ""
    #: True when the class body assigns ``_SNAPSHOT_EXCLUDE`` at all.
    has_snapshot_exclude: bool = False
    #: True when the exclude expression could not be resolved statically.
    snapshot_exclude_dynamic: bool = False

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "bases": list(self.bases),
            "slots": list(self.slots),
            "has_slots": self.has_slots,
            "methods": list(self.methods),
            "self_attrs": [list(row) for row in self.self_attrs],
            "wiring_writes": [list(row) for row in self.wiring_writes],
            "snapshot_exclude": list(self.snapshot_exclude),
            "snapshot_exclude_base": self.snapshot_exclude_base,
            "has_snapshot_exclude": self.has_snapshot_exclude,
            "snapshot_exclude_dynamic": self.snapshot_exclude_dynamic,
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "ClassSummary":
        return cls(
            name=str(data["name"]),
            line=int(data["line"]),
            bases=tuple(str(b) for b in data.get("bases", ())),
            slots=tuple(str(s) for s in data.get("slots", ())),
            has_slots=bool(data.get("has_slots", False)),
            methods=tuple(str(m) for m in data.get("methods", ())),
            self_attrs=tuple(
                (str(n), int(l), int(c)) for n, l, c in data.get("self_attrs", ())
            ),
            wiring_writes=tuple(
                (str(n), int(l), int(c), str(w))
                for n, l, c, w in data.get("wiring_writes", ())
            ),
            snapshot_exclude=tuple(
                str(n) for n in data.get("snapshot_exclude", ())
            ),
            snapshot_exclude_base=str(data.get("snapshot_exclude_base", "")),
            has_snapshot_exclude=bool(data.get("has_snapshot_exclude", False)),
            snapshot_exclude_dynamic=bool(
                data.get("snapshot_exclude_dynamic", False)
            ),
        )


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the whole-program passes need from one module."""

    #: Dotted module name (``repro.tcp.base``; loose files use stems).
    module: str
    #: Path relative to the repro package root (rule-scoping key).
    rel: str
    #: Path as given to the linter (finding attribution).
    path: str
    #: Local name -> dotted target for imports (``rng`` ->
    #: ``repro.sim.rng``, ``stream`` -> ``repro.sim.rng.stream``).
    bindings: Dict[str, str] = field(default_factory=dict)
    #: Dotted modules this module imports (project-graph edges are the
    #: subset that resolves to project modules).
    imports: Tuple[str, ...] = ()
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    #: ``{"record": "<kind>", ...}`` literals: (kind, fields, dynamic,
    #: line, col) — ``dynamic`` marks ``**``-expansions / computed keys.
    record_literals: Tuple[Tuple[str, Tuple[str, ...], bool, int, int], ...] = ()
    #: Suppression pragmas (line -> [(slug, reason)]), carried in the
    #: summary so cached deep passes can honor them without re-parsing.
    pragmas: Dict[int, List[Tuple[str, str]]] = field(default_factory=dict)

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "rel": self.rel,
            "path": self.path,
            "bindings": dict(self.bindings),
            "imports": list(self.imports),
            "functions": {
                name: fn.to_jsonable() for name, fn in self.functions.items()
            },
            "classes": {
                name: klass.to_jsonable()
                for name, klass in self.classes.items()
            },
            "record_literals": [
                [kind, list(fields), dynamic, line, col]
                for kind, fields, dynamic, line, col in self.record_literals
            ],
            "pragmas": {
                str(line): [list(pair) for pair in pairs]
                for line, pairs in self.pragmas.items()
            },
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "ModuleSummary":
        return cls(
            module=str(data["module"]),
            rel=str(data["rel"]),
            path=str(data["path"]),
            bindings={str(k): str(v) for k, v in data.get("bindings", {}).items()},
            imports=tuple(str(m) for m in data.get("imports", ())),
            functions={
                str(name): FunctionSummary.from_jsonable(fn)
                for name, fn in data.get("functions", {}).items()
            },
            classes={
                str(name): ClassSummary.from_jsonable(klass)
                for name, klass in data.get("classes", {}).items()
            },
            record_literals=tuple(
                (
                    str(kind),
                    tuple(str(f) for f in fields),
                    bool(dynamic),
                    int(line),
                    int(col),
                )
                for kind, fields, dynamic, line, col in data.get(
                    "record_literals", ()
                )
            ),
            pragmas={
                int(line): [(str(slug), str(reason)) for slug, reason in pairs]
                for line, pairs in data.get("pragmas", {}).items()
            },
        )


# ----------------------------------------------------------------------
# Dotted-module-name derivation
# ----------------------------------------------------------------------
def module_name_for(path: str, rel: str) -> str:
    """Dotted module name for a file.

    Files under a ``repro`` package dir get their real import name
    (``repro.tcp.base``); loose files (tests, fixtures) get a stable
    stand-in derived from the filename — they can still *be* analyzed,
    they just cannot be the target of an absolute ``repro.*`` import.
    """
    parts = os.path.normpath(path).split(os.sep)
    if "repro" in parts:
        tail = rel[:-3] if rel.endswith(".py") else rel
        dotted = "repro." + tail.replace("/", ".") if tail else "repro"
        if dotted.endswith(".__init__"):
            dotted = dotted[: -len(".__init__")]
        return dotted
    stem = parts[-1]
    if stem.endswith(".py"):
        stem = stem[:-3]
    return stem


# ----------------------------------------------------------------------
# Expression influence extraction
# ----------------------------------------------------------------------
_SCHEDULER_TIME_ARG0 = frozenset({"schedule", "post"})
_SCHEDULER_DELAY_ARG0 = frozenset({"schedule_in", "post_in", "_post_in"})


def _call_raw_name(func: ast.expr) -> Optional[str]:
    """The call target as a dotted string, or None when dynamic."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ExprInfo:
    """Mutable influence accumulator for one expression walk."""

    __slots__ = ("sources", "calls", "names")

    def __init__(self) -> None:
        self.sources: List[Tuple[str, int, int]] = []
        self.calls: List[Tuple[str, int, int]] = []
        self.names: List[str] = []


class _ModuleIndexer:
    """One pass over a parsed module producing its :class:`ModuleSummary`."""

    def __init__(self, mod: ParsedModule) -> None:
        self.mod = mod
        self.module = module_name_for(mod.path, mod.rel)
        self.bindings: Dict[str, str] = {}
        self.imports: List[str] = []
        self.functions: Dict[str, FunctionSummary] = {}
        self.classes: Dict[str, ClassSummary] = {}
        self.record_literals: List[
            Tuple[str, Tuple[str, ...], bool, int, int]
        ] = []

    # -- imports -------------------------------------------------------
    def _package(self) -> str:
        """The package containing this module (for relative imports)."""
        if self.mod.rel.endswith("__init__.py"):
            return self.module
        return self.module.rpartition(".")[0]

    def _index_imports(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    self.imports.append(item.name)
                    self.bindings[item.asname or item.name.split(".")[0]] = (
                        item.name if item.asname else item.name.split(".")[0]
                    )
                    if item.asname is None and "." in item.name:
                        # `import a.b.c` binds `a`; record the full path
                        # too so `a.b.c.f()` resolves.
                        self.bindings[item.name] = item.name
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    package = self._package()
                    for _ in range(node.level - 1):
                        package = package.rpartition(".")[0]
                    base = f"{package}.{base}" if base else package
                for item in node.names:
                    if item.name == "*":
                        # Only a star import depends on the package
                        # itself; named imports are tracked per target
                        # below, which keeps the dependency graph (and
                        # therefore deep-cache invalidation) tight.
                        if base:
                            self.imports.append(base)
                        continue
                    target = f"{base}.{item.name}" if base else item.name
                    self.bindings[item.asname or item.name] = target
                    # `from repro.sim import rng` imports a module too.
                    self.imports.append(target)

    # -- expression influence ------------------------------------------
    def _source_kind(self, node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "id":
                return "object-id"
            if func.id == "hash":
                return "object-hash"
            target = self.bindings.get(func.id, "")
            tail = target.rpartition(".")[2]
            if target.startswith("random.") and tail in _RANDOM_FUNCS:
                return "module-random"
            if target.startswith("time.") and tail in _WALLCLOCK_FUNCS:
                return "wallclock"
            if target == "os.urandom":
                return "os-urandom"
            if target.startswith("uuid.") and tail in _UUID_FUNCS:
                return "uuid"
            if target.startswith("secrets."):
                return "os-urandom"
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner = self.bindings.get(func.value.id, "")
            if owner == "random" and func.attr in _RANDOM_FUNCS:
                return "module-random"
            if owner == "time" and func.attr in _WALLCLOCK_FUNCS:
                return "wallclock"
            if owner == "os" and func.attr == "urandom":
                return "os-urandom"
            if owner == "uuid" and func.attr in _UUID_FUNCS:
                return "uuid"
            if owner == "secrets":
                return "os-urandom"
        return None

    def _expr_info(self, expr: ast.expr, info: _ExprInfo) -> None:
        """Accumulate sources/calls/names feeding ``expr``."""
        if isinstance(expr, ast.Name):
            info.names.append(expr.id)
            return
        if isinstance(expr, ast.Call):
            kind = self._source_kind(expr)
            line = expr.lineno
            col = expr.col_offset
            if kind is not None:
                info.sources.append((kind, line, col))
            else:
                raw = _call_raw_name(expr.func)
                if raw is not None:
                    info.calls.append((raw, line, col))
            for arg in expr.args:
                self._expr_info(arg, info)
            for keyword in expr.keywords:
                self._expr_info(keyword.value, info)
            return
        if isinstance(expr, (ast.Lambda,)):
            return  # a deferred body is not a value flow
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._expr_info(child, info)

    def _influence(
        self, expr: ast.expr, env: Mapping[str, Influence]
    ) -> Influence:
        """Influence of ``expr``, resolving local names through ``env``."""
        info = _ExprInfo()
        self._expr_info(expr, info)
        sources = list(info.sources)
        calls = list(info.calls)
        for name in info.names:
            bound = env.get(name)
            if bound is not None:
                sources.extend(bound.sources)
                calls.extend(bound.calls)
        return Influence(sources=tuple(sources), calls=tuple(calls))

    # -- functions -----------------------------------------------------
    def _is_set_iterable(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.id in ("set", "frozenset")
        return False

    def _walk_stmts(
        self, body: Sequence[ast.stmt]
    ) -> Tuple[List[ast.stmt], List[Tuple[ast.FunctionDef, str]]]:
        """Flatten a body, stopping at nested function/class scopes."""
        flat: List[ast.stmt] = []
        stack = list(body)
        while stack:
            stmt = stack.pop(0)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            flat.append(stmt)
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    stack.append(child)
                elif isinstance(child, list):  # pragma: no cover - ast quirk
                    stack.extend(
                        item for item in child if isinstance(item, ast.stmt)
                    )
        return flat, []

    def _summarize_function(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef", owner: str
    ) -> FunctionSummary:
        qualname = f"{owner}.{node.name}" if owner else node.name
        flat, _nested = self._walk_stmts(node.body)

        # Collect assignments once; iterate the name environment to a
        # fixpoint so `a = src(); b = a; self.x = b` resolves without
        # flow sensitivity.
        assignments: List[Tuple[str, ast.expr]] = []
        set_loops: List[Tuple[str, int, int]] = []
        for stmt in flat:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        assignments.append((target.id, stmt.value))
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    assignments.append((stmt.target.id, stmt.value))
            elif isinstance(stmt, ast.AugAssign):
                if isinstance(stmt.target, ast.Name):
                    assignments.append((stmt.target.id, stmt.value))
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                if isinstance(stmt.target, ast.Name) and self._is_set_iterable(
                    stmt.iter
                ):
                    set_loops.append(
                        (stmt.target.id, stmt.iter.lineno, stmt.iter.col_offset)
                    )

        env: Dict[str, Influence] = {}
        for name, line, col in set_loops:
            env[name] = Influence(sources=(("set-order", line, col),))
        for _ in range(8):  # fixpoint cap; chains longer than 8 are absurd
            changed = False
            for name, value in assignments:
                influence = self._influence(value, env)
                previous = env.get(name)
                if previous is None or (
                    set(influence.sources) - set(previous.sources)
                    or set(influence.calls) - set(previous.calls)
                ):
                    merged = (
                        influence
                        if previous is None
                        else Influence(
                            sources=tuple(
                                dict.fromkeys(previous.sources + influence.sources)
                            ),
                            calls=tuple(
                                dict.fromkeys(previous.calls + influence.calls)
                            ),
                        )
                    )
                    env[name] = merged
                    changed = True
            if not changed:
                break

        returns = Influence()
        state_writes: List[Tuple[str, int, int, Influence]] = []
        time_args: List[Tuple[str, int, int, Influence]] = []
        calls: List[Tuple[str, int]] = []

        for stmt in flat:
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                returns = returns.merged(self._influence(stmt.value, env))
            targets: Sequence[ast.expr] = ()
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets, value = (stmt.target,), stmt.value
            if value is not None:
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        influence = self._influence(value, env)
                        if not influence.empty:
                            state_writes.append(
                                (
                                    target.attr,
                                    target.lineno,
                                    target.col_offset,
                                    influence,
                                )
                            )

        for stmt in flat:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                raw = _call_raw_name(sub.func)
                if raw is None:
                    continue
                calls.append((raw, sub.lineno))
                tail = raw.rpartition(".")[2]
                if (
                    tail in _SCHEDULER_TIME_ARG0
                    or tail in _SCHEDULER_DELAY_ARG0
                ) and sub.args:
                    influence = self._influence(sub.args[0], env)
                    if not influence.empty:
                        time_args.append(
                            (tail, sub.lineno, sub.col_offset, influence)
                        )

        return FunctionSummary(
            qualname=qualname,
            line=node.lineno,
            col=node.col_offset,
            owner=owner,
            returns=returns,
            state_writes=tuple(state_writes),
            time_args=tuple(time_args),
            calls=tuple(dict.fromkeys(calls)),
        )

    # -- classes -------------------------------------------------------
    def _summarize_class(self, node: ast.ClassDef) -> ClassSummary:
        from repro.lint.xartifact import classify_wiring

        bases = []
        for base in node.bases:
            raw = _call_raw_name(base)
            if raw is not None:
                bases.append(raw)
        slots: List[str] = []
        has_slots = False
        methods: List[str] = []
        exclude: List[str] = []
        exclude_base = ""
        has_exclude = False
        exclude_dynamic = False

        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(stmt.name)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else (stmt.target,)
                )
                names = [
                    t.id for t in targets if isinstance(t, ast.Name)
                ]
                value = stmt.value
                if "__slots__" in names:
                    has_slots = True
                    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                        for element in value.elts:
                            if isinstance(element, ast.Constant) and isinstance(
                                element.value, str
                            ):
                                slots.append(element.value)
                if "_SNAPSHOT_EXCLUDE" in names and value is not None:
                    has_exclude = True
                    literal, base_ref, dynamic = _parse_exclude_expr(value)
                    exclude.extend(literal)
                    exclude_base = base_ref
                    exclude_dynamic = dynamic

        self_attrs: Dict[str, Tuple[int, int]] = {}
        wiring: List[Tuple[str, int, int, str]] = []
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = [arg.arg for arg in stmt.args.args]
            for sub in ast.walk(stmt):
                targets = ()
                value = None
                if isinstance(sub, ast.Assign):
                    targets, value = sub.targets, sub.value
                elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                    targets, value = (sub.target,), sub.value
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        if target.attr not in self_attrs:
                            self_attrs[target.attr] = (
                                target.lineno,
                                target.col_offset,
                            )
                        if value is not None:
                            why = classify_wiring(value, params, methods)
                            if why is not None:
                                wiring.append(
                                    (
                                        target.attr,
                                        target.lineno,
                                        target.col_offset,
                                        why,
                                    )
                                )

        return ClassSummary(
            name=node.name,
            line=node.lineno,
            bases=tuple(bases),
            slots=tuple(slots),
            has_slots=has_slots,
            methods=tuple(methods),
            self_attrs=tuple(
                (name, line, col)
                for name, (line, col) in sorted(self_attrs.items())
            ),
            wiring_writes=tuple(wiring),
            snapshot_exclude=tuple(exclude),
            snapshot_exclude_base=exclude_base,
            has_snapshot_exclude=has_exclude,
            snapshot_exclude_dynamic=exclude_dynamic,
        )

    # -- record literals -----------------------------------------------
    def _index_record_literals(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Dict):
                continue
            kind: Optional[str] = None
            fields: List[str] = []
            dynamic = False
            for key, value in zip(node.keys, node.values):
                if key is None:  # ** expansion
                    dynamic = True
                    continue
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    fields.append(key.value)
                    if key.value == "record" and isinstance(
                        value, ast.Constant
                    ) and isinstance(value.value, str):
                        kind = value.value
                else:
                    dynamic = True
            if kind is not None:
                self.record_literals.append(
                    (kind, tuple(fields), dynamic, node.lineno, node.col_offset)
                )

    # -- top level -----------------------------------------------------
    def run(self) -> ModuleSummary:
        tree = self.mod.tree
        self._index_imports(tree)
        self._index_record_literals(tree)
        assert isinstance(tree, ast.Module)
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = self._summarize_function(stmt, "")
            elif isinstance(stmt, ast.ClassDef):
                self.classes[stmt.name] = self._summarize_class(stmt)
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        summary = self._summarize_function(sub, stmt.name)
                        self.functions[summary.qualname] = summary
        return ModuleSummary(
            module=self.module,
            rel=self.mod.rel,
            path=self.mod.path,
            bindings=self.bindings,
            imports=tuple(dict.fromkeys(self.imports)),
            functions=self.functions,
            classes=self.classes,
            record_literals=tuple(self.record_literals),
            pragmas=self.mod.pragmas,
        )


def _parse_exclude_expr(
    value: ast.expr,
) -> Tuple[List[str], str, bool]:
    """Resolve a ``_SNAPSHOT_EXCLUDE`` expression.

    Handles the two idioms the tree uses — ``frozenset({...})`` literals
    and ``Base._SNAPSHOT_EXCLUDE | {...}`` unions — and reports anything
    else as dynamic (the checker then skips the class rather than guess).
    """
    names: List[str] = []
    base_ref = ""
    dynamic = False

    def collect(expr: ast.expr) -> None:
        nonlocal base_ref, dynamic
        if isinstance(expr, ast.Call) and _call_raw_name(expr.func) in (
            "frozenset",
            "set",
        ):
            if expr.args:
                collect(expr.args[0])
            return
        if isinstance(expr, (ast.Set, ast.Tuple, ast.List)):
            for element in expr.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.append(element.value)
                else:
                    dynamic = True
            return
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
            collect(expr.left)
            collect(expr.right)
            return
        raw = _call_raw_name(expr)
        if raw is not None and raw.endswith("._SNAPSHOT_EXCLUDE"):
            base_ref = raw[: -len("._SNAPSHOT_EXCLUDE")]
            return
        dynamic = True

    collect(value)
    return names, base_ref, dynamic


def summarize_module(mod: ParsedModule) -> ModuleSummary:
    """Produce the :class:`ModuleSummary` for one parsed module."""
    return _ModuleIndexer(mod).run()


# ----------------------------------------------------------------------
# Project
# ----------------------------------------------------------------------
class Project:
    """All module summaries plus derived cross-module indexes."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        #: module dotted name -> summary (insertion order = sorted rel).
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in sorted(summaries, key=lambda s: s.path):
            self.modules[summary.module] = summary
        #: module -> project modules its *analysis* can reach.  Edges
        #: come from bindings the analyses actually resolve through —
        #: call-site heads, class bases, ``_SNAPSHOT_EXCLUDE`` base
        #: refs — not from raw import statements: a module imported
        #: only for attribute access (``import repro`` to read
        #: ``__version__``) cannot influence any finding, and counting
        #: it would chain half the tree through the re-export hubs and
        #: gut deep-cache incrementality.  Package ``__init__`` modules
        #: keep edges for *all* their bindings: re-exporting is their
        #: function, and name resolution traverses them.
        self.deps: Dict[str, Tuple[str, ...]] = {}
        for name, summary in self.modules.items():
            deps = []
            for target in self._used_targets(summary):
                resolved = self._resolve_module(target)
                if resolved is not None and resolved != name:
                    deps.append(resolved)
            self.deps[name] = tuple(dict.fromkeys(deps))

    @staticmethod
    def _used_targets(summary: ModuleSummary) -> List[str]:
        """Dotted targets the analyses may resolve through, in order."""
        targets: List[str] = []
        if summary.rel.endswith("__init__.py"):
            targets.extend(summary.bindings.values())
        heads: List[str] = []
        for fn in summary.functions.values():
            for raw, _line in fn.calls:
                heads.append(raw)
        for klass in summary.classes.values():
            heads.extend(klass.bases)
            if klass.snapshot_exclude_base:
                heads.append(klass.snapshot_exclude_base)
        for raw in heads:
            head, _, rest = raw.partition(".")
            if head in ("self", "cls"):
                continue
            bound = summary.bindings.get(head)
            if bound is None:
                continue
            targets.append(f"{bound}.{rest}" if rest else bound)
        return targets

    def _resolve_module(self, dotted: str) -> Optional[str]:
        """Longest project-module prefix of a dotted import target."""
        candidate = dotted
        while candidate:
            if candidate in self.modules:
                return candidate
            candidate = candidate.rpartition(".")[0]
        return None

    def transitive_deps(self, module: str) -> Tuple[str, ...]:
        """All project modules reachable from ``module`` via imports."""
        seen: Set[str] = set()
        stack = list(self.deps.get(module, ()))
        while stack:
            dep = stack.pop()
            if dep in seen:
                continue
            seen.add(dep)
            stack.extend(self.deps.get(dep, ()))
        return tuple(sorted(seen))

    def dependents(self, module: str) -> Tuple[str, ...]:
        """All project modules that transitively import ``module``."""
        return tuple(
            sorted(
                name
                for name in self.modules
                if name != module and module in self.transitive_deps(name)
            )
        )

    def find_class(
        self, module: str, name: str
    ) -> Optional[Tuple[str, ClassSummary]]:
        """Resolve ``name`` (as written in ``module``) to a class."""
        summary = self.modules.get(module)
        if summary is None:
            return None
        if name in summary.classes:
            return module, summary.classes[name]
        target = summary.bindings.get(name)
        if target is None:
            return None
        owner = self._resolve_module(target)
        if owner is None:
            return None
        class_name = target[len(owner) + 1 :] if target != owner else ""
        owner_summary = self.modules.get(owner)
        if owner_summary is not None and class_name in owner_summary.classes:
            return owner, owner_summary.classes[class_name]
        return None

    def class_mro(
        self, module: str, name: str
    ) -> List[Tuple[str, ClassSummary]]:
        """The class plus its project-resolvable bases, MRO-ish order."""
        result: List[Tuple[str, ClassSummary]] = []
        seen: Set[Tuple[str, str]] = set()

        def visit(mod_name: str, class_name: str) -> None:
            if (mod_name, class_name) in seen:
                return
            seen.add((mod_name, class_name))
            found = self.find_class(mod_name, class_name)
            if found is None:
                return
            owner, summary = found
            result.append((owner, summary))
            for base in summary.bases:
                visit(owner, base.rpartition(".")[2] if "." in base else base)

        visit(module, name)
        return result

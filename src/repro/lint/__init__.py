"""Project-specific static analysis (``repro lint``).

The simulator's correctness rests on invariants that ordinary tooling
cannot see: determinism (every random draw must come from the seeded
:class:`~repro.sim.rng.RngRegistry`, never the wall clock or the global
``random`` module), hot-path discipline (the PR 4 engine overhaul
assumes ``__slots__`` classes and allocation-free ``post``/``post_in``
dispatch), and hygiene rules whose violation fails *silently* (broad
``except`` swallowing a :class:`~repro.sim.errors.SimulationError`,
float ``==`` on simulated time).  This package is a small AST-based
linter that enforces them mechanically — see ``docs/STATIC_ANALYSIS.md``
for the rule catalog and the rationale behind each rule.

Usage::

    python -m repro lint src/repro          # CLI (exit 1 on findings)

    from repro.lint import lint_paths, lint_source
    findings = lint_paths(["src/repro"])    # importable API

Suppression: append ``# lint: allow-<rule>(reason)`` to the offending
line, or put it on the line directly above.  The reason is mandatory —
a pragma without one is itself a finding.
"""

from __future__ import annotations

from repro.lint.deep import AnalysisResult, run_analysis
from repro.lint.engine import (
    ParsedModule,
    iter_python_files,
    lint_paths,
    lint_source,
    parse_module,
)
from repro.lint.findings import Finding, parse_pragmas
from repro.lint.rules import (
    DEEP_RULES,
    RULES,
    DeepRuleInfo,
    Rule,
    deep_rule_by_slug,
    rule_by_slug,
)
from repro.lint.sarif import to_sarif

__all__ = [
    "AnalysisResult",
    "DEEP_RULES",
    "DeepRuleInfo",
    "Finding",
    "ParsedModule",
    "RULES",
    "Rule",
    "deep_rule_by_slug",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "parse_module",
    "parse_pragmas",
    "rule_by_slug",
    "run_analysis",
    "to_sarif",
]

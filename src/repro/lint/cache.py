"""Content-hashed incremental cache for the whole-program analyzer.

Layout (under ``.repro-cache/lint/`` by default)::

    modules/<key>.json   one per source file: its ModuleSummary plus the
                         already-suppressed shallow findings
    deep/<key>.json      one per source file: the deep (REP1xx-inter,
                         REP4xx) findings attributed to that file
    deep/<key>.json      plus one *project pseudo-entry* for deep
                         findings attributed to non-Python artifacts
                         (the mirror manifest, the C source)

Keying is pure content addressing — no mtimes, no manifest file, no
invalidation protocol:

* every key mixes in :func:`analyzer_signature`, a digest of the
  analyzer's own sources, so upgrading the linter silently discards the
  whole cache;
* a module entry is keyed by its source text, so touching a file
  without changing it still hits;
* a deep entry is keyed by the module's digest **plus the digests of
  every module it transitively imports plus the artifacts digest** —
  editing one module therefore invalidates exactly itself and its
  dependents, which is what makes the cache-hit stats a meaningful
  incrementality assertion.

Stale entries are never reused (their keys are simply never derived
again) and never collected; the cache directory is safe to delete at
any time.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.lint.findings import Finding
from repro.lint.project import ModuleSummary

__all__ = [
    "CacheStats",
    "LintCache",
    "analyzer_signature",
    "content_digest",
]

_ANALYZER_SIG: Optional[str] = None


def analyzer_signature() -> str:
    """Digest of the analyzer's own source files (cached per process)."""
    global _ANALYZER_SIG
    if _ANALYZER_SIG is None:
        hasher = hashlib.sha256()
        package_dir = os.path.dirname(os.path.abspath(__file__))
        for name in sorted(os.listdir(package_dir)):
            if not name.endswith(".py"):
                continue
            hasher.update(name.encode("utf-8"))
            hasher.update(b"\x00")
            with open(os.path.join(package_dir, name), "rb") as handle:
                hasher.update(handle.read())
            hasher.update(b"\x00")
        _ANALYZER_SIG = hasher.hexdigest()
    return _ANALYZER_SIG


def content_digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting, printed by ``repro lint --stats`` and pinned
    by the incrementality tests."""

    enabled: bool = True
    parse_hits: int = 0
    parse_misses: int = 0
    deep_hits: int = 0
    deep_misses: int = 0
    #: rels of the modules whose deep entries had to be recomputed.
    reanalyzed: List[str] = field(default_factory=list)

    def to_record(self) -> Dict[str, object]:
        return {
            "enabled": self.enabled,
            "parse_hits": self.parse_hits,
            "parse_misses": self.parse_misses,
            "deep_hits": self.deep_hits,
            "deep_misses": self.deep_misses,
            "reanalyzed": sorted(self.reanalyzed),
        }


class LintCache:
    """File-backed summary + deep-finding store.

    All IO failures degrade to cache misses (a torn write, a read-only
    directory, a corrupt entry) — the linter must never fail because its
    cache did.
    """

    def __init__(self, cache_dir: str, enabled: bool = True) -> None:
        self.cache_dir = cache_dir
        self.enabled = enabled

    # -- keys ----------------------------------------------------------
    def module_key(self, source: str) -> str:
        return content_digest(analyzer_signature() + "\x00" + source)

    def deep_key(
        self,
        module_digest: str,
        dep_digests: Sequence[str],
        artifacts_digest: str,
    ) -> str:
        parts = [analyzer_signature(), module_digest]
        parts.extend(sorted(dep_digests))
        parts.append(artifacts_digest)
        return content_digest("\x00".join(parts))

    # -- raw entry IO --------------------------------------------------
    def _entry_path(self, bucket: str, key: str) -> str:
        return os.path.join(self.cache_dir, bucket, key + ".json")

    def _load(self, bucket: str, key: str) -> Optional[Dict[str, Any]]:
        if not self.enabled:
            return None
        try:
            with open(
                self._entry_path(bucket, key), "r", encoding="utf-8"
            ) as handle:
                loaded = json.load(handle)
        except (OSError, ValueError):
            return None
        return loaded if isinstance(loaded, dict) else None

    def _store(self, bucket: str, key: str, payload: Dict[str, Any]) -> None:
        if not self.enabled:
            return
        directory = os.path.join(self.cache_dir, bucket)
        try:
            os.makedirs(directory, exist_ok=True)
            descriptor, tmp_path = tempfile.mkstemp(
                dir=directory, suffix=".tmp"
            )
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_path, self._entry_path(bucket, key))
        except OSError:
            return  # a failed cache write must never fail the lint run

    # -- module summaries ----------------------------------------------
    def load_module(
        self, key: str
    ) -> Optional[Dict[str, Any]]:
        """``{"summary": ..., "findings": [...]}`` or None on miss."""
        entry = self._load("modules", key)
        if entry is None or "summary" not in entry:
            return None
        return entry

    def store_module(
        self,
        key: str,
        summary: ModuleSummary,
        findings: Sequence[Finding],
    ) -> None:
        self._store(
            "modules",
            key,
            {
                "summary": summary.to_jsonable(),
                "findings": [f.to_record() for f in findings],
            },
        )

    # -- deep findings -------------------------------------------------
    def load_deep(self, key: str) -> Optional[List[Dict[str, Any]]]:
        entry = self._load("deep", key)
        if entry is None or "findings" not in entry:
            return None
        findings = entry["findings"]
        return findings if isinstance(findings, list) else None

    def store_deep(self, key: str, findings: Sequence[Finding]) -> None:
        self._store(
            "deep", key, {"findings": [f.to_record() for f in findings]}
        )

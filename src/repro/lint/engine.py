"""Drive the rule catalog over files, trees, or in-memory snippets.

The engine parses each module once (AST + pragma comments) and hands the
:class:`ParsedModule` to every applicable rule.  Findings suppressed by
a same-line / line-above pragma are dropped; malformed pragmas surface
as ``REP001`` findings of their own.

``rel`` — the path of a module relative to the ``repro`` package root,
always with forward slashes — is the scoping key rules match against
(``sim/engine.py``, ``net/link.py``, ...).  For on-disk files it is
computed from the path; in-memory fixtures pass it explicitly to
:func:`lint_source`.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.lint.findings import Finding, is_suppressed, parse_pragmas
from repro.lint.rules import RULES, Rule

__all__ = [
    "ParsedModule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "parse_module",
]


@dataclass(frozen=True)
class ParsedModule:
    """One source module, parsed once and shared by all rules."""

    #: Path as reported in findings (what the caller passed in).
    path: str
    #: Path relative to the ``repro`` package root (posix separators);
    #: rules use this for scoping.
    rel: str
    source: str
    tree: ast.AST
    pragmas: Dict[int, List[Tuple[str, str]]] = field(default_factory=dict)
    #: Malformed-pragma findings discovered during parsing.
    pragma_problems: List[Finding] = field(default_factory=list)


def _relative_to_package(path: str) -> str:
    """Path after the last ``repro`` directory component, posix-joined.

    Falls back to the basename when the path does not go through a
    ``repro`` package dir (e.g. a loose fixture file).
    """
    parts = os.path.normpath(path).split(os.sep)
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1 :])
    return parts[-1]


def parse_module(path: str, source: str, rel: str = "") -> ParsedModule:
    """Parse ``source`` into a :class:`ParsedModule` (raises SyntaxError)."""
    tree = ast.parse(source, filename=path)
    pragmas, problems = parse_pragmas(source, path)
    return ParsedModule(
        path=path,
        rel=rel or _relative_to_package(path),
        source=source,
        tree=tree,
        pragmas=pragmas,
        pragma_problems=problems,
    )


def _check_module(
    mod: ParsedModule, rules: Sequence[Rule]
) -> List[Finding]:
    findings: List[Finding] = list(mod.pragma_problems)
    for rule in rules:
        if not rule.applies(mod):
            continue
        for finding in rule.check(mod):
            if not is_suppressed(finding, mod.pragmas):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_source(
    source: str,
    rel: str,
    path: str = "<string>",
    rules: Sequence[Rule] = RULES,
) -> List[Finding]:
    """Lint an in-memory snippet as if it lived at ``rel``.

    This is the fixture-test entry point: ``rel`` controls rule scoping
    exactly as it would for an on-disk module.
    """
    return _check_module(parse_module(path, source, rel=rel), rules)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files and directories into a sorted stream of ``.py`` paths.

    Sorted traversal keeps the finding order (and therefore CLI output)
    stable across filesystems — the linter practices the determinism it
    preaches.
    """
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        elif path.endswith(".py"):
            yield path


def lint_paths(
    paths: Iterable[str], rules: Sequence[Rule] = RULES
) -> List[Finding]:
    """Lint files/directories; returns all findings, sorted by location.

    Unparseable files produce a single ``syntax-error`` pseudo-finding
    rather than aborting the run, so one bad file cannot hide findings
    in the rest of the tree.
    """
    findings: List[Finding] = []
    for filepath in iter_python_files(paths):
        try:
            with open(filepath, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            findings.append(
                Finding(
                    rule="io-error",
                    code="REP000",
                    path=filepath,
                    line=1,
                    col=0,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        try:
            mod = parse_module(filepath, source)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="syntax-error",
                    code="REP000",
                    path=filepath,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        findings.extend(_check_module(mod, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings

"""Call-graph construction over module summaries.

Functions are identified by ``"dotted.module:Qual.name"`` strings
(*function ids*).  Resolution is deliberately conservative: a call is
linked only when the target is statically unambiguous —

* a bare name defined in (or imported into) the calling module,
* ``self.method()`` / ``cls.method()`` resolved through the class and
  its project-resolvable bases,
* ``mod.func()`` where ``mod`` is an imported project module, and
* ``Class.method()`` through an imported class.

Attribute calls on arbitrary objects stay unresolved; the taint pass
treats unresolved calls as clean rather than guessing, which keeps the
REP11x family free of cross-object false positives at the cost of not
seeing flows through duck-typed indirection.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lint.project import FunctionSummary, ModuleSummary, Project

__all__ = ["CallGraph", "build_callgraph", "function_id"]


def function_id(module: str, qualname: str) -> str:
    return f"{module}:{qualname}"


class CallGraph:
    """Resolved call edges between project functions."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: function id -> its summary.
        self.functions: Dict[str, FunctionSummary] = {}
        #: function id -> module summary that owns it.
        self.owner: Dict[str, ModuleSummary] = {}
        #: caller id -> ((callee id, call line), ...).
        self.edges: Dict[str, Tuple[Tuple[str, int], ...]] = {}
        for mod_name, summary in project.modules.items():
            for qualname, fn in summary.functions.items():
                fid = function_id(mod_name, qualname)
                self.functions[fid] = fn
                self.owner[fid] = summary
        for fid, fn in self.functions.items():
            summary = self.owner[fid]
            resolved: List[Tuple[str, int]] = []
            for raw, line in fn.calls:
                callee = self.resolve_call(summary, fn, raw)
                if callee is not None:
                    resolved.append((callee, line))
            self.edges[fid] = tuple(resolved)

    # -- resolution ----------------------------------------------------
    def _lookup_in_module(
        self, module: str, name: str
    ) -> Optional[str]:
        """``name`` (``func`` or ``Class.method``) defined in ``module``."""
        summary = self.project.modules.get(module)
        if summary is None:
            return None
        if name in summary.functions:
            return function_id(module, name)
        # A class name used as a constructor: treat as its __init__.
        if name in summary.classes:
            init = f"{name}.__init__"
            if init in summary.functions:
                return function_id(module, init)
        return None

    def _resolve_dotted(
        self, summary: ModuleSummary, dotted: str
    ) -> Optional[str]:
        """Resolve a fully dotted target (``repro.sim.rng.stream``)."""
        owner = self.project._resolve_module(dotted)
        if owner is None:
            return None
        tail = dotted[len(owner) + 1 :] if dotted != owner else ""
        if not tail:
            return None
        return self._lookup_in_module(owner, tail)

    def _resolve_method(
        self, summary: ModuleSummary, class_name: str, method: str
    ) -> Optional[str]:
        for owner_mod, klass in self.project.class_mro(
            summary.module, class_name
        ):
            if method in klass.methods:
                return function_id(owner_mod, f"{klass.name}.{method}")
        return None

    def resolve_call(
        self, summary: ModuleSummary, caller: FunctionSummary, raw: str
    ) -> Optional[str]:
        """Resolve one raw call-site name to a function id, or None."""
        head, _, rest = raw.partition(".")
        if not rest:
            # Bare name: local function, constructor, or imported callable.
            local = self._lookup_in_module(summary.module, raw)
            if local is not None:
                return local
            target = summary.bindings.get(raw)
            if target is not None:
                resolved = self._resolve_dotted(summary, target)
                if resolved is not None:
                    return resolved
                # Imported class constructor.
                owner = self.project._resolve_module(target)
                if owner is not None and target != owner:
                    return self._lookup_in_module(
                        owner, target[len(owner) + 1 :]
                    )
            return None
        if head in ("self", "cls") and caller.owner:
            if "." in rest:
                return None  # self.attr.method() — unresolved
            return self._resolve_method(summary, caller.owner, rest)
        target = summary.bindings.get(head)
        if target is not None:
            dotted = f"{target}.{rest}"
            resolved = self._resolve_dotted(summary, dotted)
            if resolved is not None:
                return resolved
            # `SomeClass.method(...)` through an imported class.
            owner = self.project._resolve_module(target)
            if owner is not None and target != owner and "." not in rest:
                class_name = target[len(owner) + 1 :]
                owner_summary = self.project.modules.get(owner)
                if (
                    owner_summary is not None
                    and class_name in owner_summary.classes
                ):
                    return self._resolve_method(
                        owner_summary, class_name, rest
                    )
            return None
        # Same-module `Class.method(...)`.
        if head in summary.classes and "." not in rest:
            return self._resolve_method(summary, head, rest)
        return None


def build_callgraph(project: Project) -> CallGraph:
    return CallGraph(project)

"""``python -m repro`` entry point (same as the repro-experiments script)."""

import sys

from repro.cli import main

sys.exit(main())

"""Packet-reordering metrics (RFC 4737-inspired, segment granularity).

Used by tests and examples to verify that a routing configuration really
produces the persistent reordering the paper studies.
"""

from __future__ import annotations

from typing import List, Sequence


def reordering_ratio(arrival_sequence: Sequence[int]) -> float:
    """Fraction of arrivals whose sequence number is below a prior maximum.

    0.0 means perfectly in-order delivery; higher means more reordering.
    """
    if not arrival_sequence:
        return 0.0
    reordered = 0
    highest = arrival_sequence[0]
    for seq in arrival_sequence[1:]:
        if seq < highest:
            reordered += 1
        else:
            highest = seq
    return reordered / max(1, len(arrival_sequence) - 1)


def reorder_density(arrival_sequence: Sequence[int]) -> List[int]:
    """Histogram of displacement: position received minus position sent.

    Entry ``d`` counts packets displaced by exactly ``d`` positions
    (late arrivals only).  A single [0]-dominated histogram means
    near-in-order delivery.
    """
    if not arrival_sequence:
        return [0]
    displacement_counts: dict[int, int] = {}
    expected_rank = {seq: rank for rank, seq in enumerate(sorted(arrival_sequence))}
    for received_rank, seq in enumerate(arrival_sequence):
        displacement = max(0, received_rank - expected_rank[seq])
        displacement_counts[displacement] = (
            displacement_counts.get(displacement, 0) + 1
        )
    size = max(displacement_counts) + 1
    histogram = [0] * size
    for displacement, count in displacement_counts.items():
        histogram[displacement] = count
    return histogram

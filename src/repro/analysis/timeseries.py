"""Time-series utilities over monitor samples.

Turns the raw ``(time, delivered)`` samples of
:class:`~repro.obs.monitors.FlowThroughputMonitor` into throughput
time series, and computes convergence diagnostics (how quickly competing
flows settle to a fair share — the property the AIMD analysis of [4, 7]
cited in Section 4 guarantees).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.fairness import jain_index
from repro.analysis.throughput import FlowSample
from repro.util.units import MBPS


@dataclass(frozen=True)
class SeriesPoint:
    """One (time, value) observation."""

    time: float
    value: float


class StepSeries:
    """A piecewise-constant time series (step semantics).

    ``value_at(t)`` returns the value of the latest point at or before
    ``t``; queries before the first point return the first value.
    """

    def __init__(self, points: Sequence[SeriesPoint]) -> None:
        if not points:
            raise ValueError("a series needs at least one point")
        times = [p.time for p in points]
        if times != sorted(times):
            raise ValueError("series points must be time-ordered")
        self.points = list(points)
        self._times = times

    def value_at(self, time: float) -> float:
        index = bisect_right(self._times, time)
        if index == 0:
            return self.points[0].value
        return self.points[index - 1].value

    def time_weighted_mean(self, start: float, end: float) -> float:
        """Mean value over [start, end], weighting by holding time."""
        if end <= start:
            raise ValueError("end must be after start")
        total = 0.0
        cursor = start
        current = self.value_at(start)
        for point in self.points:
            if point.time <= start:
                continue
            if point.time >= end:
                break
            total += current * (point.time - cursor)
            cursor = point.time
            current = point.value
        total += current * (end - cursor)
        return total / (end - start)

    def __len__(self) -> int:
        return len(self.points)


def goodput_series(
    samples: Sequence[FlowSample], mss_bytes: int = 1000
) -> StepSeries:
    """Per-interval goodput (bits/second) between consecutive samples.

    The value at a point is the average rate over the interval *ending*
    at that point's time.
    """
    if len(samples) < 2:
        raise ValueError("need at least two samples")
    points: List[SeriesPoint] = []
    for before, after in zip(samples, samples[1:]):
        interval = after.time - before.time
        if interval <= 0:
            continue
        segments = after.delivered_segments - before.delivered_segments
        points.append(
            SeriesPoint(after.time, segments * mss_bytes * 8.0 / interval)
        )
    if not points:
        raise ValueError("samples contain no usable interval")
    return StepSeries(points)


def goodput_series_mbps(
    samples: Sequence[FlowSample], mss_bytes: int = 1000
) -> List[SeriesPoint]:
    """Convenience: the same series with values in Mbps."""
    series = goodput_series(samples, mss_bytes)
    return [SeriesPoint(p.time, p.value / MBPS) for p in series.points]


def fairness_over_time(
    flows_samples: Sequence[Sequence[FlowSample]],
    mss_bytes: int = 1000,
) -> List[SeriesPoint]:
    """Jain's index of the flows' instantaneous goodputs over time.

    Evaluated at the union of all sample times past each flow's second
    sample; flows not yet started contribute zero throughput.
    """
    if not flows_samples:
        raise ValueError("no flows supplied")
    series = [goodput_series(samples, mss_bytes) for samples in flows_samples]
    eval_times = sorted(
        {point.time for one in series for point in one.points}
    )
    result = []
    for time in eval_times:
        rates = [one.value_at(time) for one in series]
        result.append(SeriesPoint(time, jain_index(rates)))
    return result


def convergence_time(
    fairness_points: Sequence[SeriesPoint],
    threshold: float = 0.9,
    hold: float = 1.0,
) -> Optional[float]:
    """First time Jain's index exceeds ``threshold`` and stays above it
    for at least ``hold`` seconds; None if it never converges."""
    if not fairness_points:
        return None
    candidate: Optional[float] = None
    for point in fairness_points:
        if point.value >= threshold:
            if candidate is None:
                candidate = point.time
            elif point.time - candidate >= hold:
                return candidate
        else:
            candidate = None
    # Converged at the tail but without `hold` seconds of evidence.
    if candidate is not None and fairness_points[-1].time - candidate >= hold:
        return candidate
    return None

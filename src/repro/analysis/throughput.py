"""Throughput accounting helpers.

The paper measures a flow's throughput as "the total data sent during the
last 60 seconds of the simulation"; we measure in-order goodput at the
receiver over a window, via the sampling monitors in
:mod:`repro.obs.monitors`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import MBPS


@dataclass(frozen=True)
class FlowSample:
    """A (time, delivered-segments) observation of one flow."""

    time: float
    delivered_segments: int


def goodput_bps(
    start_sample: FlowSample, end_sample: FlowSample, mss_bytes: int
) -> float:
    """Average goodput between two samples, bits/second."""
    interval = end_sample.time - start_sample.time
    if interval <= 0:
        raise ValueError(
            f"end sample ({end_sample.time}) must be after start "
            f"({start_sample.time})"
        )
    segments = end_sample.delivered_segments - start_sample.delivered_segments
    if segments < 0:
        raise ValueError("delivered segment count went backwards")
    return segments * mss_bytes * 8.0 / interval


def goodput_mbps(
    start_sample: FlowSample, end_sample: FlowSample, mss_bytes: int
) -> float:
    """Average goodput between two samples, Mbps."""
    return goodput_bps(start_sample, end_sample, mss_bytes) / MBPS

"""Fairness metrics from Section 4 of the paper.

For ``n`` flows with throughputs ``x_i``, the *normalized throughput* of
flow ``i`` is

    T_i = x_i / mean(x),

so ``T_i = 1`` means flow ``i`` received exactly the average.  The *mean
normalized throughput* of a protocol is the mean of its flows' ``T_i``.
The *coefficient of variation* over a flow set ``I`` is

    CoV = std(T_i, i in I) / mean(T_i, i in I)

(computed with the 1/|I| population variance, as written in the paper).
Jain's fairness index is included as an extra diagnostic.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence


def normalized_throughputs(throughputs: Sequence[float]) -> List[float]:
    """Per-flow throughput divided by the all-flow average."""
    if not throughputs:
        raise ValueError("no throughputs supplied")
    if any(x < 0 for x in throughputs):
        raise ValueError("throughputs must be non-negative")
    mean = sum(throughputs) / len(throughputs)
    if mean == 0:
        return [0.0 for _ in throughputs]
    return [x / mean for x in throughputs]


def mean_normalized_throughput(
    throughputs_by_protocol: Mapping[str, Sequence[float]],
) -> Dict[str, float]:
    """Per-protocol mean of normalized throughput.

    Args:
        throughputs_by_protocol: Raw throughputs grouped by protocol name.
            Normalization uses the mean over **all** flows of all
            protocols, per the paper's definition.
    """
    all_throughputs: List[float] = []
    for values in throughputs_by_protocol.values():
        all_throughputs.extend(values)
    if not all_throughputs:
        raise ValueError("no flows supplied")
    mean = sum(all_throughputs) / len(all_throughputs)
    result: Dict[str, float] = {}
    for protocol, values in throughputs_by_protocol.items():
        if not values:
            raise ValueError(f"protocol {protocol!r} has no flows")
        if mean == 0:
            result[protocol] = 0.0
        else:
            result[protocol] = sum(v / mean for v in values) / len(values)
    return result


def coefficient_of_variation(values: Iterable[float]) -> float:
    """Population CoV: sqrt(mean(v^2) - mean(v)^2) / mean(v)."""
    data = list(values)
    if not data:
        raise ValueError("no values supplied")
    mean = sum(data) / len(data)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in data) / len(data)
    return math.sqrt(variance) / mean


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2); 1 = perfectly fair."""
    data = list(values)
    if not data:
        raise ValueError("no values supplied")
    square_of_sum = sum(data) ** 2
    sum_of_squares = sum(v * v for v in data)
    if sum_of_squares == 0:
        return 1.0
    return square_of_sum / (len(data) * sum_of_squares)

"""Metrics: throughput, fairness (Section 4), reordering measures."""

from repro.analysis.fairness import (
    coefficient_of_variation,
    jain_index,
    mean_normalized_throughput,
    normalized_throughputs,
)
from repro.analysis.reordering import reorder_density, reordering_ratio
from repro.analysis.throughput import FlowSample, goodput_bps, goodput_mbps
from repro.analysis.timeseries import (
    SeriesPoint,
    StepSeries,
    convergence_time,
    fairness_over_time,
    goodput_series,
    goodput_series_mbps,
)

__all__ = [
    "FlowSample",
    "SeriesPoint",
    "StepSeries",
    "coefficient_of_variation",
    "convergence_time",
    "fairness_over_time",
    "goodput_bps",
    "goodput_mbps",
    "goodput_series",
    "goodput_series_mbps",
    "jain_index",
    "mean_normalized_throughput",
    "normalized_throughputs",
    "reorder_density",
    "reordering_ratio",
]

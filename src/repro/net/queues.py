"""Link queues: DropTail (the paper's model) and RED (extension).

A queue buffers packets awaiting transmission on a link.  Capacity is
expressed in packets, matching ns-2's default and the paper's "queue has a
size of 100 packets".
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Any, Mapping, Optional

from repro.net.packet import Packet


class Queue:
    """Abstract link queue.

    Subclasses implement :meth:`push`; :meth:`pop` is shared FIFO service.

    Attributes:
        capacity: Maximum number of buffered packets.
        drops: Count of packets rejected by this queue.
        enqueued: Count of packets accepted.
    """

    # Slotted so the compiled engine (repro._cext._core) can resolve
    # fixed attribute offsets for its DropTail fast path; also one less
    # dict per link on the pure engine.
    __slots__ = (
        "capacity",
        "_buffer",
        "drops",
        "enqueued",
        "max_occupancy",
        "obs",
    )

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer: deque[Packet] = deque()
        self.drops = 0
        self.enqueued = 0
        self.max_occupancy = 0
        #: Metrics probe installed by repro.obs (None = not observed).
        #: The owning link shares its probe with the queue, since a
        #: queue has no simulator reference of its own.
        self.obs = None

    def push(self, packet: Packet) -> bool:
        """Try to buffer ``packet``; return False (and count a drop) if rejected."""
        raise NotImplementedError

    def pop(self) -> Optional[Packet]:
        """Dequeue the next packet in FIFO order, or None if empty."""
        if self._buffer:
            packet = self._buffer.popleft()
            if self.obs is not None:
                self.obs.queue_depth()
            return packet
        return None

    def _accept(self, packet: Packet) -> bool:
        self._buffer.append(packet)
        self.enqueued += 1
        if len(self._buffer) > self.max_occupancy:
            self.max_occupancy = len(self._buffer)
        if self.obs is not None:
            self.obs.queue_depth()
        return True

    def _reject(self) -> None:
        """Count (and report) one rejected arrival."""
        self.drops += 1
        if self.obs is not None:
            self.obs.queue_drop()

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def occupancy(self) -> int:
        return len(self._buffer)

    # ------------------------------------------------------------------
    # StatefulComponent protocol (see repro.checkpoint.state)
    # ------------------------------------------------------------------
    #: The probe is wiring (the owning link re-shares it); everything
    #: else — buffered packets, counters, RED averaging state and its
    #: standalone RNG — is logical state.
    _SNAPSHOT_EXCLUDE = frozenset({"obs"})

    def snapshot_state(self) -> "dict[str, Any]":
        from repro.checkpoint.state import snapshot_object

        return snapshot_object(self, exclude=self._SNAPSHOT_EXCLUDE)

    def restore_state(self, state: "Mapping[str, Any]") -> None:
        from repro.checkpoint.state import restore_object

        restore_object(self, state)


class DropTailQueue(Queue):
    """FIFO queue that drops arrivals once full — the paper's loss model."""

    __slots__ = ()

    def push(self, packet: Packet) -> bool:
        if len(self._buffer) >= self.capacity:
            self._reject()
            return False
        return self._accept(packet)


class REDQueue(Queue):
    """Random Early Detection (Floyd & Jacobson 1993), gentle variant.

    Provided as an AQM extension; the paper's experiments use DropTail.
    Parameters follow the classic recommendations: drop probability ramps
    linearly from 0 at ``min_thresh`` to ``max_p`` at ``max_thresh``, then
    (gentle RED) from ``max_p`` to 1 at ``2 * max_thresh``.
    """

    __slots__ = (
        "min_thresh",
        "max_thresh",
        "max_p",
        "weight",
        "avg",
        "_count_since_drop",
        "_rng",
    )

    def __init__(
        self,
        capacity: int,
        min_thresh: Optional[float] = None,
        max_thresh: Optional[float] = None,
        max_p: float = 0.1,
        weight: float = 0.002,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(capacity)
        self.min_thresh = min_thresh if min_thresh is not None else capacity / 12.0
        self.max_thresh = max_thresh if max_thresh is not None else capacity / 4.0
        if self.min_thresh >= self.max_thresh:
            raise ValueError("RED requires min_thresh < max_thresh")
        self.max_p = max_p
        self.weight = weight
        self.avg = 0.0
        self._count_since_drop = -1
        # lint: allow-module-random(fixed-seed fallback for standalone use; scenarios pass a registry stream)
        self._rng = rng if rng is not None else random.Random(0)

    def push(self, packet: Packet) -> bool:
        self.avg = (1 - self.weight) * self.avg + self.weight * len(self._buffer)
        if len(self._buffer) >= self.capacity:
            self._reject()
            self._count_since_drop = 0
            return False
        drop_p = self._drop_probability()
        if drop_p > 0:
            self._count_since_drop += 1
            # Uniformize inter-drop gaps, per the original RED paper.
            denominator = max(1e-12, 1 - self._count_since_drop * drop_p)
            effective_p = min(1.0, drop_p / denominator)
            if self._rng.random() < effective_p:
                self._reject()
                self._count_since_drop = 0
                return False
        else:
            self._count_since_drop = -1
        return self._accept(packet)

    def _drop_probability(self) -> float:
        if self.avg < self.min_thresh:
            return 0.0
        if self.avg < self.max_thresh:
            frac = (self.avg - self.min_thresh) / (self.max_thresh - self.min_thresh)
            return frac * self.max_p
        if self.avg < 2 * self.max_thresh:  # gentle region
            frac = (self.avg - self.max_thresh) / self.max_thresh
            return self.max_p + frac * (1 - self.max_p)
        return 1.0

    def __repr__(self) -> str:
        return (
            f"<REDQueue cap={self.capacity} avg={self.avg:.2f} "
            f"occ={len(self._buffer)} drops={self.drops}>"
        )


def queue_from_spec(spec: "int | Queue") -> Queue:
    """Coerce a queue spec (an int capacity or a Queue instance) to a Queue."""
    if isinstance(spec, Queue):
        return spec
    if isinstance(spec, int) and not isinstance(spec, bool):
        return DropTailQueue(spec)
    raise TypeError(f"queue spec must be int or Queue, got {type(spec).__name__}")


def bandwidth_delay_product_packets(
    bandwidth_bps: float, rtt_seconds: float, segment_bytes: int = 1000
) -> int:
    """Bandwidth-delay product in whole segments (handy for sizing queues)."""
    return max(1, math.ceil(bandwidth_bps * rtt_seconds / (8 * segment_bytes)))

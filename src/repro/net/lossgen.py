"""Artificial loss models attachable to links.

Queue overflow (DropTail) is the paper's natural loss process; these
models add *controlled* loss for unit tests and for the extreme-loss
experiments of Section 3.2 / the β sweep of Section 4.
"""

from __future__ import annotations

import random
from typing import Iterable, Set

from repro.net.packet import Packet


class LossModel:
    """Decides, per packet, whether a link drops it before queueing."""

    def should_drop(self, packet: Packet) -> bool:
        raise NotImplementedError


class NoLoss(LossModel):
    """Never drops (the default)."""

    def should_drop(self, packet: Packet) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Drops each packet independently with probability ``rate``."""

    def __init__(self, rate: float, rng: random.Random) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._rng = rng

    def should_drop(self, packet: Packet) -> bool:
        return self._rng.random() < self.rate


class GilbertElliottLoss(LossModel):
    """Two-state Markov (Gilbert-Elliott) bursty loss.

    The classic wireless-channel model, supporting the paper's stated
    future work ("we plan to adapt it for wireless environments"): the
    channel alternates between a GOOD state (loss probability
    ``good_loss``, usually ~0) and a BAD state / fade (loss probability
    ``bad_loss``, usually high).  State transitions are evaluated per
    packet, so the mean fade length is ``1 / bad_to_good`` packets.

    Attributes:
        bad_entries: Number of GOOD->BAD transitions so far.
    """

    def __init__(
        self,
        rng: random.Random,
        good_to_bad: float = 0.005,
        bad_to_good: float = 0.2,
        good_loss: float = 0.0,
        bad_loss: float = 0.9,
    ) -> None:
        for name, value in (
            ("good_to_bad", good_to_bad),
            ("bad_to_good", bad_to_good),
            ("good_loss", good_loss),
            ("bad_loss", bad_loss),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self._rng = rng
        self.good_to_bad = good_to_bad
        self.bad_to_good = bad_to_good
        self.good_loss = good_loss
        self.bad_loss = bad_loss
        self.in_bad_state = False
        self.bad_entries = 0

    def should_drop(self, packet: Packet) -> bool:
        if self.in_bad_state:
            if self._rng.random() < self.bad_to_good:
                self.in_bad_state = False
        elif self._rng.random() < self.good_to_bad:
            self.in_bad_state = True
            self.bad_entries += 1
        loss_probability = self.bad_loss if self.in_bad_state else self.good_loss
        return self._rng.random() < loss_probability


class DeterministicLoss(LossModel):
    """Drops exactly the packets whose link-arrival ordinal is listed.

    Ordinals count data-and-ACK arrivals at the owning link, starting at 0.
    Used by unit tests to script precise loss patterns.
    """

    def __init__(self, drop_ordinals: Iterable[int]) -> None:
        self._drop_at: Set[int] = set(drop_ordinals)
        self._counter = 0

    def should_drop(self, packet: Packet) -> bool:
        ordinal = self._counter
        self._counter += 1
        return ordinal in self._drop_at

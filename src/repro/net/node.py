"""Nodes and the transport-agent attachment point.

A :class:`Node` forwards packets in one of three ways, checked in order:

1. If the packet is addressed to this node, it is delivered to the local
   :class:`Agent` registered for the packet's flow.
2. If the packet carries a source route (per-packet multipath routing),
   the next hop comes from the route.
3. Otherwise the node's static destination-based table is consulted.

Origin nodes may have a *path policy* (see :mod:`repro.routing`): when a
local agent injects a packet, the policy can stamp a full source route on
it, which is how the ε-parameterized multipath routing of Section 5 is
realized.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Protocol

from repro.net.packet import Packet
from repro.sim.errors import SimulationError

if TYPE_CHECKING:
    from repro.net.link import Link
    from repro.sim.engine import Simulator

#: Compiled subclasses from ``repro._cext._core`` (None when the pure
#: engine is active).  Written only by :mod:`repro.core.engine_select`;
#: read by ``Node.__new__`` — nodes attached to a compiled simulator
#: forward packets in C (see docs/COMPILED.md).
_COMPILED_NODE: Optional[type] = None
_COMPILED_SIMULATOR: Optional[type] = None


class Agent:
    """Base class for transport endpoints attached to a node.

    Subclasses (TCP senders/receivers, traffic sources) override
    :meth:`receive`.  Construction registers the agent with the node under
    ``flow_id``.
    """

    def __init__(self, sim: "Simulator", node: "Node", flow_id: int) -> None:
        self.sim = sim
        self.node = node
        self.flow_id = flow_id
        node.register_agent(flow_id, self)
        # After node-level registration, so a duplicate flow id raises
        # its usual error before any simulator-level bookkeeping.
        sim.register_component(f"agent:{node.name}/f{flow_id}", self)

    def receive(self, packet: Packet) -> None:
        """Handle a packet addressed to this agent."""
        raise NotImplementedError

    def inject(self, packet: Packet) -> None:
        """Send ``packet`` into the network from this agent's node."""
        packet.sent_at = self.sim.now
        self.node.send(packet)


class PathPolicy(Protocol):
    """Per-origin routing policy that may assign a source route."""

    def choose_route(self, packet: Packet) -> Optional[List[str]]:
        """Return a node-name path (including origin and destination) or None."""
        ...


class Node:
    """A named network node: links out, a static route table, local agents."""

    def __new__(cls, sim: object = None, *args: Any, **kwargs: Any) -> "Node":
        # Engine selection follows the simulator instance: see the
        # matching hooks on Simulator and Link.
        if (
            cls is Node
            and _COMPILED_NODE is not None
            and _COMPILED_SIMULATOR is not None
            and isinstance(sim, _COMPILED_SIMULATOR)
        ):
            new: Callable[..., "Node"] = _COMPILED_NODE.__new__
            return new(_COMPILED_NODE)
        return object.__new__(cls)

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        #: Outgoing links keyed by downstream node name.
        self.links: Dict[str, "Link"] = {}
        #: Static destination-based next-hop table: dst name -> neighbor name.
        self.routes: Dict[str, str] = {}
        #: Local transport agents keyed by flow id.
        self.agents: Dict[int, Agent] = {}
        #: Optional per-packet multipath policy used for locally injected packets.
        self.path_policy: Optional[PathPolicy] = None
        #: Packets that arrived with no viable route or local agent.
        self.dead_letters = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _register_link(self, link: "Link") -> None:
        if link.dst.name in self.links:
            raise SimulationError(
                f"node {self.name} already has a link to {link.dst.name}"
            )
        self.links[link.dst.name] = link

    def add_route(self, dst: str, next_hop: str) -> None:
        """Install a static route: packets for ``dst`` leave via ``next_hop``."""
        if next_hop not in self.links:
            raise SimulationError(
                f"node {self.name} has no link to next hop {next_hop}"
            )
        self.routes[dst] = next_hop

    def register_agent(self, flow_id: int, agent: Agent) -> None:
        if flow_id in self.agents:
            raise SimulationError(
                f"node {self.name} already has an agent for flow {flow_id}"
            )
        self.agents[flow_id] = agent

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Inject a locally generated packet (applies the path policy)."""
        if self.path_policy is not None and packet.route is None:
            route = self.path_policy.choose_route(packet)
            if route is not None:
                if route[0] != self.name:
                    raise SimulationError(
                        f"path policy on {self.name} returned a route starting "
                        f"at {route[0]!r}"
                    )
                packet.route = route
                packet.route_index = 0
        self._forward(packet)

    def receive(self, packet: Packet) -> None:
        """Handle a packet delivered by an upstream link."""
        if packet.route is not None:
            packet.route_index += 1
            if packet.dst == self.name:
                agent = self.agents.get(packet.flow_id)
                if agent is None:
                    self.dead_letters += 1
                    return
                agent.receive(packet)
                return
            self._forward(packet)
            return
        # Table-forwarded packet: _forward/_next_hop inlined — this is
        # the per-packet per-hop path, and ``links.get(None)`` correctly
        # yields None when no route exists.
        if packet.dst == self.name:
            agent = self.agents.get(packet.flow_id)
            if agent is None:
                self.dead_letters += 1
                return
            agent.receive(packet)
            return
        link = self.links.get(self.routes.get(packet.dst))
        if link is None:
            self.dead_letters += 1
            return
        link.enqueue(packet)

    def _forward(self, packet: Packet) -> None:
        next_hop = self._next_hop(packet)
        if next_hop is None:
            self.dead_letters += 1
            return
        link = self.links.get(next_hop)
        if link is None:
            self.dead_letters += 1
            return
        link.enqueue(packet)

    def _next_hop(self, packet: Packet) -> Optional[str]:
        if packet.route is not None:
            index = packet.route_index
            if index + 1 < len(packet.route) and packet.route[index] == self.name:
                return packet.route[index + 1]
            # Fall back to the table if the source route is broken (e.g.
            # after a route flap rewired the topology mid-flight).
        return self.routes.get(packet.dst)

    def __repr__(self) -> str:
        return (
            f"<Node {self.name} links={sorted(self.links)} "
            f"agents={sorted(self.agents)}>"
        )

"""Unidirectional store-and-forward link with finite queue.

Timing model (identical to ns-2's SimpleLink):

* a packet occupies the transmitter for ``size_bytes * 8 / bandwidth``
  seconds (serialization), then
* propagates for ``delay`` seconds, then
* is delivered to the downstream node.

While the transmitter is busy, arrivals go to the queue; if the queue
rejects them (DropTail full, RED early drop) they are lost.  An optional
:class:`~repro.net.lossgen.LossModel` can additionally drop packets on
arrival, before queueing.

Fault state (driven by :mod:`repro.faults`): a link carries an ``up``
flag and a transient *fault-loss* window.  A down link drops every
arrival (counted in :attr:`Link.fault_drops`, separate from loss-model
and queue drops) and either flushed or held its queue when it went down;
packets already serialized keep propagating (the bits are on the wire).
``delay_scale`` multiplies the propagation delay — the route-change RTT
jump of the paper's Section 1 scenarios — and ``fault_loss_rate``
Bernoulli-drops arrivals during e.g. an ACK-path blackout.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Callable, List, Mapping, Optional

from repro.net.delays import DelayModel
from repro.net.lossgen import LossModel
from repro.net.packet import Packet
from repro.net.queues import Queue, queue_from_spec

if TYPE_CHECKING:
    from repro.net.node import Node
    from repro.sim.engine import Simulator

#: Compiled subclasses from ``repro._cext._core`` (None when the pure
#: engine is active).  Written only by :mod:`repro.core.engine_select`;
#: read by ``Link.__new__``, which upgrades links attached to a
#: *compiled* simulator so the per-packet fast path stays in C
#: end to end.  Links attached to a pure simulator stay pure even when
#: the compiled engine is available.
_COMPILED_LINK: Optional[type] = None
_COMPILED_SIMULATOR: Optional[type] = None


class Link:
    """One-way link ``src -> dst``.

    Args:
        sim: Owning simulator.
        src: Upstream node (packets are sent from here).
        dst: Downstream node (packets are delivered to its ``receive``).
        bandwidth: Link rate in bits/second.
        delay: Propagation delay in seconds.
        queue: Queue instance or integer capacity in packets (DropTail).
        loss_model: Optional artificial loss applied on arrival.
        delay_model: Optional per-packet propagation-delay model; when
            set it overrides ``delay`` and can reorder packets on this
            single link (see :mod:`repro.net.delays`).

    Attributes:
        tx_packets / tx_bytes: Delivered traffic counters.
        arrived_packets: Packets handed to the link (before any drop).
    """

    __slots__ = (
        "sim",
        "src",
        "dst",
        "bandwidth",
        "delay",
        "queue",
        "loss_model",
        "delay_model",
        "name",
        "_finish_cb",
        "_label_tx",
        "_label_rx",
        "_inv_bandwidth",
        "_post_in",
        "_busy",
        "tx_packets",
        "tx_bytes",
        "arrived_packets",
        "loss_model_drops",
        "up",
        "fault_drops",
        "delay_scale",
        "fault_loss_rate",
        "_fault_rng",
        "drop_listeners",
        "obs",
    )

    def __init__(
        self,
        sim: "Simulator",
        src: "Node",
        dst: "Node",
        bandwidth: float,
        delay: float,
        queue: "int | Queue" = 100,
        loss_model: Optional[LossModel] = None,
        delay_model: Optional[DelayModel] = None,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.bandwidth = bandwidth
        self.delay = delay
        self.queue = queue_from_spec(queue)
        self.loss_model = loss_model
        self.delay_model = delay_model
        self.name = f"{src.name}->{dst.name}"
        # Hot-path caches: a bound method and one label per link for the
        # two per-packet events, instead of a closure (which pins the
        # packet twice) and an f-string per event.  ``dst.receive`` is
        # looked up per event on purpose — repro.obs.trace patches it.
        self._finish_cb = self._finish_transmission
        self._label_tx = f"tx {self.name}"
        self._label_rx = f"rx {self.name}"
        self._inv_bandwidth = 8.0 / bandwidth  # seconds per byte
        self._post_in = sim.post_in  # one attribute load per event, not two
        self._busy = False
        self.tx_packets = 0
        self.tx_bytes = 0
        self.arrived_packets = 0
        self.loss_model_drops = 0
        #: Fault state (see :mod:`repro.faults`).  ``fault_drops`` counts
        #: packets lost to link-down windows and fault-loss windows,
        #: deliberately separate from ``loss_model_drops``.
        self.up = True
        self.fault_drops = 0
        self.delay_scale = 1.0
        self.fault_loss_rate = 0.0
        self._fault_rng: Optional[random.Random] = None
        #: Observers called as fn(link, packet) when a packet is dropped.
        self.drop_listeners: List[Callable[["Link", Packet], None]] = []
        #: Metrics probe installed by repro.obs (None = not observed).
        self.obs: Optional[Any] = None
        src._register_link(self)
        # After node-level registration, so duplicate-link errors fire
        # before any simulator-level bookkeeping.
        sim.register_component(f"link:{self.name}", self)

    def __new__(cls, sim: object = None, *args: Any, **kwargs: Any) -> "Link":
        # Engine selection follows the simulator instance: see the
        # matching hook on Simulator.  Unpickling calls __new__ with no
        # arguments, which lands on the pure class (compiled instances
        # carry their own engine-portable __reduce_ex__).
        if (
            cls is Link
            and _COMPILED_LINK is not None
            and _COMPILED_SIMULATOR is not None
            and isinstance(sim, _COMPILED_SIMULATOR)
        ):
            new: Callable[..., "Link"] = _COMPILED_LINK.__new__
            return new(_COMPILED_LINK)
        return object.__new__(cls)

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> None:
        """Offer ``packet`` to the link (drop, buffer, or transmit now)."""
        self.arrived_packets += 1
        if not self.up:
            self.fault_drops += 1
            if self.obs is not None:
                self.obs.drop("fault")
            self._notify_drop(packet)
            return
        if self.fault_loss_rate > 0.0 and self._fault_draw() < self.fault_loss_rate:
            self.fault_drops += 1
            if self.obs is not None:
                self.obs.drop("fault")
            self._notify_drop(packet)
            return
        if self.loss_model is not None and self.loss_model.should_drop(packet):
            self.loss_model_drops += 1
            if self.obs is not None:
                self.obs.drop("loss_model")
            self._notify_drop(packet)
            return
        if self._busy:
            if not self.queue.push(packet):
                self._notify_drop(packet)
            return
        self._start_transmission(packet)

    # ------------------------------------------------------------------
    # Fault control (the attachment points of repro.faults.Injector)
    # ------------------------------------------------------------------
    def set_up(self, up: bool, flush: bool = False) -> None:
        """Bring the link up or down.

        Going down with ``flush=True`` discards the queue contents
        (counted in :attr:`fault_drops`); ``flush=False`` holds them for
        retransmission when the link recovers.  Going up resumes the held
        queue.  Idempotent in both directions.
        """
        if up == self.up:
            return
        self.up = up
        if not up:
            if flush:
                while True:
                    packet = self.queue.pop()
                    if packet is None:
                        break
                    self.fault_drops += 1
                    if self.obs is not None:
                        self.obs.drop("fault")
                    self._notify_drop(packet)
            return
        if not self._busy:
            next_packet = self.queue.pop()
            if next_packet is not None:
                self._start_transmission(next_packet)

    def _fault_draw(self) -> float:
        if self._fault_rng is None:
            self._fault_rng = self.sim.rng.stream(f"fault:{self.name}")
        return self._fault_rng.random()

    def transmission_time(self, packet: Packet) -> float:
        """Serialization time of ``packet`` on this link, in seconds."""
        return packet.size_bytes * 8.0 / self.bandwidth

    # ------------------------------------------------------------------
    def _start_transmission(self, packet: Packet) -> None:
        # transmission_time() inlined; args passed positionally — these
        # two post_in calls run once per packet per hop.
        self._busy = True
        self._post_in(
            packet.size_bytes * self._inv_bandwidth,
            self._finish_cb,
            (packet,),
            self._label_tx,
        )

    def _finish_transmission(self, packet: Packet) -> None:
        self.tx_packets += 1
        self.tx_bytes += packet.size_bytes
        packet.hops += 1
        delay_model = self.delay_model
        delay = (
            self.delay
            if delay_model is None
            else delay_model.delay_for(packet)
        )
        self._post_in(
            delay * self.delay_scale,
            self.dst.receive,
            (packet,),
            self._label_rx,
        )
        if not self.up:  # link died mid-serialization: hold the queue
            self._busy = False
            return
        next_packet = self.queue.pop()
        if next_packet is None:
            self._busy = False
        else:
            self._start_transmission(next_packet)

    def _notify_drop(self, packet: Packet) -> None:
        for listener in self.drop_listeners:
            listener(self, packet)

    # ------------------------------------------------------------------
    # StatefulComponent protocol (see repro.checkpoint.state)
    # ------------------------------------------------------------------
    #: Wiring excluded from snapshots: the engine/topology references,
    #: hot-path caches, sub-components snapshotted on their own (queue,
    #: models, probe, listeners), and the shared fault RNG stream (it
    #: lives in the RngRegistry; a deep copy would decouple it).
    _SNAPSHOT_EXCLUDE = frozenset(
        {
            "sim",
            "src",
            "dst",
            "queue",
            "loss_model",
            "delay_model",
            "obs",
            "drop_listeners",
            "_finish_cb",
            "_post_in",
            "_label_tx",
            "_label_rx",
            "_fault_rng",
        }
    )

    def snapshot_state(self) -> "dict[str, Any]":
        from repro.checkpoint.state import snapshot_object

        return snapshot_object(self, exclude=self._SNAPSHOT_EXCLUDE)

    def restore_state(self, state: "Mapping[str, Any]") -> None:
        from repro.checkpoint.state import restore_object

        restore_object(self, state)

    # ------------------------------------------------------------------
    @property
    def total_drops(self) -> int:
        """All drops on this link (queue overflow + loss model + faults)."""
        return self.queue.drops + self.loss_model_drops + self.fault_drops

    @property
    def utilization_bytes(self) -> int:
        return self.tx_bytes

    def __repr__(self) -> str:
        return (
            f"<Link {self.name} bw={self.bandwidth:.0f}bps delay={self.delay:.4f}s "
            f"tx={self.tx_packets} drops={self.total_drops}>"
        )

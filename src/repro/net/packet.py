"""The packet model.

Sequence numbers count *segments*, not bytes, exactly like ns-2's TCP
agents (and like the paper's pseudo-code, where ``cwnd`` is in packets).
A data segment is :data:`DATA_SIZE_BYTES` on the wire; a pure ACK is
:data:`ACK_SIZE_BYTES`.

TCP options that real stacks carry in the header (SACK blocks, DSACK
block, timestamps) are explicit attributes here; an attribute being
``None`` means the option is absent.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional, Sequence, Tuple, cast

#: Default data-segment size on the wire (payload + headers), bytes.
DATA_SIZE_BYTES = 1000
#: Pure-ACK size on the wire, bytes.
ACK_SIZE_BYTES = 40

_uid_counter = itertools.count()


def peek_next_uid() -> int:
    """The uid the next :class:`Packet` will get, without consuming it.

    ``itertools.count`` exposes its next value through ``__reduce__``
    (its pickle form is ``count(n)``); reading it this way does not
    advance the counter.  Used by :mod:`repro.checkpoint` so a resumed
    run in a fresh process continues the uid sequence exactly.
    """
    reduced = cast(Tuple[Any, ...], _uid_counter.__reduce__())
    return int(reduced[1][0])


def reset_uid_counter(next_uid: int = 0) -> None:
    """Rebind the uid counter so the next packet gets ``next_uid``.

    Checkpoint restore (and tests that compare whole-run traces) must
    set this; uids key trace records, so a resumed process that started
    its counter at zero would emit diverging trace output.
    """
    global _uid_counter
    _uid_counter = itertools.count(next_uid)


#: A SACK block is a half-open segment-number interval [start, end).
SackBlock = Tuple[int, int]


class Packet:
    """A simulated packet (data segment or ACK).

    Attributes:
        uid: Globally unique id, assigned at construction (trace key).
        kind: ``"data"`` or ``"ack"``.
        src: Name of the originating node.
        dst: Name of the destination node.
        flow_id: Transport flow this packet belongs to.
        seq: For data: segment number.  For ACKs: segment number of the
            data packet that triggered this ACK (used only for tracing).
        ack: For ACKs: cumulative ACK — the next segment number the
            receiver expects (all segments below it were received).
        size_bytes: Wire size used for transmission-time computation.
        sack_blocks: SACK option blocks, most recently changed first.
        dsack: DSACK block reporting a duplicate arrival, if any.
        ts_val / ts_echo: RFC 1323-style timestamp option (used by Eifel).
        route: Source route (node names, first = origin) when per-packet
            multipath routing chose an explicit path; ``None`` for
            destination-based (table) forwarding.
        route_index: Position of the *current* node within ``route``.
        sent_at: Time the packet was injected by its origin agent.
        hops: Number of links traversed so far.
        retransmit: True if this data segment is a retransmission.
    """

    __slots__ = (
        "uid",
        "kind",
        "src",
        "dst",
        "flow_id",
        "seq",
        "ack",
        "size_bytes",
        "sack_blocks",
        "dsack",
        "ts_val",
        "ts_echo",
        "route",
        "route_index",
        "sent_at",
        "hops",
        "retransmit",
        "is_data",
        "is_ack",
    )

    def __init__(
        self,
        kind: str,
        src: str,
        dst: str,
        flow_id: int,
        seq: int = 0,
        ack: int = -1,
        size_bytes: Optional[int] = None,
        sack_blocks: Optional[Sequence[SackBlock]] = None,
        dsack: Optional[SackBlock] = None,
        ts_val: Optional[float] = None,
        ts_echo: Optional[float] = None,
        retransmit: bool = False,
    ) -> None:
        if kind not in ("data", "ack"):
            raise ValueError(f"unknown packet kind {kind!r}")
        self.uid = next(_uid_counter)
        self.kind = kind
        # Plain attributes, not properties: every node/agent receive path
        # reads one of these per packet, and a slot load is several times
        # cheaper than a descriptor call plus string compare.
        self.is_data = kind == "data"
        self.is_ack = not self.is_data
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.seq = seq
        self.ack = ack
        if size_bytes is None:
            size_bytes = DATA_SIZE_BYTES if kind == "data" else ACK_SIZE_BYTES
        self.size_bytes = size_bytes
        self.sack_blocks: Optional[List[SackBlock]] = (
            list(sack_blocks) if sack_blocks is not None else None
        )
        self.dsack = dsack
        self.ts_val = ts_val
        self.ts_echo = ts_echo
        self.route: Optional[List[str]] = None
        self.route_index = 0
        self.sent_at = 0.0
        self.hops = 0
        self.retransmit = retransmit

    def __repr__(self) -> str:
        if self.is_data:
            core = f"seq={self.seq}"
        else:
            core = f"ack={self.ack}"
        return (
            f"<Packet #{self.uid} {self.kind} flow={self.flow_id} {core} "
            f"{self.src}->{self.dst}>"
        )

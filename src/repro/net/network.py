"""The :class:`Network` container: nodes + links + topology helpers.

Wraps a :class:`~repro.sim.Simulator` with named-node bookkeeping, duplex
link creation, and conversion to a :mod:`networkx` graph for route
computation by :mod:`repro.routing`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Tuple

import networkx as nx

from repro.net.delays import DelayModel
from repro.net.link import Link
from repro.net.lossgen import LossModel
from repro.net.node import Node
from repro.net.queues import Queue
from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError


def _unique_component_name(sim: Simulator, base: str) -> str:
    """First of ``base``, ``base#2``, ``base#3``, ... not yet registered.

    Deterministic (construction order), so multi-network simulators get
    stable registry names across runs.
    """
    if base not in sim.components:
        return base
    index = 2
    while f"{base}#{index}" in sim.components:
        index += 1
    return f"{base}#{index}"


class Network:
    """A simulated network: a simulator, named nodes, and links.

    Example:
        >>> net = Network(seed=1)
        >>> a, b = net.add_nodes("a", "b")
        >>> net.add_duplex_link("a", "b", bandwidth=10e6, delay=0.010)
        (<Link a->b ...>, <Link b->a ...>)
    """

    def __init__(self, seed: int = 0, sim: Optional[Simulator] = None) -> None:
        self.sim = sim if sim is not None else Simulator(seed=seed)
        self.nodes: Dict[str, Node] = {}
        self.links: Dict[Tuple[str, str], Link] = {}
        self.sim.register_component(_unique_component_name(self.sim, "net"), self)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> Node:
        if name in self.nodes:
            raise SimulationError(f"duplicate node name {name!r}")
        node = Node(self.sim, name)
        self.nodes[name] = node
        return node

    def add_nodes(self, *names: str) -> Tuple[Node, ...]:
        return tuple(self.add_node(name) for name in names)

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise SimulationError(f"unknown node {name!r}") from None

    def add_link(
        self,
        src: str,
        dst: str,
        bandwidth: float,
        delay: float,
        queue: "int | Queue" = 100,
        loss_model: Optional[LossModel] = None,
        delay_model: Optional[DelayModel] = None,
    ) -> Link:
        """Add a unidirectional link ``src -> dst``."""
        key = (src, dst)
        if key in self.links:
            raise SimulationError(f"duplicate link {src}->{dst}")
        link = Link(
            self.sim,
            self.node(src),
            self.node(dst),
            bandwidth=bandwidth,
            delay=delay,
            queue=queue,
            loss_model=loss_model,
            delay_model=delay_model,
        )
        self.links[key] = link
        return link

    def add_duplex_link(
        self,
        a: str,
        b: str,
        bandwidth: float,
        delay: float,
        queue: "int | Queue" = 100,
        reverse_queue: "int | Queue | None" = None,
        loss_model: Optional[LossModel] = None,
        reverse_loss_model: Optional[LossModel] = None,
        delay_model: Optional[DelayModel] = None,
        reverse_delay_model: Optional[DelayModel] = None,
    ) -> Tuple[Link, Link]:
        """Add both directions of a symmetric link (separate queues).

        Note: passing a Queue *instance* for both directions would share
        state, so ``queue`` accepts an int capacity when duplex; each
        direction gets its own DropTail queue of that capacity unless
        explicit Queue instances are supplied per direction.
        """
        if reverse_queue is None:
            if isinstance(queue, Queue):
                raise SimulationError(
                    "duplex links need distinct queues per direction; pass an "
                    "int capacity or supply reverse_queue explicitly"
                )
            reverse_queue = queue
        forward = self.add_link(
            a, b, bandwidth, delay, queue, loss_model, delay_model
        )
        backward = self.add_link(
            b, a, bandwidth, delay, reverse_queue, reverse_loss_model,
            reverse_delay_model,
        )
        return forward, backward

    def add_duplex_chain(
        self,
        names: "Sequence[str]",
        bandwidth: float,
        delay: float,
        queue: "int" = 100,
    ) -> list[Tuple[Link, Link]]:
        """Connect consecutive nodes with identical duplex links.

        Nodes that do not exist yet are created.  Returns the created
        (forward, backward) link pairs in order.
        """
        if len(names) < 2:
            raise SimulationError("a chain needs at least two nodes")
        pairs = []
        for name in names:
            if name not in self.nodes:
                self.add_node(name)
        for left, right in zip(names, names[1:]):
            pairs.append(
                self.add_duplex_link(left, right, bandwidth, delay, queue)
            )
        return pairs

    # ------------------------------------------------------------------
    # Graph views
    # ------------------------------------------------------------------
    def graph(self, weight: str = "delay") -> nx.DiGraph:
        """Directed graph of the topology with per-edge cost attributes.

        Edge attributes: ``delay`` (propagation seconds), ``bandwidth``
        (bits/second), and ``cost`` (= the attribute named by ``weight``).
        """
        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        for (src, dst), link in self.links.items():
            graph.add_edge(
                src,
                dst,
                delay=link.delay,
                bandwidth=link.bandwidth,
                cost=getattr(link, weight) if hasattr(link, weight) else link.delay,
            )
        return graph

    def link(self, src: str, dst: str) -> Link:
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise SimulationError(f"unknown link {src}->{dst}") from None

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def total_drops(self) -> int:
        return sum(link.total_drops for link in self.links.values())

    def dead_letters(self) -> int:
        return sum(node.dead_letters for node in self.nodes.values())

    def run(
        self,
        until: float,
        max_events: Optional[int] = None,
        deadline: Optional[float] = None,
        livelock_threshold: Optional[int] = None,
        checkpoint_every: Optional[float] = None,
        checkpoint_path: "Optional[str | Path]" = None,
    ) -> None:
        """Run the simulation until ``until`` seconds.

        ``deadline`` (wall-clock seconds) and ``livelock_threshold``
        (events without clock progress) arm the simulator's watchdog;
        ``checkpoint_every``/``checkpoint_path`` arm periodic snapshots —
        see :meth:`repro.sim.engine.Simulator.run`.
        """
        self.sim.run(
            until=until,
            max_events=max_events,
            deadline=deadline,
            livelock_threshold=livelock_threshold,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
        )

    def __repr__(self) -> str:
        return f"<Network nodes={len(self.nodes)} links={len(self.links)}>"


def install_static_routes(network: Network, weight: str = "delay") -> None:
    """Populate every node's table with shortest-path next hops.

    Uses Dijkstra over the ``weight`` edge attribute (propagation delay by
    default, so equal-delay topologies degenerate to hop count).
    """
    graph = network.graph()
    for src_name in network.nodes:
        try:
            paths = nx.single_source_dijkstra_path(graph, src_name, weight=weight)
        except nx.NodeNotFound:  # isolated node
            continue
        node = network.nodes[src_name]
        for dst_name, path in paths.items():
            if dst_name == src_name or len(path) < 2:
                continue
            node.routes[dst_name] = path[1]


def iter_links(network: Network) -> Iterable[Link]:
    return network.links.values()

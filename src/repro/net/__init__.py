"""Packet-level network substrate: packets, queues, links, nodes.

This package replaces ns-2's node/link/queue models.  A :class:`Network`
is a set of named :class:`Node` objects joined by unidirectional
:class:`Link` objects (use :meth:`Network.add_duplex_link` for the common
case).  Each link has a bandwidth, a propagation delay, and a finite
DropTail queue; packets that arrive while the queue is full are dropped,
which is the paper's (and ns-2's) loss model.
"""

from repro.net.delays import (
    BimodalDelay,
    DelayModel,
    FixedDelay,
    UniformJitterDelay,
)
from repro.net.network import Network
from repro.net.node import Agent, Node
from repro.net.link import Link
from repro.net.lossgen import (
    BernoulliLoss,
    DeterministicLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
)
from repro.net.packet import ACK_SIZE_BYTES, DATA_SIZE_BYTES, Packet
from repro.net.queues import DropTailQueue, Queue, REDQueue

__all__ = [
    "ACK_SIZE_BYTES",
    "Agent",
    "BernoulliLoss",
    "BimodalDelay",
    "DATA_SIZE_BYTES",
    "DelayModel",
    "DeterministicLoss",
    "DropTailQueue",
    "FixedDelay",
    "GilbertElliottLoss",
    "Link",
    "LossModel",
    "Network",
    "NoLoss",
    "Node",
    "Packet",
    "Queue",
    "REDQueue",
    "UniformJitterDelay",
]

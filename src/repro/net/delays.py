"""Per-packet propagation-delay models (single-path reordering source).

The paper's Section 1 lists DiffServ-style QoS machinery as a reordering
source: packets of one flow are queued and forwarded differently inside
the core, so they experience *different* one-way delays even on a single
route.  A :class:`DelayModel` attached to a link reproduces that: each
packet draws its own propagation delay, and a later packet drawn a
smaller delay overtakes its predecessors.

Use with :class:`~repro.net.link.Link` via the ``delay_model`` argument;
when set, it overrides the link's fixed ``delay``.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.net.packet import Packet


class DelayModel:
    """Draws a propagation delay for each packet."""

    def delay_for(self, packet: Packet) -> float:
        raise NotImplementedError


class FixedDelay(DelayModel):
    """Constant delay (equivalent to the link's built-in behaviour)."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = delay

    def delay_for(self, packet: Packet) -> float:
        return self.delay


class UniformJitterDelay(DelayModel):
    """base + Uniform(0, jitter) per packet.

    A jitter larger than the inter-packet spacing reorders packets; the
    expected displacement grows with ``jitter / packet_spacing``.
    """

    def __init__(self, base: float, jitter: float, rng: random.Random) -> None:
        if base < 0 or jitter < 0:
            raise ValueError("base and jitter must be non-negative")
        self.base = base
        self.jitter = jitter
        self._rng = rng

    def delay_for(self, packet: Packet) -> float:
        return self.base + self._rng.uniform(0.0, self.jitter)


class TraceDelay(DelayModel):
    """Replays a recorded sequence of one-way delays.

    For research workflows that measured real per-packet delays (e.g. a
    DAG capture of a DiffServ domain): each packet consumes the next
    trace entry, cycling when the trace is exhausted.
    """

    def __init__(self, delays: "Sequence[float]") -> None:
        values = list(delays)
        if not values:
            raise ValueError("trace must contain at least one delay")
        if any(value < 0 for value in values):
            raise ValueError("trace delays must be non-negative")
        self.delays = values
        self._cursor = 0

    def delay_for(self, packet: Packet) -> float:
        value = self.delays[self._cursor]
        self._cursor = (self._cursor + 1) % len(self.delays)
        return value


class BimodalDelay(DelayModel):
    """Two service classes: fast path with probability p, slow otherwise.

    The sharpest DiffServ caricature — e.g. 10 % of packets demoted to a
    best-effort queue that adds ``slow_extra`` seconds.
    """

    def __init__(
        self,
        base: float,
        slow_extra: float,
        slow_probability: float,
        rng: random.Random,
    ) -> None:
        if base < 0 or slow_extra < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= slow_probability <= 1.0:
            raise ValueError(
                f"slow_probability must be in [0, 1], got {slow_probability}"
            )
        self.base = base
        self.slow_extra = slow_extra
        self.slow_probability = slow_probability
        self._rng = rng

    def delay_for(self, packet: Packet) -> float:
        if self._rng.random() < self.slow_probability:
            return self.base + self.slow_extra
        return self.base

"""Exception hierarchy for the simulation engine."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator-raised errors."""


class ScheduleInPastError(SimulationError):
    """An event was scheduled strictly before the current simulation time."""

    def __init__(self, event_time: float, now: float) -> None:
        super().__init__(
            f"cannot schedule event at t={event_time!r}: "
            f"simulation clock is already at t={now!r}"
        )
        self.event_time = event_time
        self.now = now


class InvariantViolation(SimulationError):
    """A sanitizer-mode invariant check failed (``Simulator(sanitize=True)``).

    Raised the moment a structural invariant — heap time monotonicity,
    the live-event counter, the TCP-PR sender's list disjointness or
    maximum-tracking ``ewrtt`` — stops holding, instead of letting the
    run continue and diverge silently.  ``invariant`` is a stable slug
    (``"heap-time-monotonic"``, ``"live-counter"``, ...) tests key off;
    ``detail`` is the human-readable specifics.
    """

    def __init__(self, invariant: str, detail: str) -> None:
        super().__init__(f"invariant {invariant!r} violated: {detail}")
        self.invariant = invariant
        self.detail = detail


class WatchdogError(SimulationError):
    """Base class for the :meth:`Simulator.run` watchdog errors.

    Both subclasses indicate a run that would otherwise never return a
    result: catch :class:`WatchdogError` to treat "too slow" and "stuck"
    uniformly (the sweep executor's per-cell failure capture does).
    """


class DeadlineExceededError(WatchdogError):
    """The run exceeded its wall-clock ``deadline``."""

    def __init__(self, deadline: float, sim_time: float, dispatched: int) -> None:
        super().__init__(
            f"simulation exceeded its {deadline:g} s wall-clock deadline "
            f"(sim time t={sim_time:.6f}, {dispatched} events dispatched)"
        )
        self.deadline = deadline
        self.sim_time = sim_time
        self.dispatched = dispatched


class LivelockError(WatchdogError):
    """Events kept firing while the simulation clock stopped advancing.

    The classic cause is a zero-delay event loop (a component that
    reschedules itself at ``now`` forever) — cf. the divergence of
    non-converging retransmission-timeout loops: the event queue never
    drains and ``until`` is never reached, yet every individual event
    looks healthy.
    """

    def __init__(self, sim_time: float, stalled_events: int) -> None:
        super().__init__(
            f"livelock detected: {stalled_events} events dispatched while "
            f"the clock stayed at t={sim_time:.6f}"
        )
        self.sim_time = sim_time
        self.stalled_events = stalled_events

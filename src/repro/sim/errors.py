"""Exception hierarchy for the simulation engine."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator-raised errors."""


class ScheduleInPastError(SimulationError):
    """An event was scheduled strictly before the current simulation time."""

    def __init__(self, event_time: float, now: float) -> None:
        super().__init__(
            f"cannot schedule event at t={event_time!r}: "
            f"simulation clock is already at t={now!r}"
        )
        self.event_time = event_time
        self.now = now

"""Discrete-event simulation engine (substitute for ns-2's scheduler).

The engine is a classic calendar built on a binary heap.  Components
schedule callbacks at absolute simulation times; the engine dispatches them
in time order (FIFO among equal timestamps, via a monotonically increasing
sequence number).  Event handles support O(1) cancellation.

Example:
    >>> from repro.sim import Simulator
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(1.5, lambda: fired.append(sim.now))
    <repro.sim.events.EventHandle ...>
    >>> sim.run(until=10.0)
    >>> fired
    [1.5]
"""

from repro.sim.engine import Simulator
from repro.sim.errors import ScheduleInPastError, SimulationError
from repro.sim.events import EventHandle
from repro.sim.profile import GroupStats, SimStats, group_label
from repro.sim.rng import RngRegistry, derive_child_seed

__all__ = [
    "EventHandle",
    "GroupStats",
    "RngRegistry",
    "SimStats",
    "derive_child_seed",
    "group_label",
    "ScheduleInPastError",
    "SimulationError",
    "Simulator",
]
